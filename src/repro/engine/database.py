"""The ``Database`` facade: catalog, transactions, SQL, recovery.

This is the only class most callers need::

    db = Database("primary", buffer_size_bytes=128 * 2**20)
    db.create_table(schema)
    with db.begin() as txn:
        db.execute("INSERT INTO t VALUES (DEFAULT, ?)", [1], txn=txn)
    rows = db.query("SELECT * FROM t").rows

Write path (strict WAL-before-data): X-lock the row, append the log
record, apply the physical change, remember the record on the
transaction.  Commit appends COMMIT, notifies replication listeners
with the transaction's record batch, and releases all locks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.buffer import BufferPool
from repro.engine.errors import (
    DeadlineExceededError,
    EngineError,
    LockTimeoutError,
    SchemaError,
    SqlError,
    TransactionAborted,
    WriteConflictError,
)
from repro.engine.executor import Executor, Prepared, ResultSet
from repro.engine.locks import LockManager, LockMode, LockOutcome
from repro.engine.recovery import RecoveryReport, recover
from repro.engine.table import RowVersion, Table, TableSnapshot, VersionStore
from repro.engine.txn import (
    MVCC_LEVELS,
    IsolationLevel,
    Transaction,
    TransactionManager,
    TxnState,
)
from repro.engine.types import Schema
from repro.engine.wal import DATA_KINDS, LogKind, LogRecord, WriteAheadLog
from repro.obs import NULL_OBSERVER, Observer

#: Signature of commit listeners: (txn_id, commit_lsn, data_records).
CommitListener = Callable[[int, int, List[LogRecord]], None]


class Database:
    """One database instance (a primary or a replica)."""

    def __init__(
        self,
        name: str = "db",
        buffer_size_bytes: Optional[int] = None,
        default_isolation: IsolationLevel = IsolationLevel.READ_COMMITTED,
        observer: Optional[Observer] = None,
        auto_vacuum_versions: int = 4096,
        plan_cache_size: int = 512,
    ):
        self.name = name
        self.obs = observer or NULL_OBSERVER
        # Pre-resolved txn metrics keep begin/commit on the counter fast
        # path; the per-txn timeline span stays on the tracer API.
        if self.obs.enabled:
            metrics = self.obs.metrics
            self._c_txn = {
                outcome: metrics.counter(f"engine.txn.{outcome}")
                for outcome in ("begin", "commit", "abort")
            }
            self._h_txn_s = metrics.histogram("engine.txn.duration_s")
            self._c_mvcc = {
                event: metrics.counter(f"engine.mvcc.{event}")
                for event in (
                    "versions_created", "versions_gc",
                    "conflicts", "snapshot_reads",
                )
            }
            # Eager registration: the plan-cache series exist (at zero)
            # in every export even before the first prepare() call, and
            # prepare() itself stays off the registry dict.
            self._c_plan = {
                event: metrics.counter(f"engine.sql.plan_cache.{event}")
                for event in ("hit", "miss", "evict")
            }
        else:
            self._c_txn = None
            self._h_txn_s = None
            self._c_mvcc = None
            self._c_plan = None
        self.buffer: Optional[BufferPool] = (
            BufferPool(buffer_size_bytes, observer=self.obs)
            if buffer_size_bytes else None
        )
        self.wal = WriteAheadLog(observer=self.obs)
        self.locks = LockManager(observer=self.obs)
        self.txns = TransactionManager()
        self.default_isolation = default_isolation
        self._tables: Dict[str, Table] = {}
        #: flat view of every table's version store -- the auto-vacuum
        #: check in :meth:`_commit` sums these once per commit, and the
        #: dict-values walk was measurable there
        self._version_stores: Tuple[VersionStore, ...] = ()
        self._executor = Executor(self)
        if plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        self.plan_cache_size = plan_cache_size
        self._prepared: "OrderedDict[str, Prepared]" = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.plan_cache_evictions = 0
        self._txn_records: Dict[int, List[LogRecord]] = {}
        self._commit_listeners: List[CommitListener] = []
        self.checkpoint_lsn = 0
        self._checkpoint_snapshots: Dict[str, TableSnapshot] = {}
        #: MVCC: snapshots never start below this LSN.  Replica appliers
        #: raise it to the applied primary LSN so snapshot reads on a
        #: replica see the shipped versions (which carry primary LSNs).
        self.snapshot_floor = 0
        #: vacuum automatically once this many versions accumulate
        self.auto_vacuum_versions = auto_vacuum_versions
        self.vacuum_runs = 0
        #: deadline of the statement currently executing (set by
        #: :meth:`execute`); the buffer pool's miss guard reads it so a
        #: doomed read is cancelled before paying for a page fetch.
        self._stmt_deadline = None
        self.deadline_cancellations = 0
        if self.buffer is not None:
            self.buffer.miss_guard = self._buffer_miss_guard

    # -- catalog ----------------------------------------------------------------

    def create_table(self, schema: Schema) -> Table:
        if schema.table in self._tables:
            raise SchemaError(f"table {schema.table!r} already exists")
        table = Table(schema, self.buffer)
        self._tables[schema.table] = table
        self._version_stores = tuple(t.versions for t in self._tables.values())
        return table

    def table(self, name: str) -> Table:
        try:
            upper = name.upper()
            return self._tables[upper] if upper in self._tables else self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def create_index(
        self, table: str, name: str, columns: Sequence[str],
        unique: bool = False, ordered: bool = False,
    ) -> None:
        self.table(table).create_index(name, tuple(columns), unique=unique, ordered=ordered)

    def total_rows(self) -> int:
        return sum(table.row_count for table in self._tables.values())

    def data_bytes(self) -> int:
        """Nominal on-heap data size (pages x page size is the I/O view)."""
        return sum(
            table.row_count * table.schema.row_byte_size()
            for table in self._tables.values()
        )

    # -- transactions -------------------------------------------------------------

    def begin(
        self,
        isolation: Optional[IsolationLevel] = None,
        deadline=None,
    ) -> Transaction:
        txn = self.txns.begin(self, isolation or self.default_isolation)
        txn.deadline = deadline
        if self._c_txn is not None:
            txn.start_s = self.obs.now()
            self._c_txn["begin"].value += 1.0
        record = self.wal.append(txn.txn_id, LogKind.BEGIN)
        txn.first_lsn = record.lsn
        txn.last_lsn = record.lsn
        if txn.isolation in MVCC_LEVELS:
            # Commit LSNs are strictly greater than the BEGIN record's
            # LSN, so this snapshot excludes every later commit.
            txn.snapshot_lsn = max(record.lsn, self.snapshot_floor)
        self._txn_records[txn.txn_id] = []
        return txn

    def _commit(self, txn: Transaction) -> None:
        # PREPARED is commit-eligible too: phase two of 2PC finishes a
        # branch whose fate the coordinator already decided.
        if txn.state not in (TxnState.ACTIVE, TxnState.PREPARED):
            raise TransactionAborted(
                f"transaction {txn.txn_id} is {txn.state.value}"
            )
        record = self.wal.append(txn.txn_id, LogKind.COMMIT)
        # Stamp this transaction's version-chain entries with the commit
        # LSN: they become visible to snapshots taken from here on.
        for version in txn.created_versions:
            version.begin_lsn = record.lsn
            version.begin_txn = None
        for version in txn.ended_versions:
            version.end_lsn = record.lsn
            version.end_txn = None
        txn.state = TxnState.COMMITTED
        records = self._txn_records.pop(txn.txn_id, [])
        self.locks.release_all(txn.txn_id)
        self.txns.finish(txn, committed=True)
        if self.obs.enabled:
            self._observe_txn_end(txn, "commit")
        for listener in self._commit_listeners:
            listener(txn.txn_id, record.lsn, records)
        if (
            txn.created_versions
            and self.live_versions() >= self.auto_vacuum_versions
        ):
            self.vacuum()

    def _rollback(self, txn: Transaction) -> None:
        if txn.state not in (TxnState.ACTIVE, TxnState.PREPARED):
            return
        # Undo this transaction's changes in reverse order (no CLRs: the
        # engine is memory-resident, so rollback is atomic w.r.t. crashes).
        from repro.engine.recovery import _apply_undo  # local import: cycle

        for record in reversed(self._txn_records.pop(txn.txn_id, [])):
            _apply_undo(self, record)
        self.wal.append(txn.txn_id, LogKind.ABORT)
        txn.state = TxnState.ABORTED
        self.locks.cancel_wait(txn.txn_id)
        self.locks.release_all(txn.txn_id)
        self.txns.finish(txn, committed=False)
        if self.obs.enabled:
            self._observe_txn_end(txn, "abort")

    # -- two-phase commit (participant side) --------------------------------------

    def prepare_commit(self, txn: Transaction, gtid) -> None:
        """2PC phase one: make ``txn`` durable without deciding its fate.

        Appends a PREPARE record carrying the global transaction id; the
        transaction keeps every lock and write intent, and only
        :meth:`Transaction.commit` / :meth:`Transaction.rollback` (both
        accept the PREPARED state) finish it.  After a crash, recovery
        classes the branch *in doubt* until the fleet-level pass resolves
        it against the durable DECISION records.
        """
        txn.ensure_active()
        record = self.wal.append(txn.txn_id, LogKind.PREPARE, key=gtid)
        txn.gtid = gtid
        txn.last_lsn = record.lsn
        txn.state = TxnState.PREPARED
        if self.obs.enabled:
            self.obs.count("engine.txn.prepare")

    def log_decision(self, txn_id: int, gtid) -> None:
        """Durably record the coordinator's commit decision on this shard."""
        self.wal.append(txn_id, LogKind.DECISION, key=gtid)

    def resolve_in_doubt(self, txn_id: int, commit: bool) -> None:
        """Finish an in-doubt prepared transaction found by recovery.

        Recovery redoes in-doubt records but neither undoes nor commits
        them.  ``commit=True`` (a DECISION exists somewhere in the fleet)
        appends the missing COMMIT; ``commit=False`` (presumed abort)
        undoes the branch's data records in reverse and appends ABORT.
        """
        if commit:
            self.wal.append(txn_id, LogKind.COMMIT)
        else:
            from repro.engine.recovery import _apply_undo  # local import: cycle

            records = [
                record
                for record in self.wal.records_from(self.checkpoint_lsn + 1)
                if record.txn_id == txn_id and record.kind in DATA_KINDS
            ]
            for record in reversed(records):
                _apply_undo(self, record)
            self.wal.append(txn_id, LogKind.ABORT)
        if self.obs.enabled:
            self.obs.count(
                "engine.recovery.in_doubt_committed" if commit
                else "engine.recovery.in_doubt_aborted"
            )

    def _observe_txn_end(self, txn: Transaction, outcome: str) -> None:
        end_s = self.obs.now()
        self._c_txn[outcome].value += 1.0
        self._h_txn_s.observe(end_s - txn.start_s)
        self.obs.complete(
            "txn", "engine", txn.start_s, end_s, track="engine",
            attrs={
                "txn_id": txn.txn_id, "outcome": outcome,
                "reads": txn.reads, "writes": txn.writes,
            },
        )

    # -- SQL entry points -------------------------------------------------------------

    def prepare(self, sql: str) -> Prepared:
        """Parse-once statement cache, bounded LRU.

        Ad-hoc SQL with inlined literals used to grow the cache without
        limit; the least recently used plan is now evicted once
        ``plan_cache_size`` distinct statements accumulate.
        """
        prepared = self._prepared.get(sql)
        if prepared is not None:
            self._prepared.move_to_end(sql)
            self.plan_cache_hits += 1
            if self._c_plan is not None:
                self._c_plan["hit"].inc()
            return prepared
        prepared = Prepared(self, sql)
        self._prepared[sql] = prepared
        self.plan_cache_misses += 1
        if self._c_plan is not None:
            self._c_plan["miss"].inc()
        if len(self._prepared) > self.plan_cache_size:
            self._prepared.popitem(last=False)
            self.plan_cache_evictions += 1
            if self._c_plan is not None:
                self._c_plan["evict"].inc()
        return prepared

    def execute(
        self,
        sql: str | Prepared,
        params: Sequence[Any] = (),
        txn: Optional[Transaction] = None,
        deadline=None,
    ) -> ResultSet:
        """Execute a statement; without ``txn`` it autocommits.

        ``deadline`` (an object with ``expired() -> bool``, normally a
        :class:`repro.qos.deadline.Deadline`) bounds the statement: the
        engine cancels doomed work at its lock-wait, buffer-miss and
        WAL-append points, rolling the transaction back.  Inside an
        explicit ``txn`` the transaction's own deadline takes precedence.
        """
        prepared = self.prepare(sql) if isinstance(sql, str) else sql
        if txn is not None:
            return self._execute_in(prepared, params, txn, txn.deadline or deadline)
        autocommit_txn = self.begin(deadline=deadline)
        try:
            result = self._execute_in(prepared, params, autocommit_txn, deadline)
            autocommit_txn.commit()
            return result
        except BaseException:
            if autocommit_txn.is_active:
                autocommit_txn.rollback()
            raise

    def _execute_in(
        self, prepared: Prepared, params: Sequence[Any], txn: Transaction, deadline
    ) -> ResultSet:
        """Run one statement with its deadline visible to the buffer pool."""
        if deadline is None and self._stmt_deadline is None:
            # No deadline anywhere: skip the save/restore (try/except
            # without finally is free until it raises).
            try:
                return self._executor.execute(prepared, params, txn)
            except DeadlineExceededError:
                if txn.is_active:
                    self._rollback(txn)
                raise
        prior = self._stmt_deadline
        self._stmt_deadline = deadline
        try:
            return self._executor.execute(prepared, params, txn)
        except DeadlineExceededError:
            # Cancellation points that fire outside the write internals
            # (buffer misses on the read path) must still release
            # everything the doomed transaction holds.
            if txn.is_active:
                self._rollback(txn)
            raise
        finally:
            self._stmt_deadline = prior

    def query(
        self, sql: str, params: Sequence[Any] = (), deadline=None
    ) -> ResultSet:
        """Read-only :meth:`execute`: rejects anything but SELECT.

        Historically this silently executed writes and returned an empty
        :class:`ResultSet`; it now raises :class:`SqlError` so callers
        can't mutate through the read path by accident.
        """
        from repro.engine.sql import SelectStatement

        prepared = self.prepare(sql)
        if not isinstance(prepared.statement, SelectStatement):
            raise SqlError(
                f"query() is read-only; use execute() for: {sql.strip()[:60]!r}"
            )
        return self.execute(prepared, params, deadline=deadline)

    def explain(self, sql: str, params: Sequence[Any] = ()) -> str:
        """Describe the access plan a statement would use, without running it."""
        from repro.engine.sql import SelectStatement, InsertStatement

        prepared = self.prepare(sql)
        statement = prepared.statement
        if isinstance(statement, InsertStatement):
            return f"insert into {prepared.table.name}"
        where = getattr(statement, "where", ())
        plan = self._executor.choose_plan(prepared.table, where, params)
        description = plan.describe()
        if isinstance(statement, SelectStatement) and statement.order_by:
            description += f"; sort by {statement.order_by}"
            if statement.limit is not None:
                description += f" limit {statement.limit}"
        return description

    # -- write internals (called by the executor) ----------------------------------------

    def _deadline_guard(self, txn: Transaction, where: str) -> None:
        """Cancellation point: roll back and raise once the deadline passed.

        Rolling back *before* raising is what distinguishes deadline
        cancellation from a plain exception: every lock is released and
        every MVCC write intent undone, so an expired request cannot
        stall the healthy ones queued behind it.
        """
        deadline = txn.deadline
        if deadline is None or not deadline.expired():
            return
        self.deadline_cancellations += 1
        if self.obs.enabled:
            self.obs.count("engine.deadline.cancelled")
        self._rollback(txn)
        raise DeadlineExceededError(
            f"txn {txn.txn_id} cancelled at {where}: deadline exceeded"
        )

    def _buffer_miss_guard(self) -> None:
        """Called by the buffer pool before paying for a read-path miss."""
        deadline = self._stmt_deadline
        if deadline is not None and deadline.expired():
            self.deadline_cancellations += 1
            if self.obs.enabled:
                self.obs.count("engine.deadline.cancelled")
            raise DeadlineExceededError(
                "statement cancelled at buffer miss: deadline exceeded"
            )

    def _lock_row(self, txn: Transaction, table: str, key: Any, mode: LockMode) -> None:
        if txn.deadline is not None:
            # Guard only when a deadline exists -- the cancellation
            # message formats key reprs, too costly to build per lock.
            self._deadline_guard(txn, f"lock wait on {table}[{key!r}]")
        outcome = self.locks.acquire(
            txn.txn_id, (table, key), mode, queue_on_conflict=False
        )
        if outcome is LockOutcome.BLOCKED:
            holders = self.locks.holders((table, key))
            self._rollback(txn)
            raise LockTimeoutError(
                f"txn {txn.txn_id} blocked on {table}[{key!r}] held by "
                f"{sorted(holders)} (no-wait policy)"
            )

    def _unlock_row(self, txn: Transaction, table: str, key: Any) -> None:
        self.locks.release_one(txn.txn_id, (table, key))

    # -- MVCC write-path helpers ---------------------------------------------

    def _check_write_conflict(self, txn: Transaction, table: Table, key: Any) -> None:
        """First-updater-wins: abort a snapshot writer whose target row
        gained a committed version after the writer's snapshot."""
        if txn.snapshot_lsn is None:
            return
        newest = table.versions.newest_commit_lsn(key)
        if newest > txn.snapshot_lsn:
            if self._c_mvcc is not None:
                self._c_mvcc["conflicts"].value += 1.0
            self._rollback(txn)
            raise WriteConflictError(
                f"txn {txn.txn_id} (snapshot LSN {txn.snapshot_lsn}) lost "
                f"{table.name}[{key!r}] to a commit at LSN {newest} "
                f"(first-updater-wins)"
            )

    def _chain_base(self, table: Table, key: Any, before: Tuple[Any, ...]) -> None:
        """First write to a bootstrap row: capture the committed heap
        image as an always-visible base version (begin LSN 0) so live
        snapshots keep seeing it once the heap is overwritten."""
        if table.versions.chain(key) is None:
            table.versions.append(key, RowVersion(before, begin_lsn=0))

    def _chain_supersede(self, txn: Transaction, table: Table, key: Any) -> None:
        """Mark the current chain head as ended by ``txn`` (uncommitted
        until the commit LSN stamp)."""
        head = table.versions.newest(key)
        if head is not None and head.end_txn is None and head.end_lsn is None:
            head.end_txn = txn.txn_id
            txn.ended_versions.append(head)

    def _chain_append(
        self, txn: Transaction, table: Table, key: Any, row: Tuple[Any, ...]
    ) -> None:
        version = table.versions.append(key, RowVersion(row, begin_txn=txn.txn_id))
        txn.created_versions.append(version)
        if self._c_mvcc is not None:
            self._c_mvcc["versions_created"].value += 1.0

    def live_versions(self) -> int:
        """Total version-chain entries across all tables."""
        total = 0
        for store in self._version_stores:
            total += store.live_versions
        return total

    def vacuum(self) -> int:
        """Trim version history invisible to every live snapshot.

        The horizon is the oldest snapshot LSN among active transactions
        (the WAL tail when none is live, collapsing all chains).  Runs
        automatically once ``auto_vacuum_versions`` accumulate and from
        :meth:`checkpoint`; safe to call any time.  Returns versions freed.
        """
        horizon = self.txns.oldest_snapshot_lsn(self.wal.last_lsn)
        freed = 0
        for table in self._tables.values():
            freed += table.versions.vacuum(horizon)
        self.vacuum_runs += 1
        if self.obs.enabled and freed:
            self._c_mvcc["versions_gc"].value += float(freed)
            self.obs.event(
                "mvcc.vacuum", "engine", track="engine",
                attrs={"freed": freed, "horizon_lsn": horizon},
            )
        return freed

    def _insert(self, txn: Transaction, table: Table, values: Sequence[Any]) -> None:
        schema = table.schema
        next_auto = None
        pk_index = schema.primary_key_index
        from repro.engine.types import DEFAULT  # local import: avoid cycle at top

        if any(
            value is DEFAULT and column.autoincrement
            for value, column in zip(values, schema.columns)
        ):
            next_auto = table.next_autoincrement()
        row = schema.coerce_row(values, next_auto=next_auto)
        key = row[pk_index]
        # Check all unique constraints before logging, so a failed insert
        # leaves no WAL record for recovery to trip over.
        table.check_unique(row)
        self._lock_row(txn, table.name, key, LockMode.EXCLUSIVE)
        self._check_write_conflict(txn, table, key)
        self._deadline_guard(txn, "WAL append")
        record = self.wal.append(
            txn.txn_id, LogKind.INSERT, table=table.name, key=key, after=row
        )
        table.insert_row(row)
        self._chain_append(txn, table, key, row)
        txn.last_lsn = record.lsn
        txn.writes += 1
        self._txn_records[txn.txn_id].append(record)

    def _update(
        self,
        txn: Transaction,
        table: Table,
        rid,
        before: Tuple[Any, ...],
        after: Tuple[Any, ...],
        keys_unchanged: bool = False,
    ) -> None:
        schema = table.schema
        if not keys_unchanged:
            after = schema.coerce_row(after)
            # Validate unique constraints before the WAL record exists.
            table.check_unique(after, exclude_rid=rid)
        key = before[schema.primary_key_index]
        self._lock_row(txn, table.name, key, LockMode.EXCLUSIVE)
        self._check_write_conflict(txn, table, key)
        if txn.deadline is not None:
            self._deadline_guard(txn, "WAL append")
        record = self.wal.append(
            txn.txn_id, LogKind.UPDATE, table.name, key, before, after,
        )
        if keys_unchanged:
            table.overwrite_row(rid, after)
        else:
            table.update_row(rid, after)
        ended, created = table.versions.transition(
            key,
            key if keys_unchanged else after[schema.primary_key_index],
            before, after, txn.txn_id,
        )
        if ended is not None:
            txn.ended_versions.append(ended)
        txn.created_versions.append(created)
        if self._c_mvcc is not None:
            self._c_mvcc["versions_created"].value += 1.0
        txn.last_lsn = record.lsn
        txn.writes += 1
        self._txn_records[txn.txn_id].append(record)

    def _delete(
        self, txn: Transaction, table: Table, rid, before: Tuple[Any, ...]
    ) -> None:
        key = before[table.schema.primary_key_index]
        self._lock_row(txn, table.name, key, LockMode.EXCLUSIVE)
        self._check_write_conflict(txn, table, key)
        self._deadline_guard(txn, "WAL append")
        record = self.wal.append(
            txn.txn_id, LogKind.DELETE, table=table.name, key=key, before=before
        )
        table.delete_row(rid)
        self._chain_base(table, key, before)
        self._chain_supersede(txn, table, key)
        txn.last_lsn = record.lsn
        txn.writes += 1
        self._txn_records[txn.txn_id].append(record)

    # -- replication hooks -------------------------------------------------------------

    def add_commit_listener(self, listener: CommitListener) -> None:
        self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener: CommitListener) -> None:
        self._commit_listeners.remove(listener)

    # -- checkpointing and crash recovery -------------------------------------------------

    def checkpoint(self, truncate_wal: bool = False) -> int:
        """Quiesced checkpoint: flush, snapshot every table, log it.

        Returns the checkpoint LSN.  Raises if transactions are active,
        because the recovery protocol assumes checkpoint images contain
        no uncommitted data.

        With ``truncate_wal`` the records preceding the checkpoint are
        dropped (log archiving): recovery never needs them, and commit
        listeners received their batches synchronously at commit time,
        so replication is unaffected.
        """
        if self.txns.active:
            raise EngineError(
                f"checkpoint requires quiescence; active txns: {sorted(self.txns.active)}"
            )
        # Quiescence means no live snapshot: vacuum collapses every chain
        # so the checkpoint images carry no version history.
        self.vacuum()
        if self.buffer is not None:
            self.buffer.flush()
        self._checkpoint_snapshots = {
            name: table.snapshot() for name, table in self._tables.items()
        }
        record = self.wal.append(0, LogKind.CHECKPOINT)
        self.checkpoint_lsn = record.lsn
        if truncate_wal:
            self.wal.truncate(record.lsn)
        return record.lsn

    def install_checkpoint(self, checkpoint_lsn: int) -> None:
        """Adopt the current tables as the durable base image at
        ``checkpoint_lsn`` without logging anything.

        Standby bootstrap: after :meth:`clone_full` copied the primary's
        rows, this stamps the copy as a checkpoint taken at the
        primary's durable horizon and positions the (pristine) WAL so
        shipped records continue the primary's LSN sequence.  From then
        on ``crash() + recover()`` replays exactly the shipped suffix --
        which is what promotion does.
        """
        if self.txns.active:
            raise EngineError("install_checkpoint requires quiescence")
        self._checkpoint_snapshots = {
            name: table.snapshot() for name, table in self._tables.items()
        }
        self.checkpoint_lsn = checkpoint_lsn
        self.wal.start_from(checkpoint_lsn + 1)

    def reset_for_restore(self) -> None:
        """Blank the instance so a backup image can be loaded into it.

        Point-in-time restore entry point: drops every table, wipes the
        WAL back to pristine (so :meth:`install_checkpoint` /
        ``wal.start_from`` apply), clears checkpoint images, and resets
        transaction/lock state.  Requires quiescence -- a restore over
        live transactions would tear them.
        """
        if self.txns.active:
            raise EngineError(
                f"reset_for_restore requires quiescence; active txns: "
                f"{sorted(self.txns.active)}"
            )
        self._tables = {}
        self._version_stores = ()
        self._checkpoint_snapshots = {}
        self.checkpoint_lsn = 0
        self.snapshot_floor = 0
        if self.buffer is not None:
            self.buffer.clear()
        self.wal.reset_for_restore()
        self.locks = LockManager(observer=self.obs)
        self.txns = TransactionManager()
        self._txn_records.clear()
        self._prepared.clear()

    def crash(self) -> None:
        """Simulate an instance crash: lose all volatile state.

        Tables revert to the last checkpoint image (empty if none); the
        WAL survives (it is the durable part).  Locks and active
        transactions vanish.  Call :meth:`recover` to replay the tail.
        """
        for name, table in self._tables.items():
            snapshot = self._checkpoint_snapshots.get(name)
            if snapshot is not None:
                table.restore_snapshot(snapshot)
            else:
                table.restore_snapshot(TableSnapshot(pages=[], next_auto=1))
        if self.buffer is not None:
            self.buffer.clear()
        # In-flight transaction handles die with the instance.
        for txn in list(self.txns.active.values()):
            txn.state = TxnState.ABORTED
        self.locks = LockManager(observer=self.obs)
        if self.obs.enabled:
            self.obs.count("engine.crash")
            self.obs.event("db.crash", "engine", track="engine",
                           attrs={"db": self.name})
        # Transaction ids must stay monotone across restarts: a reused id
        # would let a post-crash ABORT record poison an identically-
        # numbered committed transaction from before the crash.  Real
        # engines recover the XID high-water mark from the log.
        self.txns = TransactionManager(start_id=self.wal.max_txn_id() + 1)
        self._txn_records.clear()
        # A fired crash point left the log refusing appends; the restart
        # revives it (the durable records themselves survived).
        self.wal.revive()

    def recover(self) -> RecoveryReport:
        """ARIES-style restart recovery (see :mod:`repro.engine.recovery`)."""
        return recover(self)

    # -- consistency checking -------------------------------------------------------------

    def content_hash(self, table: Optional[str] = None) -> str:
        """Order-independent hash of committed row contents.

        Identical logical states hash identically regardless of physical
        row placement, which is what the replication consistency checks
        compare across primary and replicas.
        """
        import hashlib

        tables = [self.table(table)] if table else [
            self._tables[name] for name in sorted(self._tables)
        ]
        digest = hashlib.sha256()
        for tbl in tables:
            digest.update(tbl.name.encode())
            acc = 0
            for _rid, row in tbl.scan():
                row_digest = hashlib.sha256(repr(row).encode()).digest()
                acc ^= int.from_bytes(row_digest[:16], "big")
            digest.update(acc.to_bytes(16, "big"))
        return digest.hexdigest()

    def same_content(self, other: "Database", table: Optional[str] = None) -> bool:
        """True when both databases hold the same committed rows."""
        return self.content_hash(table) == other.content_hash(table)

    # -- cloning (replica bootstrap) ----------------------------------------------------

    def clone_schema(
        self,
        name: str,
        buffer_size_bytes: Optional[int] = None,
        observer: Optional[Observer] = None,
    ) -> "Database":
        """A new empty database with the same tables and indexes."""
        clone = Database(name, buffer_size_bytes=buffer_size_bytes,
                         default_isolation=self.default_isolation,
                         observer=observer)
        for table in self._tables.values():
            clone.create_table(table.schema)
            for index in table.secondary_indexes.values():
                clone.create_index(
                    table.name,
                    index.name,
                    index.columns,
                    unique=index.unique,
                    ordered=hasattr(index, "range"),
                )
        return clone

    def clone_full(self, name: str, buffer_size_bytes: Optional[int] = None) -> "Database":
        """Schema clone plus a copy of all current rows (base backup)."""
        if self.txns.active:
            raise EngineError("clone_full requires quiescence")
        clone = self.clone_schema(name, buffer_size_bytes=buffer_size_bytes)
        for table in self._tables.values():
            target = clone.table(table.name)
            for _rid, row in table.scan():
                target.insert_row(row)
        return clone

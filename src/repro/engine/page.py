"""Slotted pages: the unit of buffering and I/O accounting.

The engine is memory-resident, but rows are still grouped into fixed
size pages so the buffer pool can account hits, misses and dirty
write-backs exactly the way a disk-based engine would -- those counts
drive the cloud cost model and the buffer-size experiments (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.engine.errors import EngineError

#: Default page size, matching PostgreSQL's 8 KiB pages.
PAGE_SIZE_BYTES = 8192


@dataclass(frozen=True)
class RowId:
    """Physical address of a row version: (page number, slot number)."""

    page_no: int
    slot: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.page_no},{self.slot})"


class Page:
    """A fixed-capacity array of row slots.

    ``None`` marks a vacated slot.  Slot indexes are stable for the
    lifetime of the page so :class:`RowId` values never dangle.
    """

    __slots__ = ("page_no", "capacity", "_slots", "_live")

    def __init__(self, page_no: int, capacity: int):
        if capacity < 1:
            raise EngineError(f"page capacity must be >= 1, got {capacity}")
        self.page_no = page_no
        self.capacity = capacity
        self._slots: List[Optional[Tuple[Any, ...]]] = []
        self._live = 0

    @property
    def live_rows(self) -> int:
        return self._live

    @property
    def is_full(self) -> bool:
        return len(self._slots) >= self.capacity and self._live == len(self._slots)

    def has_free_slot(self) -> bool:
        return len(self._slots) < self.capacity or self._live < len(self._slots)

    def insert(self, row: Tuple[Any, ...]) -> int:
        """Place ``row`` in a free slot and return the slot number."""
        if len(self._slots) < self.capacity:
            self._slots.append(row)
            self._live += 1
            return len(self._slots) - 1
        for slot, existing in enumerate(self._slots):
            if existing is None:
                self._slots[slot] = row
                self._live += 1
                return slot
        raise EngineError(f"page {self.page_no} is full")

    def read(self, slot: int) -> Tuple[Any, ...]:
        row = self._slot(slot)
        if row is None:
            raise EngineError(f"row ({self.page_no},{slot}) was deleted")
        return row

    def write(self, slot: int, row: Tuple[Any, ...]) -> None:
        if self._slot(slot) is None:
            raise EngineError(f"cannot update deleted row ({self.page_no},{slot})")
        self._slots[slot] = row

    def delete(self, slot: int) -> Tuple[Any, ...]:
        row = self._slot(slot)
        if row is None:
            raise EngineError(f"row ({self.page_no},{slot}) already deleted")
        self._slots[slot] = None
        self._live -= 1
        return row

    def restore(self, slot: int, row: Tuple[Any, ...]) -> None:
        """Re-materialise a previously deleted slot (undo of a delete)."""
        while len(self._slots) <= slot:
            self._slots.append(None)
        if self._slots[slot] is not None:
            raise EngineError(f"slot ({self.page_no},{slot}) is occupied")
        self._slots[slot] = row
        self._live += 1

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        """Yield (slot, row) for every live row."""
        for slot, row in enumerate(self._slots):
            if row is not None:
                yield slot, row

    def _slot(self, slot: int) -> Optional[Tuple[Any, ...]]:
        if slot < 0 or slot >= len(self._slots):
            raise EngineError(f"slot {slot} out of range on page {self.page_no}")
        return self._slots[slot]

    def clone(self) -> "Page":
        """Deep-enough copy used by checkpoint snapshots."""
        copy = Page(self.page_no, self.capacity)
        copy._slots = list(self._slots)
        copy._live = self._live
        return copy


def rows_per_page(row_byte_size: int, page_size: int = PAGE_SIZE_BYTES) -> int:
    """How many rows of ``row_byte_size`` bytes fit one page (>= 1)."""
    if row_byte_size <= 0:
        raise EngineError("row byte size must be positive")
    return max(1, page_size // row_byte_size)

"""Workload abstraction consumed by the analytical throughput model.

The CloudyBench workload layer (``repro.core.workload``) maps its
transaction mixes (T1..T4 ratios, access distribution, scale factor)
into a :class:`WorkloadMix`; the baselines (SysBench, TPC-C, YCSB) do
the same, so every workload drives the cloud model through one
interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class TxnClass:
    """Resource footprint of one transaction type on a reference vCore."""

    name: str
    #: CPU seconds on one reference core (engine efficiency 1.0)
    cpu_s: float
    #: logical page reads (index + heap touches)
    page_reads: float
    #: pages dirtied
    page_writes: float
    #: bytes appended to the log per transaction
    log_bytes: float
    #: rows written (drives lock contention on hot keys)
    rows_written: float = 0.0
    #: rows updated in place (drives cache-invalidation / quorum overhead)
    rows_updated: float = 0.0
    #: client round trips (SQL statements) per transaction
    statements: float = 1.0

    def __post_init__(self) -> None:
        if min(self.cpu_s, self.page_reads, self.page_writes, self.log_bytes) < 0:
            raise ValueError(f"negative footprint in txn class {self.name!r}")


@dataclass(frozen=True)
class WorkloadMix:
    """A weighted mix of transaction classes plus data-access shape."""

    name: str
    classes: Tuple[Tuple[TxnClass, float], ...]
    #: total working set touched by the workload, bytes
    working_set_bytes: float
    #: fraction of accesses that go to the hot set (0 = uniform)
    hot_fraction: float = 0.0
    #: size of the hot set, bytes
    hot_set_bytes: float = 0.0
    #: True when the engine reads through MVCC snapshots: readers skip
    #: the lock manager, so only writer-writer collisions contend
    mvcc: bool = False

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a workload mix needs at least one class")
        total = sum(weight for _cls, weight in self.classes)
        if total <= 0:
            raise ValueError("mix weights must sum to a positive number")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be within [0, 1]")
        if self.hot_fraction > 0 and self.hot_set_bytes <= 0:
            raise ValueError("a skewed mix needs hot_set_bytes > 0")

    def _weighted(self, attribute: str) -> float:
        # Normalise weights before multiplying: dividing first keeps the
        # average exact even for extreme weight magnitudes (a tiny weight
        # times a tiny attribute would otherwise underflow to zero).
        total = sum(weight for _cls, weight in self.classes)
        return sum(
            getattr(cls, attribute) * (weight / total)
            for cls, weight in self.classes
        )

    @property
    def cpu_s(self) -> float:
        return self._weighted("cpu_s")

    @property
    def page_reads(self) -> float:
        return self._weighted("page_reads")

    @property
    def page_writes(self) -> float:
        return self._weighted("page_writes")

    @property
    def log_bytes(self) -> float:
        return self._weighted("log_bytes")

    @property
    def rows_written(self) -> float:
        return self._weighted("rows_written")

    @property
    def rows_updated(self) -> float:
        return self._weighted("rows_updated")

    @property
    def statements(self) -> float:
        return self._weighted("statements")

    @property
    def write_fraction(self) -> float:
        """Fraction of transactions that write anything."""
        total = sum(weight for _cls, weight in self.classes)
        writers = sum(
            weight for cls, weight in self.classes if cls.page_writes > 0
        )
        return writers / total


def blend(name: str, mixes: Sequence[Tuple[WorkloadMix, float]]) -> WorkloadMix:
    """Combine several mixes with weights (multi-tenant aggregate view)."""
    if not mixes:
        raise ValueError("blend() needs at least one mix")
    classes: list[Tuple[TxnClass, float]] = []
    total_weight = sum(weight for _mix, weight in mixes)
    if total_weight <= 0:
        raise ValueError("blend() weights must sum to a positive number")
    for mix, weight in mixes:
        share = weight / total_weight
        mix_total = sum(w for _cls, w in mix.classes)
        classes.extend(
            (cls, w / mix_total * share) for cls, w in mix.classes
        )
    working_set = max(mix.working_set_bytes for mix, _w in mixes)
    hot_fraction = sum(mix.hot_fraction * w for mix, w in mixes) / total_weight
    hot_bytes = max(mix.hot_set_bytes for mix, _w in mixes)
    return WorkloadMix(
        name=name,
        classes=tuple(classes),
        working_set_bytes=working_set,
        hot_fraction=hot_fraction,
        hot_set_bytes=hot_bytes,
    )

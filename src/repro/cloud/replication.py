"""Log shipping and replay between the RW node and RO replicas.

The pipeline is *real* at the data level and *simulated* at the timing
level: committed transactions on the primary :class:`~repro.engine.
database.Database` produce WAL record batches which are shipped over a
modelled network, queued at the replica's replayer, and applied to a
real replica database by :class:`~repro.engine.recovery.ReplicaApplier`.
A probe can therefore poll the replica with real queries and observe
exactly when a change becomes visible -- which is how the paper's
lag-time evaluator works.

Timing model per architecture (:class:`StorageProfile`):

* ship delay      = ``ship_hops`` x (network latency + serialisation)
* batching        = the replayer wakes every ``replay_batch_interval_s``
  and drains what has arrived (sequential-replay systems use long
  cadences; RDMA on-demand replay is sub-millisecond)
* replay duration = sum of per-record service times divided by
  ``replay_parallelism`` (parallel replay partitions by page)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.injector import ChaosInjector
from repro.cloud.architectures import Architecture
from repro.engine.database import Database
from repro.engine.recovery import ReplicaApplier
from repro.engine.wal import LogKind, LogRecord
from repro.obs import NULL_OBSERVER, Observer
from repro.sim.events import Environment, Event


@dataclass
class ReplicationStats:
    """Counters per replica."""

    batches_shipped: int = 0
    records_applied: int = 0
    busy_s: float = 0.0
    #: (commit_time, visible_time) pairs for every shipped transaction
    applied_at: Dict[int, float] = field(default_factory=dict)


class ReplicationPipeline:
    """Connects one primary to ``n_replicas`` real replica databases."""

    def __init__(
        self,
        env: Environment,
        arch: Architecture,
        primary: Database,
        n_replicas: int = 1,
        chaos: Optional[ChaosInjector] = None,
        observer: Optional[Observer] = None,
    ):
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.env = env
        self.arch = arch
        self.primary = primary
        self.chaos = chaos
        self.obs = observer or NULL_OBSERVER
        self.replicas: List[Database] = [
            primary.clone_full(f"{primary.name}-replica{i}")
            for i in range(n_replicas)
        ]
        self.appliers = [ReplicaApplier(replica) for replica in self.replicas]
        self.stats = [ReplicationStats() for _ in self.replicas]
        #: queued batches: (arrived_s, txn_id, records, commit_s)
        self._queues: List[List[Tuple[float, int, List[LogRecord], float]]] = [
            [] for _ in self.replicas
        ]
        self._wakeups: List[Optional[Event]] = [None] * n_replicas
        #: arrival time of the last shipped batch per replica: the log
        #: is a FIFO stream, so batches may never overtake each other
        self._last_arrival: List[float] = [0.0] * n_replicas
        primary.add_commit_listener(self._on_commit)
        for index in range(n_replicas):
            env.process(self._replayer(index))

    # -- shipping ------------------------------------------------------------

    @staticmethod
    def replica_target(index: int) -> str:
        """Chaos-plan target name of replica ``index``."""
        return f"replica:{index}"

    def _ship_delay_s(self, records: List[LogRecord]) -> float:
        size = sum(record.byte_size() for record in records) + 64
        per_hop = self.arch.network.transfer_time(size)
        return self.arch.storage.ship_hops * per_hop

    def _on_commit(self, txn_id: int, commit_lsn: int, records: List[LogRecord]) -> None:
        if not records:
            return
        now = self.env.now
        for index in range(len(self.replicas)):
            # A severed link holds the batch at the primary until the
            # partition heals; a degraded link stretches the transfer.
            depart, factor = now, 1.0
            if self.chaos is not None:
                target = self.replica_target(index)
                if self.chaos.partitioned(target, now):
                    depart = self.chaos.heal_at(target, now)
                factor = self.chaos.delay_factor(target, depart)
            # FIFO stream: a batch arrives after its own transfer delay
            # but never before any batch committed earlier.
            arrival = max(
                self._last_arrival[index],
                depart + self._ship_delay_s(records) * factor,
            )
            self._last_arrival[index] = arrival
            self.env.process(
                self._deliver(index, txn_id, list(records), arrival, now)
            )

    def _deliver(self, index: int, txn_id: int, records: List[LogRecord],
                 arrival: float, commit_s: float):
        yield self.env.timeout(max(0.0, arrival - self.env.now))
        self._queues[index].append((self.env.now, txn_id, records, commit_s))
        self.stats[index].batches_shipped += 1
        if self.obs.enabled:
            self.obs.count("repl.batches")
            self.obs.count("repl.records", len(records))
            self.obs.complete(
                "ship", "replication", commit_s, self.env.now,
                track=self.replica_target(index),
                attrs={"txn_id": txn_id, "records": len(records)},
            )
        wakeup = self._wakeups[index]
        if wakeup is not None and not wakeup.triggered:
            wakeup.succeed()

    # -- replay ----------------------------------------------------------------

    def _record_service_s(self, record: LogRecord) -> float:
        service = self.arch.storage.replay_service_s
        if record.kind is LogKind.INSERT:
            return service.get("insert", 100e-6)
        if record.kind is LogKind.UPDATE:
            return service.get("update", 100e-6)
        if record.kind is LogKind.DELETE:
            return service.get("delete", 50e-6)
        return 0.0

    def _replayer(self, index: int):
        storage = self.arch.storage
        interval = storage.replay_batch_interval_s
        queue = self._queues[index]
        applier = self.appliers[index]
        stats = self.stats[index]
        while True:
            if not queue:
                wakeup = self.env.event()
                self._wakeups[index] = wakeup
                yield wakeup
                self._wakeups[index] = None
            # Batch cadence: wait for the next replay tick so that more
            # records can coalesce (sequential-replay systems batch long).
            yield self.env.timeout(interval)
            if self.chaos is not None:
                # A stalled replayer parks until the stall lifts; the
                # arrived batches coalesce into one big replay after.
                target = self.replica_target(index)
                stall = self.chaos.stalled_until(target, self.env.now)
                while stall is not None and stall > self.env.now:
                    yield self.env.timeout(stall - self.env.now)
                    stall = self.chaos.stalled_until(target, self.env.now)
            drained, queue[:] = queue[:], []
            total_service = sum(
                self._record_service_s(record)
                for _arrived, _txn, records, _commit in drained
                for record in records
            )
            replay_s = total_service / max(1, storage.replay_parallelism)
            if self.chaos is not None:
                replay_s *= self.chaos.slowdown(
                    self.replica_target(index), self.env.now
                )
            replay_start = self.env.now
            if replay_s > 0:
                yield self.env.timeout(replay_s)
            stats.busy_s += replay_s
            if drained and self.obs.enabled:
                self.obs.complete(
                    "replay", "replication", replay_start, self.env.now,
                    track=self.replica_target(index),
                    attrs={
                        "batches": len(drained),
                        "records": sum(len(r) for _, _, r, _ in drained),
                    },
                )
            for _arrived, txn_id, records, commit_s in drained:
                applier.apply_batch(records)
                stats.records_applied += sum(
                    1 for record in records if record.kind is not LogKind.COMMIT
                )
                stats.applied_at[txn_id] = self.env.now
                if self.obs.enabled:
                    self.obs.observe("repl.lag_s", self.env.now - commit_s)

    # -- observability -----------------------------------------------------------

    def replica_lag_records(self, index: int = 0) -> int:
        return self.appliers[index].lag_behind(self.primary.wal.last_lsn)

    def visible_on_replica(self, index: int, sql: str, params=()) -> bool:
        """Real read against the replica: is the probe row visible?"""
        return bool(self.replicas[index].query(sql, params).rows)

    def converged(self) -> bool:
        """True when every replica's content equals the primary's.

        This is the consistency check the paper's lag-time evaluator
        performs ("until the data is consistent between the RW node and
        RO nodes"), done with order-independent content hashes.
        """
        reference = self.primary.content_hash()
        return all(
            replica.content_hash() == reference for replica in self.replicas
        )

"""Parameter dataclasses describing a cloud database architecture.

Everything the simulator knows about a system-under-test is captured in
these specs; :mod:`repro.cloud.architectures` instantiates one bundle
per SUT.  No evaluator reads paper numbers -- they read these physical
parameters and measure the consequences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Optional

GIB = 2**30
MIB = 2**20


class NetworkKind(enum.Enum):
    TCP = "tcp"
    RDMA = "rdma"


@dataclass(frozen=True)
class NetworkSpec:
    """The compute<->storage interconnect."""

    kind: NetworkKind
    bandwidth_gbps: float
    #: one-way latency of a small message, seconds
    latency_s: float

    def transfer_time(self, size_bytes: int) -> float:
        """Latency + serialisation delay for one message of ``size_bytes``."""
        return self.latency_s + size_bytes * 8 / (self.bandwidth_gbps * 1e9)


#: 10 Gbps intra-VPC TCP: ~80 microseconds one way.
TCP_10G = NetworkSpec(NetworkKind.TCP, bandwidth_gbps=10.0, latency_s=80e-6)
#: 10 Gbps RDMA: ~8 microseconds one way.
RDMA_10G = NetworkSpec(NetworkKind.RDMA, bandwidth_gbps=10.0, latency_s=8e-6)
#: 30 Gbps TCP used by tripled isolated-instance tenancy setups.
TCP_30G = NetworkSpec(NetworkKind.TCP, bandwidth_gbps=30.0, latency_s=80e-6)


@dataclass(frozen=True)
class ComputeAllocation:
    """A point-in-time compute allocation (what autoscalers move)."""

    vcores: float
    memory_gb: float

    def __post_init__(self) -> None:
        if self.vcores < 0 or self.memory_gb < 0:
            raise ValueError("allocations cannot be negative")

    @property
    def is_paused(self) -> bool:
        return self.vcores == 0

    def scaled(self, factor: float) -> "ComputeAllocation":
        return ComputeAllocation(self.vcores * factor, self.memory_gb * factor)


@dataclass(frozen=True)
class InstanceSpec:
    """Provisionable compute range of one instance."""

    min_allocation: ComputeAllocation
    max_allocation: ComputeAllocation
    serverless: bool = False
    #: smallest scaling step in vCores (CDB3's 0.25 CU = 0.25 vCore)
    vcore_step: float = 1.0

    def clamp(self, allocation: ComputeAllocation) -> ComputeAllocation:
        vcores = min(max(allocation.vcores, self.min_allocation.vcores),
                     self.max_allocation.vcores)
        memory = min(max(allocation.memory_gb, self.min_allocation.memory_gb),
                     self.max_allocation.memory_gb)
        return ComputeAllocation(vcores, memory)


class StorageKind(enum.Enum):
    """The five storage organisations in the paper's SUT inventory."""

    LOCAL = "local"                # RDS: coupled compute + local NVMe
    DISAGGREGATED = "disaggregated"  # CDB1: shared storage, redo pushdown
    LOG_PAGE = "log_page"          # CDB2: split log service / page service
    COMPUTE_LOG_STORAGE = "compute_log_storage"  # CDB3: safekeepers + pageservers
    MEMORY_DISAGGREGATED = "memory_disaggregated"  # CDB4: remote buffer pool


@dataclass(frozen=True)
class StorageProfile:
    """Storage-side behaviour of an architecture."""

    kind: StorageKind
    #: service time of one page fetch at the storage/page server, seconds
    page_fetch_s: float
    #: concurrent fetch channels at the storage service
    fetch_channels: int
    #: commit-path log write service time, seconds
    log_write_s: float
    #: concurrent log append channels (group commit width)
    log_channels: int
    #: replication factor billed for storage capacity
    replication_factor: int
    #: True when redo is pushed to storage: compute never flushes dirty pages
    redo_pushdown: bool
    #: parallel replay workers on a read replica
    replay_parallelism: int
    #: per-record replay service time on the replica, by record kind
    replay_service_s: Dict[str, float]
    #: extra one-way hops on the replication path (log svc -> page svc ...)
    ship_hops: int = 1
    #: how often shipped log is handed to the replayer (batching cadence)
    replay_batch_interval_s: float = 0.01
    #: fetch latency of cold data from object storage (CDB3), seconds
    cold_fetch_s: Optional[float] = None
    #: fraction of the working set living in the cold tier (CDB3)
    cold_fraction: float = 0.0
    #: backing-store fetch behind a remote buffer pool (CDB4), seconds
    backing_fetch_s: float = 0.0
    #: concurrent channels into that backing store
    backing_channels: int = 8
    #: end-to-end commit acknowledgement latency seen by the client
    #: (quorum round trips, log-service hop); pure delay, not occupancy
    commit_delay_s: float = 0.0


@dataclass(frozen=True)
class RecoveryProfile:
    """Fail-over behaviour (Table VIII / Figure 7)."""

    #: heartbeat interval -> failure detection time, seconds
    heartbeat_s: float
    #: notify-and-freeze time in the prepare phase, seconds
    prepare_s: float
    #: promoting an RO node to RW (switch-over), seconds
    promote_s: float
    #: restarting a failed node's process, seconds
    restart_s: float
    #: log records replayed per second during recovery redo
    redo_rate_records_s: float
    #: undo scan rate: active transactions rolled back per second
    undo_rate_txns_s: float
    #: does a warm remote buffer survive the failure? (CDB4)
    remote_buffer_survives: bool = False
    #: must dirty pages be flushed before service resumes? (ARIES restart)
    flush_before_restart: bool = False
    #: cache warm-up time constant after an RW fail-over, seconds
    warmup_tau_rw_s: float = 10.0
    #: cache warm-up time constant after an RO restart, seconds
    warmup_tau_ro_s: float = 10.0
    #: restart time of a failed RO replica (usually shorter than the
    #: primary's: no ARIES pass, just reattach and catch up)
    ro_restart_s: float = 4.0


class ScalingKind(enum.Enum):
    FIXED = "fixed"
    THRESHOLD_GRADUAL = "threshold_gradual"   # CDB1: fast up, gradual down
    ON_DEMAND = "on_demand"                   # CDB2: periodic re-fit both ways
    CU_PAUSE_RESUME = "cu_pause_resume"       # CDB3: CU steps + scale-to-zero
    PROACTIVE = "proactive"                   # Moneyball/Seagull-style forecasting


@dataclass(frozen=True)
class ScalingPolicySpec:
    kind: ScalingKind
    #: how long after a demand change the scaler reacts, seconds
    reaction_s: float = 30.0
    #: utilisation above which the policy scales up
    up_threshold: float = 0.8
    #: utilisation below which the policy scales down
    down_threshold: float = 0.5
    #: gradual scale-down: one step every this many seconds (CDB1)
    gradual_step_s: float = 120.0
    #: demand must be stable this long before a partial scale-down (CDB3)
    down_stabilization_s: float = 180.0
    #: idle time before pausing to zero (CDB3)
    pause_after_s: float = 60.0
    #: cold resume penalty when un-pausing, seconds
    resume_s: float = 5.0
    #: how far ahead a proactive policy pre-scales, seconds
    lead_s: float = 20.0
    #: cache warm-up time constant after a scale-up event, seconds.
    #: Serverless scale-ups move the instance to a bigger footprint with
    #: a cold(er) buffer, which is why the paper measures 32%-82% lower
    #: throughput with serverless enabled.
    scaling_warm_tau_s: float = 0.0


class TenancyKind(enum.Enum):
    ISOLATED = "isolated"        # instance per tenant (RDS, CDB1, CDB4)
    ELASTIC_POOL = "elastic_pool"  # shared vcores/memory/log (CDB2)
    BRANCH = "branch"            # copy-on-write branches (CDB3)


@dataclass(frozen=True)
class TenancySpec:
    kind: TenancyKind
    #: throughput efficiency lost per 100% overcommit in a shared pool
    overcommit_penalty: float = 0.0
    #: network/IOPS multiplier when instances are separate (tripled cost)
    isolation_cost_factor: int = 1


@dataclass(frozen=True)
class PricingModel:
    """Vendor *actual* pricing (the starred scores in Table IX)."""

    vcore_hour: float
    memory_gb_hour: float
    storage_gb_hour: float
    iops_100_hour: float
    network_gbps_hour: float
    #: minimum billing granularity, seconds (RDS bills >= 10 minutes)
    min_billing_s: float = 1.0
    #: flat hourly platform fee (elastic pools charge the pool)
    platform_hour: float = 0.0


@dataclass(frozen=True)
class ProvisionedPackage:
    """The resource bundle billed for a steady-state deployment."""

    vcores: float
    memory_gb: float
    storage_gb: float
    iops: float
    network_gbps: float
    network_kind: NetworkKind

    def scaled(self, compute_factor: float = 1.0, io_factor: float = 1.0) -> "ProvisionedPackage":
        return replace(
            self,
            vcores=self.vcores * compute_factor,
            memory_gb=self.memory_gb * compute_factor,
            iops=self.iops * io_factor,
            network_gbps=self.network_gbps * io_factor,
        )

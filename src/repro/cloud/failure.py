"""Fail-over simulation: node failure injection and recovery timelines.

Mirrors the paper's *restart model*: a node failure is injected while a
constant workload runs; the simulator produces (i) a phase log of the
cluster manager's recovery pipeline (Figure 7) and (ii) a TPS timeline
from which the evaluator measures

* **F-Score** -- failure injection until the service first responds
  again (TPS > 0), and
* **R-Score** -- service restoration until TPS returns to the
  pre-failure level (cache warm-up).

The pipeline durations are *derived*, not scripted: detection comes
from the heartbeat interval, redo from the log backlog accumulated
since the last checkpoint divided by the replay rate, undo from the
number of in-flight transactions, and warm-up from re-running the
throughput model with partially warm caches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.chaos.injector import GRAY_SLOWDOWN, MAX_LOSS
from repro.chaos.plan import ENGINE_KINDS, FaultKind, FaultSpec
from repro.cloud.architectures import Architecture
from repro.cloud.mva_model import estimate_throughput
from repro.cloud.specs import ComputeAllocation
from repro.cloud.workload_model import WorkloadMix
from repro.obs import NULL_OBSERVER, Observer

#: log records produced per writing transaction (begin + data + commit)
RECORDS_PER_WRITE_TXN = 3.0


@dataclass(frozen=True)
class FailoverPhase:
    """One phase of the recovery pipeline."""

    name: str
    start_s: float
    end_s: float
    description: str

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class FailoverResult:
    """Outcome of one failure injection."""

    arch_name: str
    node: str                      # "rw" or "ro"
    inject_s: float
    service_restored_s: float
    tps_recovered_s: float
    steady_tps: float
    phases: List[FailoverPhase] = field(default_factory=list)
    timeline: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def f_score_s(self) -> float:
        """Seconds from injection to first successful request."""
        return self.service_restored_s - self.inject_s

    @property
    def r_score_s(self) -> float:
        """Seconds from service restoration to full TPS recovery."""
        return self.tps_recovered_s - self.service_restored_s

    @property
    def total_s(self) -> float:
        return self.tps_recovered_s - self.inject_s


class FailoverSimulator:
    """Injects a restart failure and replays the recovery pipeline."""

    def __init__(
        self,
        arch: Architecture,
        workload: WorkloadMix,
        concurrency: int = 150,
        allocation: Optional[ComputeAllocation] = None,
        recovery_threshold: float = 0.95,
        observer: Optional[Observer] = None,
    ):
        self.arch = arch
        self.workload = workload
        self.obs = observer or NULL_OBSERVER
        self.concurrency = concurrency
        self.allocation = allocation or arch.instance.max_allocation
        self.recovery_threshold = recovery_threshold
        self._steady = estimate_throughput(
            arch, workload, concurrency, self.allocation
        ).tps

    @property
    def steady_tps(self) -> float:
        return self._steady

    # -- pipeline construction ----------------------------------------------------

    def _service_phases(self, node: str, inject_s: float) -> List[FailoverPhase]:
        """The outage pipeline: from injection to first served request."""
        recovery = self.arch.recovery
        storage = self.arch.storage
        phases: List[FailoverPhase] = []
        t = inject_s

        detect_end = t + recovery.heartbeat_s
        phases.append(
            FailoverPhase("detect", t, detect_end,
                          "heartbeat misses reveal the failed node")
        )
        t = detect_end

        if node == "ro":
            restart_end = t + recovery.ro_restart_s
            phases.append(
                FailoverPhase("restart", t, restart_end,
                              "replica process restarts and reattaches")
            )
            t = restart_end
            catchup = self._redo_backlog_s()
            if catchup > 0:
                phases.append(
                    FailoverPhase("catchup", t, t + catchup,
                                  "replica replays the log shipped during the outage")
                )
                t += catchup
            return phases

        # RW failure: prepare -> switch over (or restart) -> redo -> undo
        prepare_end = t + recovery.prepare_s
        phases.append(
            FailoverPhase("prepare", t, prepare_end,
                          "cluster manager freezes requests, collects page/checkpoint LSNs")
        )
        t = prepare_end

        if storage.redo_pushdown or self.arch.remote_buffer_bytes > 0:
            switch_end = t + recovery.promote_s
            phases.append(
                FailoverPhase("switch_over", t, switch_end,
                              "an RO node is promoted to RW; the old RW restarts as RO")
            )
            t = switch_end
        else:
            restart_end = t + recovery.restart_s
            phases.append(
                FailoverPhase("restart", t, restart_end,
                              "failed primary restarts in place (ARIES restart)")
            )
            t = restart_end

        redo_s = self._redo_backlog_s()
        if redo_s > 0:
            phases.append(
                FailoverPhase("redo", t, t + redo_s,
                              "log since the last checkpoint is replayed")
            )
            t += redo_s

        undo_s = self.concurrency / self.arch.recovery.undo_rate_txns_s
        phases.append(
            FailoverPhase("undo", t, t + undo_s,
                          "in-flight transactions are rolled back from undo logs")
        )
        return phases

    def _service_restored_at(self, phases: List[FailoverPhase]) -> float:
        """When the first request succeeds.

        With a surviving remote buffer pool (CDB4) the promoted RW node
        serves new requests while the undo scan proceeds in the
        background, so service restores at the end of switch-over.
        """
        if (
            self.arch.recovery.remote_buffer_survives
            and phases
            and phases[-1].name == "undo"
        ):
            return phases[-1].start_s
        return phases[-1].end_s

    def _redo_backlog_s(self) -> float:
        """Seconds of redo replay owed at the failure point."""
        recovery = self.arch.recovery
        interval = self.arch.checkpoint_interval_s
        if (
            interval <= 0
            or self.arch.storage.redo_pushdown
            or recovery.remote_buffer_survives
        ):
            # Storage (or the surviving remote buffer pool) already holds
            # the materialised pages; nothing to redo.
            return 0.0
        write_tps = self._steady * self.workload.write_fraction
        backlog_records = write_tps * RECORDS_PER_WRITE_TXN * interval / 2.0
        return backlog_records / recovery.redo_rate_records_s

    def _emit_phases(self, node: str, phases: List[FailoverPhase]) -> None:
        """One complete span per recovery phase on the node's track."""
        if not self.obs.enabled:
            return
        for phase in phases:
            self.obs.complete(
                phase.name, "failover", phase.start_s, phase.end_s,
                track=f"failover:{node}",
                attrs={"description": phase.description},
            )
            self.obs.count(f"cloud.failover.phase.{phase.name}")

    # -- the run ----------------------------------------------------------------------

    def run(
        self,
        node: str = "rw",
        inject_at_s: float = 30.0,
        tick_s: float = 0.5,
        max_duration_s: float = 600.0,
    ) -> FailoverResult:
        """Inject a ``node`` failure and trace TPS until full recovery."""
        if node not in ("rw", "ro"):
            raise ValueError(f"node must be 'rw' or 'ro', got {node!r}")
        recovery = self.arch.recovery
        phases = self._service_phases(node, inject_at_s)
        service_restored = self._service_restored_at(phases)

        warm_tau = (
            recovery.warmup_tau_rw_s if node == "rw" else recovery.warmup_tau_ro_s
        )
        # During an RO outage writes continue on the primary; only the
        # read share routed to the replica is lost.
        outage_floor = 0.0 if node == "rw" else self._steady * (
            self.workload.write_fraction + (1 - self.workload.write_fraction) * 0.5
        )
        target = self.recovery_threshold * self._steady

        # Post-restoration throughput follows the buffer warm-up ramp:
        # re-priming the caches and the background redo/undo work both
        # throttle foreground transactions, easing off exponentially.
        timeline: List[Tuple[float, float]] = []
        tps_recovered: Optional[float] = None
        t = 0.0
        while t <= max_duration_s:
            if t < inject_at_s:
                tps = self._steady
            elif t < service_restored:
                tps = outage_floor
            else:
                since = t - service_restored
                ramp = 1.0 - math.exp(-since / warm_tau) if warm_tau > 0 else 1.0
                tps = outage_floor + (self._steady - outage_floor) * ramp
                if tps_recovered is None and tps >= target:
                    tps_recovered = t
            timeline.append((t, tps))
            if tps_recovered is not None and t > tps_recovered + 5.0:
                break
            t += tick_s
        if tps_recovered is None:
            tps_recovered = max_duration_s
        self._emit_phases(node, phases)
        return FailoverResult(
            arch_name=self.arch.name,
            node=node,
            inject_s=inject_at_s,
            service_restored_s=service_restored,
            tps_recovered_s=tps_recovered,
            steady_tps=self._steady,
            phases=phases,
            timeline=timeline,
        )

    # -- dirty faults --------------------------------------------------------------

    def _fault_floor(self, spec: FaultSpec) -> float:
        """TPS while ``spec`` actively bites (the degraded plateau).

        An RW-target fault gates all traffic; an RO-target fault only
        the read share routed to that replica (half, as in :meth:`run`).
        Partitions sever their share entirely, gray/delay/loss faults
        scale it by the modelled slowdown of the degraded path.
        """
        rw = spec.target in ("rw", "primary")
        share = 1.0 if rw else (1.0 - self.workload.write_fraction) * 0.5
        kind = spec.kind
        if kind in (FaultKind.PARTITION, FaultKind.FLAP):
            lost = share
        elif kind is FaultKind.STALL:
            # replay is parked, not the server: stale reads still answer
            lost = share * 0.5
        elif kind is FaultKind.GRAY:
            lost = share * spec.intensity * (1.0 - 1.0 / GRAY_SLOWDOWN)
        elif kind is FaultKind.DELAY:
            lost = share * (1.0 - 1.0 / (1.0 + spec.intensity))
        elif kind is FaultKind.LOSS:
            lost = share * min(MAX_LOSS, spec.intensity)
        else:  # pragma: no cover - guarded by run_fault
            raise ValueError(f"no throughput model for {kind}")
        return self._steady * (1.0 - lost)

    def run_fault(
        self,
        spec: FaultSpec,
        tick_s: float = 0.5,
        max_duration_s: float = 600.0,
    ) -> FailoverResult:
        """Trace TPS through a *dirty* fault (paper's restart model only
        covers clean crashes).

        Gray, delayed, lossy, stalled, partitioned and flapping targets
        degrade rather than kill the service, so F/R-Scores take their
        degraded-plateau meaning: F-Score is zero whenever some goodput
        survives the whole fault, and R-Score measures the backlog
        catch-up plus ramp after the fault clears.  CRASH specs delegate
        to :meth:`run` -- that *is* the clean restart model.
        """
        if spec.kind is FaultKind.CRASH:
            node = "rw" if spec.target in ("rw", "primary") else "ro"
            return self.run(
                node=node, inject_at_s=spec.start_s,
                tick_s=tick_s, max_duration_s=max_duration_s,
            )
        if spec.kind in ENGINE_KINDS:
            raise ValueError(
                f"{spec.kind.value} is a WAL-level fault; arm it on the "
                "engine (see repro.engine.wal) instead of the simulator"
            )
        recovery = self.arch.recovery
        rw = spec.target in ("rw", "primary")
        floor = self._fault_floor(spec)

        # Replication-blocking faults owe a log backlog once they clear.
        blocked_s = spec.duration_s * (
            0.5 if spec.kind is FaultKind.FLAP else 1.0
        )
        catchup_s = 0.0
        if not rw and spec.kind in (
            FaultKind.PARTITION, FaultKind.FLAP, FaultKind.STALL
        ):
            write_tps = self._steady * self.workload.write_fraction
            backlog = write_tps * RECORDS_PER_WRITE_TXN * blocked_s
            catchup_s = backlog / recovery.redo_rate_records_s

        phases = [
            FailoverPhase(
                "detect", spec.start_s, spec.start_s + recovery.heartbeat_s,
                "probe latencies flag the degraded target",
            ),
            FailoverPhase(
                spec.kind.value, spec.start_s, spec.end_s,
                f"{spec.target} degraded at intensity {spec.intensity:g}",
            ),
        ]
        if catchup_s > 0:
            phases.append(
                FailoverPhase(
                    "catchup", spec.end_s, spec.end_s + catchup_s,
                    "replica replays the log held back during the fault",
                )
            )

        # Dirty faults do not flush caches, so the post-fault ramp is
        # far quicker than a restart warm-up.
        warm_tau = (
            recovery.warmup_tau_rw_s if rw else recovery.warmup_tau_ro_s
        )
        tau = min(2.0, 0.25 * warm_tau)
        ramp_start = spec.end_s + catchup_s
        service_restored = spec.end_s if floor <= 0 else spec.start_s
        target = self.recovery_threshold * self._steady

        timeline: List[Tuple[float, float]] = []
        tps_recovered: Optional[float] = None
        t = 0.0
        while t <= max_duration_s:
            if t < spec.start_s:
                tps = self._steady
            elif t < spec.end_s:
                tps = floor if spec.active_at(t) else self._steady
            elif t < ramp_start:
                tps = floor
            else:
                since = t - ramp_start
                ramp = 1.0 - math.exp(-since / tau) if tau > 0 else 1.0
                tps = floor + (self._steady - floor) * ramp
                if tps_recovered is None and tps >= target:
                    tps_recovered = t
            timeline.append((t, tps))
            if tps_recovered is not None and t > tps_recovered + 5.0:
                break
            t += tick_s
        if tps_recovered is None:
            tps_recovered = max_duration_s
        self._emit_phases(spec.target, phases)
        return FailoverResult(
            arch_name=self.arch.name,
            node=spec.target,
            inject_s=spec.start_s,
            service_restored_s=service_restored,
            tps_recovered_s=tps_recovered,
            steady_tps=self._steady,
            phases=phases,
            timeline=timeline,
        )

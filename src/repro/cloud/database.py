"""``CloudDatabase``: one provisioned deployment of an architecture.

This facade is what the CloudyBench evaluators talk to.  It bundles an
:class:`~repro.cloud.architectures.Architecture` with a current compute
allocation and replica count, and hands out the right simulator for
each evaluation (throughput estimates, autoscalers, tenancy schedulers,
fail-over and replication pipelines).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.cloud.architectures import Architecture, get as get_architecture
from repro.cloud.autoscaler import Autoscaler
from repro.cloud.failure import FailoverSimulator
from repro.cloud.mva_model import ThroughputEstimate, estimate_throughput
from repro.cloud.replication import ReplicationPipeline
from repro.cloud.specs import ComputeAllocation, ProvisionedPackage
from repro.cloud.tenancy import TenantScheduler
from repro.cloud.workload_model import WorkloadMix
from repro.engine.database import Database
from repro.sim.events import Environment


class CloudDatabase:
    """A deployed instance (RW node + ``n_replicas`` RO nodes)."""

    def __init__(
        self,
        arch: Architecture | str,
        n_replicas: int = 1,
        allocation: Optional[ComputeAllocation] = None,
    ):
        self.arch = get_architecture(arch) if isinstance(arch, str) else arch
        if n_replicas < 0:
            raise ValueError("replica count cannot be negative")
        self.n_replicas = n_replicas
        self.allocation = allocation or self.arch.instance.max_allocation

    @property
    def name(self) -> str:
        return self.arch.name

    @property
    def display_name(self) -> str:
        return self.arch.display_name

    # -- steady state ------------------------------------------------------------

    def estimate(
        self,
        workload: WorkloadMix,
        concurrency: int,
        allocation: Optional[ComputeAllocation] = None,
        **kwargs,
    ) -> ThroughputEstimate:
        """Steady-state operating point under ``concurrency`` clients."""
        return estimate_throughput(
            self.arch,
            workload,
            concurrency,
            allocation or self.allocation,
            **kwargs,
        )

    def provisioned_package(
        self, data_gb: Optional[float] = None, tenants: int = 1
    ) -> ProvisionedPackage:
        """The billed resource bundle for this deployment.

        ``data_gb`` overrides the billed storage (data x replication
        factor); ``tenants`` > 1 multiplies per-instance resources for
        isolated tenancy (separate instances triple network and IOPS).
        """
        package = self.arch.provisioned
        if data_gb is not None:
            package = replace(
                package,
                storage_gb=data_gb * self.arch.storage.replication_factor,
            )
        if tenants > 1:
            factor = self.arch.tenancy.isolation_cost_factor
            separate = factor > 1
            package = replace(
                package,
                vcores=package.vcores * tenants,
                memory_gb=package.memory_gb * tenants,
                storage_gb=package.storage_gb * tenants,
                iops=package.iops * (tenants if separate else 1),
                network_gbps=package.network_gbps * (tenants if separate else 1),
            )
        return package

    # -- dynamic simulators ----------------------------------------------------------

    def autoscaler(self, workload: WorkloadMix) -> Autoscaler:
        return Autoscaler(self.arch, workload)

    def admission_gate(self, db: Database, **kwargs) -> "AdmissionGate":
        """Overload-protected facade over an engine of this deployment.

        Keyword arguments are forwarded to
        :class:`~repro.qos.gate.AdmissionGate` (controller, clock,
        default_timeout_s).
        """
        from repro.qos.gate import AdmissionGate

        return AdmissionGate(db, **kwargs)

    def failover_simulator(
        self, workload: WorkloadMix, concurrency: int = 150, **kwargs
    ) -> FailoverSimulator:
        return FailoverSimulator(self.arch, workload, concurrency, **kwargs)

    def tenant_scheduler(
        self, workload: WorkloadMix, n_tenants: int, slot_seconds: float = 60.0
    ) -> TenantScheduler:
        return TenantScheduler(self.arch, workload, n_tenants, slot_seconds)

    def replication_pipeline(
        self, env: Environment, primary: Database
    ) -> ReplicationPipeline:
        return ReplicationPipeline(
            env, self.arch, primary, n_replicas=max(1, self.n_replicas)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CloudDatabase {self.arch.name} "
            f"{self.allocation.vcores}vC/{self.allocation.memory_gb}GB "
            f"+{self.n_replicas}RO>"
        )

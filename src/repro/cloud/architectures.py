"""The five systems-under-test, as parameter bundles.

Each factory mirrors one row of the paper's Table IV plus the
architectural narrative of Section III-A:

* ``aws_rds`` -- coupled compute/storage, local NVMe, ARIES restart
  recovery, dirty-page flushing and checkpointing, no autoscaling.
* ``cdb1``    -- storage disaggregation with redo pushdown (Aurora
  lineage): fast threshold scale-up, *gradual* scale-down, six-way
  replicated storage, sequential log replay on replicas.
* ``cdb2``    -- separated log service and page service on a SQL Server
  engine (Socrates/HyperScale lineage): tiny 44 MB buffer, elastic-pool
  multi-tenancy, on-demand scaling with a 0.5 vCore floor.
* ``cdb3``    -- compute/log/storage disaggregation on PostgreSQL (Neon
  lineage): safekeepers, parallel log replay, a Local File Cache,
  CU-granular scaling with pause-and-resume, branch tenancy.
* ``cdb4``    -- memory disaggregation (PolarDB-MP lineage): 10 GB local
  plus 24 GB remote buffer over RDMA, cache invalidation, fast
  switch-over; fixed provisioning.

Registering a new SUT is one :func:`register` call, mirroring the
paper's extensibility claim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List

from repro.cloud.specs import (
    GIB,
    MIB,
    ComputeAllocation,
    InstanceSpec,
    NetworkKind,
    NetworkSpec,
    PricingModel,
    ProvisionedPackage,
    RDMA_10G,
    RecoveryProfile,
    ScalingKind,
    ScalingPolicySpec,
    StorageKind,
    StorageProfile,
    TCP_10G,
    TenancyKind,
    TenancySpec,
)


@dataclass(frozen=True)
class Architecture:
    """Complete parameter bundle for one system-under-test."""

    name: str
    display_name: str
    engine: str
    #: relative CPU efficiency of the engine + service path (1.0 = reference)
    cpu_efficiency: float
    #: extra CPU seconds burned per buffer miss (read path, network stack)
    miss_cpu_s: float
    #: default local buffer pool size, bytes (Table IV)
    buffer_bytes: int
    #: extra fraction of instance RAM acting as a second-level page cache
    #: (OS page cache for local storage; the Local File Cache for CDB3)
    second_cache_fraction: float
    #: remote shared buffer pool, bytes (CDB4's memory disaggregation)
    remote_buffer_bytes: int
    #: dirty-flush amplification coefficient (0 when redo is pushed down)
    flush_coeff: float
    #: checkpoint cadence of ARIES-style engines, seconds
    checkpoint_interval_s: float
    instance: InstanceSpec
    network: NetworkSpec
    storage: StorageProfile
    recovery: RecoveryProfile
    scaling: ScalingPolicySpec
    tenancy: TenancySpec
    pricing: PricingModel
    provisioned: ProvisionedPackage
    #: fetch latency of the second-level cache (OS cache / SSD / LFC)
    second_cache_fetch_s: float = 5e-6
    #: CPU-equivalent overhead per in-place row update: cache invalidation
    #: round trips (CDB4), quorum acknowledgement (CDB1), page-service
    #: update propagation (CDB2/CDB3); near zero for a coupled engine
    update_overhead_s: float = 0.0
    #: extra overhead per updated row whose page misses the cache: the
    #: page must be fetched from disaggregated storage before the
    #: in-place update (read-modify-write on the critical path).  This
    #: is what makes CDB1's throughput so sensitive to its buffer size
    #: in the paper's Figure 8.
    update_miss_overhead_s: float = 0.0
    #: read-throughput gained per added RO node relative to one node's
    #: read capacity (E2 scale-out; replicas of disaggregated systems
    #: contend on shared page services, RDS replicas own a full copy)
    replica_efficiency: float = 1.0

    def buffer_bytes_at(self, allocation: ComputeAllocation) -> int:
        """Local buffer size when ``allocation`` is provisioned.

        Serverless instances shrink the buffer proportionally with
        memory; fixed instances keep the configured size.
        """
        max_memory = self.instance.max_allocation.memory_gb
        if not self.instance.serverless or max_memory == 0:
            return self.buffer_bytes
        fraction = min(1.0, allocation.memory_gb / max_memory)
        return max(int(self.buffer_bytes * fraction), 8 * MIB)

    def second_cache_bytes_at(self, allocation: ComputeAllocation) -> int:
        return int(allocation.memory_gb * GIB * self.second_cache_fraction)

    def with_buffer(self, buffer_bytes: int) -> "Architecture":
        """A copy with a different local buffer (the Figure 8 sweep)."""
        return replace(self, buffer_bytes=buffer_bytes)


_REGISTRY: Dict[str, Callable[[], Architecture]] = {}


def register(name: str, factory: Callable[[], Architecture]) -> None:
    """Add (or replace) an architecture factory under ``name``."""
    _REGISTRY[name] = factory


def get(name: str) -> Architecture:
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_architectures() -> List[Architecture]:
    """All registered SUTs in the paper's presentation order."""
    order = ["aws_rds", "cdb1", "cdb2", "cdb3", "cdb4"]
    names = order + sorted(set(_REGISTRY) - set(order))
    return [get(name) for name in names if name in _REGISTRY]


# ---------------------------------------------------------------------------
# factories
# ---------------------------------------------------------------------------

def aws_rds() -> Architecture:
    """AWS RDS representative: PostgreSQL 15 on local NVMe, fixed size."""
    return Architecture(
        name="aws_rds",
        display_name="AWS RDS",
        engine="PostgreSQL 15",
        cpu_efficiency=1.0,
        miss_cpu_s=40e-6,
        buffer_bytes=128 * MIB,
        # PostgreSQL leans on the OS page cache for everything beyond
        # shared_buffers; roughly half the RAM is file cache in steady state.
        second_cache_fraction=0.5,
        remote_buffer_bytes=0,
        # Coupled ARIES engine: dirty-page flushing + checkpointing cost
        # grows once the working set exceeds the cache.
        flush_coeff=0.9,
        checkpoint_interval_s=30.0,
        instance=InstanceSpec(
            min_allocation=ComputeAllocation(4, 16),
            max_allocation=ComputeAllocation(4, 16),
            serverless=False,
        ),
        network=TCP_10G,
        storage=StorageProfile(
            kind=StorageKind.LOCAL,
            page_fetch_s=110e-6,       # local NVMe read
            fetch_channels=16,
            log_write_s=60e-6,         # local fsync with group commit
            log_channels=4,
            replication_factor=2,      # primary volume + standby copy
            redo_pushdown=False,
            replay_parallelism=1,
            replay_service_s={"insert": 90e-6, "update": 90e-6, "delete": 45e-6},
            ship_hops=1,
            replay_batch_interval_s=0.02,
            commit_delay_s=1.2e-3,     # fsync + synchronous standby ack
        ),
        recovery=RecoveryProfile(
            heartbeat_s=4.0,
            prepare_s=2.0,
            promote_s=6.0,
            restart_s=12.0,
            redo_rate_records_s=60_000,
            undo_rate_txns_s=100,
            remote_buffer_survives=False,
            flush_before_restart=True,
            warmup_tau_rw_s=7.0,
            warmup_tau_ro_s=11.0,
            ro_restart_s=2.0,          # replica process restart, no ARIES
        ),
        scaling=ScalingPolicySpec(kind=ScalingKind.FIXED),
        tenancy=TenancySpec(kind=TenancyKind.ISOLATED, isolation_cost_factor=3),
        pricing=PricingModel(
            # On-demand list prices: roughly 2x the reserved/RUC level,
            # and the instance bills at least ten minutes per run.  This
            # is what drives RDS to the bottom of the starred scores.
            vcore_hour=0.46,
            memory_gb_hour=0.027,
            storage_gb_hour=0.00025,
            iops_100_hour=0.0120,
            network_gbps_hour=0.21,
            min_billing_s=600.0,       # bills at least ten minutes
        ),
        provisioned=ProvisionedPackage(
            vcores=4, memory_gb=16, storage_gb=42, iops=1000,
            network_gbps=10, network_kind=NetworkKind.TCP,
        ),
        second_cache_fetch_s=3e-6,     # OS page cache: memory copy
        update_overhead_s=60e-6,       # local page update, no coherence work
        replica_efficiency=1.40,       # replica has its own local SSD copy
    )


def cdb1() -> Architecture:
    """Storage disaggregation with redo pushdown (Aurora lineage)."""
    return Architecture(
        name="cdb1",
        display_name="CDB1",
        engine="PostgreSQL 15",
        cpu_efficiency=1.10,           # lean read path; writes pay the quorum
        miss_cpu_s=35e-6,              # misses traverse the network stack
        buffer_bytes=128 * MIB,
        second_cache_fraction=0.0,     # direct I/O to shared storage
        remote_buffer_bytes=0,
        flush_coeff=0.0,               # redo pushed down: no dirty flushing
        checkpoint_interval_s=0.0,
        instance=InstanceSpec(
            # CPU:memory stays at the 1:8 ratio the paper bills (Table V:
            # 4 vCores / 32 GB), which is what makes CDB1's elastic cost high.
            min_allocation=ComputeAllocation(1, 8),
            max_allocation=ComputeAllocation(4, 32),
            serverless=True,
            vcore_step=0.5,
        ),
        network=TCP_10G,
        storage=StorageProfile(
            kind=StorageKind.DISAGGREGATED,
            page_fetch_s=300e-6,       # storage-node page materialisation
            fetch_channels=12,
            log_write_s=220e-6,        # quorum log write over the network
            log_channels=2,
            replication_factor=6,      # six-way replication
            redo_pushdown=True,
            replay_parallelism=1,      # sequential replay on replicas
            replay_service_s={"insert": 900e-6, "update": 450e-6, "delete": 120e-6},
            ship_hops=1,
            replay_batch_interval_s=0.15,
            commit_delay_s=4.0e-3,     # six-way quorum acknowledgement
        ),
        recovery=RecoveryProfile(
            heartbeat_s=2.0,
            prepare_s=1.0,
            promote_s=2.0,
            restart_s=2.0,
            redo_rate_records_s=400_000,  # storage already materialised pages
            undo_rate_txns_s=1_000,
            remote_buffer_survives=False,
            flush_before_restart=False,
            warmup_tau_rw_s=6.0,
            warmup_tau_ro_s=0.5,       # replicas page in from storage fast
            ro_restart_s=4.0,
        ),
        scaling=ScalingPolicySpec(
            kind=ScalingKind.THRESHOLD_GRADUAL,
            reaction_s=10.0,
            up_threshold=0.75,
            down_threshold=0.5,
            gradual_step_s=120.0,      # one step down every two minutes
            scaling_warm_tau_s=45.0,   # slow buffer refill from shared storage
        ),
        tenancy=TenancySpec(kind=TenancyKind.ISOLATED, isolation_cost_factor=3),
        pricing=PricingModel(
            vcore_hour=0.18,
            memory_gb_hour=0.02,
            storage_gb_hour=0.000138,
            iops_100_hour=0.0048,
            network_gbps_hour=0.08,
            min_billing_s=60.0,
        ),
        provisioned=ProvisionedPackage(
            vcores=4, memory_gb=32, storage_gb=126, iops=1000,
            network_gbps=10, network_kind=NetworkKind.TCP,
        ),
        update_overhead_s=700e-6,      # six-way quorum acknowledgement path
        update_miss_overhead_s=3200e-6,  # read-modify-write page fetch
        replica_efficiency=0.46,       # replicas share the storage fleet
    )


def cdb2() -> Architecture:
    """Separated log and page services (Socrates/HyperScale lineage)."""
    return Architecture(
        name="cdb2",
        display_name="CDB2",
        engine="SQL Server 12",
        cpu_efficiency=0.63,
        miss_cpu_s=90e-6,
        buffer_bytes=44 * MIB,         # the paper calls this the bottleneck
        second_cache_fraction=0.05,    # thin resilient SSD cache slice
        remote_buffer_bytes=0,
        flush_coeff=0.0,               # pages regenerated by the page service
        checkpoint_interval_s=0.0,
        instance=InstanceSpec(
            min_allocation=ComputeAllocation(0.5, 2),
            max_allocation=ComputeAllocation(4, 12),
            serverless=True,
            vcore_step=0.5,
        ),
        network=TCP_10G,
        storage=StorageProfile(
            kind=StorageKind.LOG_PAGE,
            page_fetch_s=380e-6,       # page-service fetch (general device)
            fetch_channels=10,
            log_write_s=120e-6,        # log service on fast storage
            log_channels=1,
            replication_factor=3,
            redo_pushdown=True,
            replay_parallelism=1,
            replay_service_s={"insert": 1.4e-3, "update": 1.6e-3, "delete": 300e-6},
            ship_hops=2,               # log service -> page service -> replica
            replay_batch_interval_s=1.0,
            commit_delay_s=2.5e-3,     # log-service hop on the commit path
        ),
        recovery=RecoveryProfile(
            heartbeat_s=2.0,
            prepare_s=1.0,
            promote_s=2.0,
            restart_s=2.0,
            redo_rate_records_s=150_000,
            undo_rate_txns_s=800,
            remote_buffer_survives=False,
            flush_before_restart=False,
            warmup_tau_rw_s=12.0,      # 44 MB buffer refills via page service
            warmup_tau_ro_s=6.5,
            ro_restart_s=4.0,
        ),
        scaling=ScalingPolicySpec(
            kind=ScalingKind.ON_DEMAND,
            reaction_s=30.0,           # re-fits allocation roughly every 30 s
            up_threshold=0.75,
            down_threshold=0.55,
            scaling_warm_tau_s=10.0,   # tiny buffer refills quickly
        ),
        tenancy=TenancySpec(
            kind=TenancyKind.ELASTIC_POOL,
            overcommit_penalty=0.45,
            isolation_cost_factor=1,
        ),
        pricing=PricingModel(
            vcore_hour=0.42,
            memory_gb_hour=0.011,
            storage_gb_hour=0.00016,
            iops_100_hour=0.0001,
            network_gbps_hour=0.08,
            min_billing_s=3600.0,      # the elastic pool bills hourly
        ),
        provisioned=ProvisionedPackage(
            vcores=4, memory_gb=20, storage_gb=63, iops=327_680,
            network_gbps=10, network_kind=NetworkKind.TCP,
        ),
        second_cache_fetch_s=60e-6,    # resilient SSD cache read
        update_overhead_s=1300e-6,     # update propagation through log+page services
        replica_efficiency=1.48,       # named replicas get their own SSD cache
    )


def cdb3() -> Architecture:
    """Compute/log/storage disaggregation with pause-and-resume (Neon lineage)."""
    return Architecture(
        name="cdb3",
        display_name="CDB3",
        engine="PostgreSQL 15",
        cpu_efficiency=0.92,
        miss_cpu_s=70e-6,
        buffer_bytes=128 * MIB,
        second_cache_fraction=0.70,    # Local File Cache over most of RAM
        remote_buffer_bytes=0,
        flush_coeff=0.0,               # pageservers replay WAL into pages
        checkpoint_interval_s=0.0,
        instance=InstanceSpec(
            min_allocation=ComputeAllocation(0.25, 0.5),  # 0.25 CU minimum
            max_allocation=ComputeAllocation(4, 16),
            serverless=True,
            vcore_step=0.25,
        ),
        network=TCP_10G,
        storage=StorageProfile(
            kind=StorageKind.COMPUTE_LOG_STORAGE,
            page_fetch_s=260e-6,       # pageserver materialised fetch
            fetch_channels=12,
            log_write_s=140e-6,        # safekeeper quorum append
            log_channels=2,
            replication_factor=3,
            redo_pushdown=True,
            replay_parallelism=8,      # parallel log replay
            replay_service_s={"insert": 220e-6, "update": 420e-6, "delete": 90e-6},
            ship_hops=2,               # safekeeper -> pageserver -> replica
            replay_batch_interval_s=0.012,
            cold_fetch_s=2.5e-3,       # cloud object storage
            cold_fraction=0.05,
            commit_delay_s=2.0e-3,     # safekeeper quorum acknowledgement
        ),
        recovery=RecoveryProfile(
            heartbeat_s=3.0,
            prepare_s=1.0,
            promote_s=7.0,             # Kubernetes reschedule on the path
            restart_s=4.0,
            redo_rate_records_s=500_000,
            undo_rate_txns_s=1_000,
            remote_buffer_survives=False,
            flush_before_restart=False,
            warmup_tau_rw_s=10.0,
            warmup_tau_ro_s=2.0,
            ro_restart_s=3.0,
        ),
        scaling=ScalingPolicySpec(
            kind=ScalingKind.CU_PAUSE_RESUME,
            reaction_s=60.0,           # CU adaptation granularity
            up_threshold=0.75,
            down_threshold=0.5,
            down_stabilization_s=180.0,
            pause_after_s=55.0,
            resume_s=4.0,
            scaling_warm_tau_s=12.0,   # LFC re-primes from the pageservers
        ),
        tenancy=TenancySpec(kind=TenancyKind.BRANCH, isolation_cost_factor=1),
        pricing=PricingModel(
            vcore_hour=0.16,           # startup pricing, cheapest CPU
            memory_gb_hour=0.008,
            storage_gb_hour=0.000105,
            iops_100_hour=0.0001,
            network_gbps_hour=0.05,
            min_billing_s=1.0,         # per-second billing
        ),
        provisioned=ProvisionedPackage(
            vcores=4, memory_gb=16, storage_gb=63, iops=1000,
            network_gbps=10, network_kind=NetworkKind.TCP,
        ),
        second_cache_fetch_s=75e-6,    # Local File Cache on instance SSD
        update_overhead_s=1000e-6,     # safekeeper quorum + pageserver propagation
        replica_efficiency=0.59,       # replicas contend on the pageservers
    )


def cdb4() -> Architecture:
    """Memory disaggregation with a remote RDMA buffer pool."""
    return Architecture(
        name="cdb4",
        display_name="CDB4",
        engine="MySQL 8",
        cpu_efficiency=1.80,
        miss_cpu_s=15e-6,              # RDMA one-sided reads bypass the kernel
        buffer_bytes=10 * GIB,
        second_cache_fraction=0.0,
        remote_buffer_bytes=24 * GIB,
        # ARIES-style with a remote buffer pool: flushes ride RDMA and are
        # cheap but not free.
        flush_coeff=0.12,
        checkpoint_interval_s=60.0,
        instance=InstanceSpec(
            min_allocation=ComputeAllocation(4, 16),
            max_allocation=ComputeAllocation(4, 16),
            serverless=False,
        ),
        network=RDMA_10G,
        storage=StorageProfile(
            kind=StorageKind.MEMORY_DISAGGREGATED,
            page_fetch_s=19e-6,        # remote buffer hit over RDMA
            fetch_channels=32,
            log_write_s=25e-6,         # RDMA log shipping
            log_channels=8,
            replication_factor=3,
            redo_pushdown=False,
            replay_parallelism=8,
            replay_service_s={"insert": 30e-6, "update": 30e-6, "delete": 15e-6},
            ship_hops=1,
            replay_batch_interval_s=0.0012,
            backing_fetch_s=320e-6,    # distributed storage behind the pool
            backing_channels=12,
            commit_delay_s=0.3e-3,     # RDMA commit acknowledgement
        ),
        recovery=RecoveryProfile(
            heartbeat_s=1.0,
            prepare_s=1.0,             # notify + collect LSNs (Figure 7)
            promote_s=2.0,             # RO -> RW switch-over
            restart_s=1.0,
            redo_rate_records_s=2_000_000,
            undo_rate_txns_s=50,       # 150 active txns rolled back in ~3 s
            remote_buffer_survives=True,
            flush_before_restart=False,
            warmup_tau_rw_s=1.2,
            warmup_tau_ro_s=1.5,
            ro_restart_s=1.0,
        ),
        scaling=ScalingPolicySpec(kind=ScalingKind.FIXED),
        tenancy=TenancySpec(kind=TenancyKind.ISOLATED, isolation_cost_factor=3),
        pricing=PricingModel(
            vcore_hour=0.95,           # flagship tier, no serverless discount
            memory_gb_hour=0.046,      # includes the remote pool lease
            storage_gb_hour=0.00015,
            iops_100_hour=0.00012,
            network_gbps_hour=1.10,    # RDMA fabric premium
            min_billing_s=60.0,
        ),
        provisioned=ProvisionedPackage(
            vcores=4, memory_gb=40, storage_gb=63, iops=84_000,
            network_gbps=10, network_kind=NetworkKind.RDMA,
        ),
        update_overhead_s=1500e-6,     # remote-cache invalidation + timestamp fetch
        replica_efficiency=0.90,       # shared remote buffer serves replicas fast
    )


register("aws_rds", aws_rds)
register("cdb1", cdb1)
register("cdb2", cdb2)
register("cdb3", cdb3)
register("cdb4", cdb4)

"""Optional extra SUTs beyond the paper's five.

The paper's acknowledgements thank the GaussDB team, whose published
design is a *multi-primary* cloud-native database with
compute-memory-storage disaggregation (Li et al., VLDB'24).  This
module models such a system as a sixth architecture to exercise the
registry's extensibility -- it is **not** registered by default, so the
paper-reproduction benches keep their exact five-SUT tables.  Opt in
with::

    from repro.cloud.extra_architectures import register_extras
    register_extras()
    bench = CloudyBench(BenchConfig(architectures=[..., "multi_primary"]))

Architectural notes encoded below:

* every compute node is a writer (multi-primary), so there is no
  RW-failure promotion: surviving writers absorb the load after a
  short membership change;
* a shared remote memory pool (like CDB4) plus a global lock/timestamp
  service on the write path (distributed concurrency control makes
  updates pricier than CDB4's single-writer invalidation);
* scale-out adds *write* capacity too, so its replica efficiency tops
  the single-writer designs.
"""

from __future__ import annotations

from repro.cloud.architectures import Architecture, register
from repro.cloud.specs import (
    GIB,
    ComputeAllocation,
    InstanceSpec,
    NetworkKind,
    PricingModel,
    ProvisionedPackage,
    RDMA_10G,
    RecoveryProfile,
    ScalingKind,
    ScalingPolicySpec,
    StorageKind,
    StorageProfile,
    TenancyKind,
    TenancySpec,
)


def multi_primary() -> Architecture:
    """A GaussDB-style multi-primary, memory-disaggregated SUT."""
    return Architecture(
        name="multi_primary",
        display_name="Multi-Primary",
        engine="openGauss 5",
        cpu_efficiency=1.35,
        miss_cpu_s=18e-6,
        buffer_bytes=8 * GIB,
        second_cache_fraction=0.0,
        remote_buffer_bytes=32 * GIB,
        flush_coeff=0.15,
        checkpoint_interval_s=60.0,
        instance=InstanceSpec(
            min_allocation=ComputeAllocation(4, 16),
            max_allocation=ComputeAllocation(4, 16),
            serverless=False,
        ),
        network=RDMA_10G,
        storage=StorageProfile(
            kind=StorageKind.MEMORY_DISAGGREGATED,
            page_fetch_s=22e-6,
            fetch_channels=32,
            log_write_s=30e-6,
            log_channels=8,
            replication_factor=3,
            redo_pushdown=False,
            replay_parallelism=8,
            replay_service_s={"insert": 35e-6, "update": 35e-6, "delete": 18e-6},
            ship_hops=1,
            replay_batch_interval_s=0.0015,
            backing_fetch_s=340e-6,
            backing_channels=12,
            commit_delay_s=0.5e-3,     # global timestamp + lock service hop
        ),
        recovery=RecoveryProfile(
            heartbeat_s=1.0,
            prepare_s=0.5,
            # no promotion: surviving writers take over after membership change
            promote_s=1.0,
            restart_s=1.0,
            redo_rate_records_s=2_000_000,
            undo_rate_txns_s=60,
            remote_buffer_survives=True,
            flush_before_restart=False,
            warmup_tau_rw_s=1.0,
            warmup_tau_ro_s=1.2,
            ro_restart_s=1.0,
        ),
        scaling=ScalingPolicySpec(kind=ScalingKind.FIXED),
        tenancy=TenancySpec(kind=TenancyKind.ISOLATED, isolation_cost_factor=3),
        pricing=PricingModel(
            vcore_hour=0.52,
            memory_gb_hour=0.030,
            storage_gb_hour=0.00015,
            iops_100_hour=0.00012,
            network_gbps_hour=0.95,
            min_billing_s=60.0,
        ),
        provisioned=ProvisionedPackage(
            vcores=4, memory_gb=48, storage_gb=63, iops=84_000,
            network_gbps=10, network_kind=NetworkKind.RDMA,
        ),
        # distributed concurrency control: global locks on every update
        update_overhead_s=2300e-6,
        # added nodes also write: the best scale-out in the fleet
        replica_efficiency=1.55,
    )


def register_extras() -> None:
    """Register the optional architectures (idempotent)."""
    register("multi_primary", multi_primary)

"""Analytical steady-state throughput model for one database instance.

The instance under ``N`` concurrent clients is a closed queueing
network.  Service demands are derived from the architecture and the
workload:

* **cpu** -- per-transaction CPU plus per-miss CPU (network stack,
  buffer manager) plus flushing CPU, divided by the engine efficiency;
  ``vcores`` servers.
* **storage** -- page fetches that miss every cache level, served by
  the storage/page service with ``fetch_channels`` parallel channels;
  ARIES engines add dirty-page flush traffic here.
* **remote_buffer** -- fetches that hit the RDMA remote buffer pool
  (memory-disaggregated architectures only).
* **log** -- the commit path (group-commit channels).
* **net** -- bytes moved over the compute<->storage interconnect
  (bandwidth as a queueing centre, round-trip latencies as a delay
  centre).
* **contention** -- a delay centre modelling row-lock waits on skewed
  (hot-key) workloads.

The cache hierarchy is modelled by stacking capacities: local buffer,
second-level cache (OS page cache, SSD cache, or CDB3's Local File
Cache), remote buffer pool, then storage.  Hit ratios come from a
hot/cold working-set model, so buffer size, scale factor, and access
skew all move throughput the way they do in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cloud.architectures import Architecture
from repro.cloud.specs import ComputeAllocation, StorageKind
from repro.cloud.workload_model import WorkloadMix
from repro.sim.mva import Center, ClosedNetwork

PAGE_BYTES = 8192.0
#: client<->server round trip inside one VPC, per SQL statement
CLIENT_RTT_S = 0.35e-3
#: client-side processing between transactions in the closed loop.
#: This is what makes saturation land around ~110 clients on a 4-vCore
#: instance, as in the paper's tau probe.
THINK_TIME_S = 5e-3


def hit_ratio(
    cache_bytes: float,
    working_set_bytes: float,
    hot_fraction: float = 0.0,
    hot_set_bytes: float = 0.0,
) -> float:
    """Fraction of page accesses served by a cache of ``cache_bytes``.

    Hot pages are cached preferentially: the hot set fills the cache
    first, the remainder caches a proportional slice of the cold set.
    With ``hot_fraction == 0`` this collapses to the uniform model
    ``min(1, cache / working_set)``.
    """
    if working_set_bytes <= 0:
        return 1.0
    if cache_bytes <= 0:
        return 0.0
    if hot_fraction <= 0 or hot_set_bytes <= 0:
        return min(1.0, cache_bytes / working_set_bytes)
    hot_hit = min(1.0, cache_bytes / hot_set_bytes)
    spare = max(0.0, cache_bytes - hot_set_bytes)
    cold_bytes = max(0.0, working_set_bytes - hot_set_bytes)
    cold_hit = min(1.0, spare / cold_bytes) if cold_bytes > 0 else 1.0
    return hot_fraction * hot_hit + (1.0 - hot_fraction) * cold_hit


@dataclass
class CacheBreakdown:
    """Where each page access lands, as fractions summing to 1."""

    local: float
    second: float
    remote: float
    storage: float

    @property
    def combined_hit(self) -> float:
        return self.local + self.second + self.remote


@dataclass
class ConsumedResources:
    """Per-second resource consumption at the estimated throughput."""

    cpu_cores: float
    iops: float
    network_gbps: float
    memory_gb: float


@dataclass
class ThroughputEstimate:
    """Everything the evaluators need about one operating point."""

    tps: float
    latency_s: float
    concurrency: int
    cache: CacheBreakdown
    utilizations: Dict[str, float] = field(default_factory=dict)
    bottleneck: str = ""
    consumed: Optional[ConsumedResources] = None


def cache_breakdown(
    arch: Architecture,
    workload: WorkloadMix,
    allocation: ComputeAllocation,
    warm_local: float = 1.0,
    warm_remote: float = 1.0,
    buffer_bytes: Optional[int] = None,
) -> CacheBreakdown:
    """Stacked hit ratios across the architecture's cache hierarchy."""
    local = (buffer_bytes if buffer_bytes is not None
             else arch.buffer_bytes_at(allocation)) * warm_local
    second = arch.second_cache_bytes_at(allocation) * warm_local
    remote = arch.remote_buffer_bytes * warm_remote
    ws = workload.working_set_bytes
    hot_f, hot_b = workload.hot_fraction, workload.hot_set_bytes
    h_local = hit_ratio(local, ws, hot_f, hot_b)
    h_second = hit_ratio(local + second, ws, hot_f, hot_b)
    h_remote = hit_ratio(local + second + remote, ws, hot_f, hot_b)
    return CacheBreakdown(
        local=h_local,
        second=max(0.0, h_second - h_local),
        remote=max(0.0, h_remote - h_second),
        storage=max(0.0, 1.0 - h_remote),
    )


def _flush_pages_per_txn(
    arch: Architecture,
    workload: WorkloadMix,
    cache_bytes: float,
    concurrency: int = 1,
) -> float:
    """Dirty pages written back per transaction (ARIES engines only).

    When the working set fits the cache, writes coalesce and roughly
    one flush happens per dirtied page; as the working set outgrows the
    cache, eviction pressure and checkpointing amplify write-back
    traffic -- this is the paper's 'dirty page flushing and
    checkpointing incur larger overhead' effect at SF100.  High
    concurrency steepens the effect (more dirty pages in flight between
    checkpoints), which is why AWS RDS falls off beyond ~150 clients on
    the larger scale factors.
    """
    if arch.flush_coeff <= 0 or workload.page_writes <= 0:
        return 0.0
    if cache_bytes <= 0:
        pressure = 5.0
    else:
        pressure = min(5.0, workload.working_set_bytes / cache_bytes)
    crowd = 1.0 + 0.8 * max(0.0, (concurrency - 100) / 100.0)
    return workload.page_writes * (1.0 + arch.flush_coeff * pressure * crowd)


def estimate_throughput(
    arch: Architecture,
    workload: WorkloadMix,
    concurrency: int,
    allocation: Optional[ComputeAllocation] = None,
    warm_local: float = 1.0,
    warm_remote: float = 1.0,
    efficiency_factor: float = 1.0,
    buffer_bytes: Optional[int] = None,
    think_time_s: float = THINK_TIME_S,
) -> ThroughputEstimate:
    """Solve the closed network for ``concurrency`` clients.

    ``allocation`` defaults to the instance's maximum.  ``warm_local`` /
    ``warm_remote`` scale effective cache sizes (fail-over warm-up).
    ``efficiency_factor`` < 1 models shared-pool scheduling overhead in
    multi-tenant overcommit.  ``buffer_bytes`` overrides the local
    buffer (the Figure 8 sweep).  ``think_time_s`` is the closed-loop
    client processing time between transactions.
    """
    if concurrency < 0:
        raise ValueError("concurrency must be >= 0")
    if allocation is None:
        allocation = arch.instance.max_allocation
    cache = cache_breakdown(
        arch, workload, allocation, warm_local, warm_remote, buffer_bytes
    )
    if concurrency == 0 or allocation.is_paused:
        return ThroughputEstimate(
            tps=0.0, latency_s=0.0, concurrency=concurrency, cache=cache
        )

    storage = arch.storage
    misses = workload.page_reads * cache.storage
    second_hits = workload.page_reads * cache.second
    remote_hits = workload.page_reads * cache.remote
    local_bytes = (buffer_bytes if buffer_bytes is not None
                   else arch.buffer_bytes_at(allocation))
    total_cache = (local_bytes + arch.second_cache_bytes_at(allocation)
                   + arch.remote_buffer_bytes)
    flush_pages = _flush_pages_per_txn(arch, workload, total_cache, concurrency)

    # -- CPU centre ---------------------------------------------------------
    miss_like = misses + remote_hits
    cpu_raw = (
        workload.cpu_s
        + workload.rows_updated * arch.update_overhead_s
        + workload.rows_updated * (1.0 - cache.combined_hit) * arch.update_miss_overhead_s
        + miss_like * arch.miss_cpu_s
        + second_hits * arch.miss_cpu_s * 0.25
        + flush_pages * arch.miss_cpu_s * 0.5
    )
    cpu_demand = cpu_raw / (arch.cpu_efficiency * efficiency_factor)
    centers = [Center("cpu", cpu_demand, "queue", servers=allocation.vcores)]

    # -- storage fetch centre ------------------------------------------------
    fetch_s = storage.page_fetch_s
    if storage.kind is StorageKind.MEMORY_DISAGGREGATED:
        # page_fetch_s is the remote-buffer hit; real misses go to the
        # backing distributed store.
        if remote_hits > 0:
            centers.append(
                Center("remote_buffer", remote_hits * storage.page_fetch_s,
                       "queue", servers=storage.fetch_channels)
            )
        fetch_s = storage.backing_fetch_s or storage.page_fetch_s
        channels = storage.backing_channels
    else:
        channels = storage.fetch_channels
    cold = storage.cold_fraction if storage.cold_fetch_s else 0.0
    storage_demand = misses * (
        (1.0 - cold) * fetch_s + cold * (storage.cold_fetch_s or 0.0)
    )
    storage_demand += flush_pages * fetch_s
    if storage_demand > 0:
        centers.append(Center("storage", storage_demand, "queue", servers=channels))

    # -- client round trips (one per SQL statement) -------------------------------
    if workload.statements > 0:
        centers.append(
            Center("client_rtt", workload.statements * CLIENT_RTT_S, "delay")
        )

    # -- second-level cache fetches (pure latency) ------------------------------
    if second_hits > 0 and arch.second_cache_fetch_s > 0:
        centers.append(
            Center("second_cache", second_hits * arch.second_cache_fetch_s, "delay")
        )

    # -- commit / log centre ------------------------------------------------------
    if workload.write_fraction > 0:
        log_demand = workload.write_fraction * storage.log_write_s
        centers.append(
            Center("log", log_demand, "queue", servers=storage.log_channels)
        )
        if storage.commit_delay_s > 0:
            centers.append(
                Center(
                    "commit_ack",
                    workload.write_fraction * storage.commit_delay_s,
                    "delay",
                )
            )

    # -- network ------------------------------------------------------------------
    if storage.kind is not StorageKind.LOCAL:
        wire_bytes = (misses + remote_hits) * PAGE_BYTES
        wire_bytes += workload.write_fraction * (workload.log_bytes + 64)
        bandwidth_demand = wire_bytes * 8.0 / (arch.network.bandwidth_gbps * 1e9)
        if bandwidth_demand > 0:
            centers.append(Center("net", bandwidth_demand, "queue", servers=4))
        round_trips = misses + remote_hits + workload.write_fraction
        latency_demand = round_trips * 2.0 * arch.network.latency_s
        if latency_demand > 0:
            centers.append(Center("net_latency", latency_demand, "delay"))

    # -- lock contention on hot keys -------------------------------------------------
    if workload.hot_fraction > 0 and workload.rows_written > 0 and workload.hot_set_bytes > 0:
        hot_rows = max(1.0, workload.hot_set_bytes / 256.0)
        collision = min(
            1.0, (concurrency - 1) * workload.rows_written / hot_rows
        )
        hold_s = cpu_demand + storage.log_write_s
        contention_demand = collision * workload.rows_written * hold_s
        if workload.mvcc:
            # Snapshot reads bypass the lock manager entirely: only the
            # writing fraction of transactions can collide on hot rows.
            contention_demand *= workload.write_fraction
        if contention_demand > 0:
            centers.append(Center("contention", contention_demand, "delay"))

    network = ClosedNetwork(centers, think_time=think_time_s)
    solution = network.solve(concurrency)
    tps = solution.throughput
    consumed = ConsumedResources(
        cpu_cores=min(allocation.vcores, tps * cpu_demand),
        iops=tps * (misses + flush_pages + workload.write_fraction),
        network_gbps=(
            0.0
            if storage.kind is StorageKind.LOCAL
            else tps
            * ((misses + remote_hits) * PAGE_BYTES + workload.write_fraction * workload.log_bytes)
            * 8.0
            / 1e9
        ),
        memory_gb=allocation.memory_gb,
    )
    return ThroughputEstimate(
        tps=tps,
        latency_s=solution.response_time,
        concurrency=concurrency,
        cache=cache,
        utilizations=solution.utilizations,
        bottleneck=solution.bottleneck(),
        consumed=consumed,
    )


def required_vcores(
    arch: Architecture,
    workload: WorkloadMix,
    concurrency: int,
    target_utilization: float = 0.7,
    max_vcores: Optional[float] = None,
) -> float:
    """Smallest vCore allocation keeping CPU below ``target_utilization``.

    This is what demand-tracking autoscalers compute each control tick.
    ``max_vcores`` overrides the instance ceiling (an elastic pool can
    hand one tenant more than a single instance's worth).
    """
    if concurrency <= 0:
        return 0.0
    spec = arch.instance
    step = spec.vcore_step
    candidate = spec.min_allocation.vcores
    ceiling = max_vcores if max_vcores is not None else spec.max_allocation.vcores
    reference = spec.max_allocation.vcores or 1.0
    mem_per_core = spec.max_allocation.memory_gb / reference
    while candidate < ceiling:
        allocation = ComputeAllocation(candidate, candidate * mem_per_core)
        estimate = estimate_throughput(arch, workload, concurrency, allocation)
        if estimate.utilizations.get("cpu", 0.0) <= target_utilization:
            return candidate
        candidate = min(ceiling, candidate + step)
    return ceiling

"""Architectural simulator of cloud-native databases.

This package models the five systems-under-test of the CloudyBench
paper as parameterised *architectures* rather than as black boxes with
hard-coded results: steady-state throughput emerges from a closed
queueing network (:mod:`repro.cloud.mva_model`), and time-varying
behaviour (autoscaling, tenancy scheduling, fail-over, replication)
emerges from deterministic simulations layered on the same model.

Entry points
------------
* :func:`repro.cloud.architectures.get` / ``all_architectures()`` --
  the SUT registry (``aws_rds``, ``cdb1`` .. ``cdb4``).
* :class:`repro.cloud.database.CloudDatabase` -- a provisioned instance
  of an architecture that the CloudyBench evaluators drive.
"""

from repro.cloud.architectures import (
    Architecture,
    all_architectures,
    get,
    register,
)
from repro.cloud.database import CloudDatabase
from repro.cloud.specs import (
    ComputeAllocation,
    InstanceSpec,
    NetworkKind,
    NetworkSpec,
    PricingModel,
    RecoveryProfile,
    ScalingPolicySpec,
    StorageProfile,
    TenancyKind,
    TenancySpec,
)
from repro.cloud.workload_model import TxnClass, WorkloadMix

__all__ = [
    "Architecture",
    "CloudDatabase",
    "ComputeAllocation",
    "InstanceSpec",
    "NetworkKind",
    "NetworkSpec",
    "PricingModel",
    "RecoveryProfile",
    "ScalingPolicySpec",
    "StorageProfile",
    "TenancyKind",
    "TenancySpec",
    "TxnClass",
    "WorkloadMix",
    "all_architectures",
    "get",
    "register",
]

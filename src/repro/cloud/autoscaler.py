"""Autoscaling policies of the systems-under-test.

The elasticity evaluator steps a simulation clock one second at a time
and asks the autoscaler for the current compute allocation given the
instantaneous client demand.  Four policies cover the paper's SUTs:

* ``FIXED`` -- provisioned instances (AWS RDS, CDB4) never move.
* ``THRESHOLD_GRADUAL`` -- CDB1: scales *up* quickly once demand
  exceeds the current capacity, but scales *down* one step at a time on
  a slow cadence (the paper measures 479-536 s top-to-bottom).
* ``ON_DEMAND`` -- CDB2: re-fits the allocation to demand on a fixed
  control cadence, in both directions, with a 0.5 vCore floor.
* ``CU_PAUSE_RESUME`` -- CDB3: compute-unit steps with immediate
  scale-up, sluggish partial scale-down (it ignores short valleys), a
  pause-to-zero after sustained idleness, and a small resume penalty.
* ``PROACTIVE`` -- Moneyball/Seagull-style forecasting (the paper cites
  it as the proactive scaling its SUTs do *not* exhibit): given a
  demand forecast (e.g. the previous run's slot schedule), the policy
  pre-scales ``lead_s`` seconds ahead of each demand change and falls
  back to on-demand re-fitting when demand deviates from the forecast.

The autoscaler records every allocation change; evaluators derive
per-slot scaling times and scaling costs (Table VI) from that event
log rather than from the policy parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cloud.architectures import Architecture
from repro.cloud.mva_model import required_vcores
from repro.cloud.specs import ComputeAllocation, ScalingKind
from repro.cloud.workload_model import WorkloadMix
from repro.obs import NULL_OBSERVER, Observer


@dataclass(frozen=True)
class ScalingEvent:
    """One applied allocation change."""

    time_s: float
    from_vcores: float
    to_vcores: float
    from_memory_gb: float
    to_memory_gb: float
    trigger: str  # "scale_up" | "scale_down" | "pause" | "resume"


class Autoscaler:
    """Stateful allocation controller for one instance."""

    def __init__(
        self,
        arch: Architecture,
        workload: WorkloadMix,
        forecast: Optional[Sequence[Tuple[float, int]]] = None,
        observer: Optional[Observer] = None,
    ):
        """``forecast`` is a step schedule of (start_s, demand) pairs,
        consumed by the PROACTIVE policy (ignored by the others)."""
        self.arch = arch
        self.workload = workload
        self.obs = observer or NULL_OBSERVER
        self.policy = arch.scaling
        self.forecast = sorted(forecast) if forecast else None
        spec = arch.instance
        self._mem_per_core = (
            spec.max_allocation.memory_gb / spec.max_allocation.vcores
            if spec.max_allocation.vcores
            else 0.0
        )
        if self.policy.kind is ScalingKind.FIXED:
            self.allocation = spec.max_allocation
        else:
            self.allocation = spec.min_allocation
        self.events: List[ScalingEvent] = []
        self._last_control_s = float("-inf")
        self._idle_since: Optional[float] = None
        self._lower_demand_since: Optional[float] = None
        self._last_step_down_s = float("-inf")
        self._pending_target: Optional[float] = None
        self._pending_apply_at: float = 0.0
        self._resuming_until: Optional[float] = None
        self._target_cache: dict[int, float] = {}
        self._saturation_cache: dict[int, bool] = {}
        #: control windows where demand needed more vcores than the
        #: instance can ever provide -- scaling is out of moves and only
        #: overload protection (shedding, brownout) can help
        self.overload_windows = 0
        self._overloaded = False

    # -- public API ------------------------------------------------------------

    @property
    def is_paused(self) -> bool:
        return self.allocation.is_paused

    @property
    def is_resuming(self) -> bool:
        return self._resuming_until is not None

    @property
    def is_overloaded(self) -> bool:
        """True while demand exceeds what the max allocation can serve."""
        return self._overloaded

    def step(self, now_s: float, demand_concurrency: int) -> ComputeAllocation:
        """Advance to ``now_s`` with the current demand; returns allocation."""
        self._note_saturation(now_s, demand_concurrency)
        kind = self.policy.kind
        if kind is ScalingKind.FIXED:
            return self.allocation
        if kind is ScalingKind.THRESHOLD_GRADUAL:
            self._threshold_gradual(now_s, demand_concurrency)
        elif kind is ScalingKind.ON_DEMAND:
            self._on_demand(now_s, demand_concurrency)
        elif kind is ScalingKind.CU_PAUSE_RESUME:
            self._cu_pause_resume(now_s, demand_concurrency)
        elif kind is ScalingKind.PROACTIVE:
            self._proactive(now_s, demand_concurrency)
        return self.allocation

    def _note_saturation(self, now_s: float, demand: int) -> None:
        if demand <= 0:
            self._overloaded = False
            return
        saturated = self._saturation_cache.get(demand)
        if saturated is None:
            # ``required_vcores`` clamps at the instance ceiling, so the
            # regular target can never exceed it; probe with headroom
            # above the ceiling to see whether demand actually fits.
            max_vcores = self.arch.instance.max_allocation.vcores
            unbounded = required_vcores(
                self.arch, self.workload, demand, self.policy.up_threshold,
                max_vcores=4.0 * max_vcores,
            )
            saturated = unbounded > max_vcores + 1e-9
            self._saturation_cache[demand] = saturated
        if saturated and not self._overloaded:
            self.overload_windows += 1
            if self.obs.enabled:
                self.obs.count("cloud.autoscaler.overload")
                self.obs.event(
                    "overload", "autoscaler", ts=now_s, track="autoscaler",
                    attrs={"demand": demand, "target_vcores": round(target, 2)},
                )
        self._overloaded = saturated

    # -- shared helpers -----------------------------------------------------------

    def _allocation_for(self, vcores: float) -> ComputeAllocation:
        spec = self.arch.instance
        if vcores <= 0:
            return ComputeAllocation(0.0, 0.0)
        return spec.clamp(ComputeAllocation(vcores, vcores * self._mem_per_core))

    def _apply(self, now_s: float, vcores: float, trigger: str) -> None:
        target = (
            ComputeAllocation(0.0, 0.0)
            if vcores <= 0
            else self._allocation_for(vcores)
        )
        if (target.vcores, target.memory_gb) == (
            self.allocation.vcores,
            self.allocation.memory_gb,
        ):
            return
        self.events.append(
            ScalingEvent(
                time_s=now_s,
                from_vcores=self.allocation.vcores,
                to_vcores=target.vcores,
                from_memory_gb=self.allocation.memory_gb,
                to_memory_gb=target.memory_gb,
                trigger=trigger,
            )
        )
        if self.obs.enabled:
            self.obs.count(f"cloud.autoscaler.{trigger}")
            self.obs.event(
                trigger, "autoscaler", ts=now_s, track="autoscaler",
                attrs={
                    "from_vcores": self.allocation.vcores,
                    "to_vcores": target.vcores,
                },
            )
        self.allocation = target

    def _target_vcores(self, demand: int) -> float:
        if demand <= 0:
            return self.arch.instance.min_allocation.vcores
        cached = self._target_cache.get(demand)
        if cached is None:
            cached = required_vcores(
                self.arch, self.workload, demand, self.policy.up_threshold
            )
            self._target_cache[demand] = cached
        return cached

    # -- CDB1: fast up, gradual down ----------------------------------------------

    def _threshold_gradual(self, now_s: float, demand: int) -> None:
        policy = self.policy
        target = self._target_vcores(demand)
        if target > self.allocation.vcores:
            # Arm (or keep) a pending scale-up that applies after the
            # reaction delay.
            if self._pending_target is None or self._pending_target < target:
                self._pending_target = target
                self._pending_apply_at = now_s + policy.reaction_s
            if now_s >= self._pending_apply_at:
                self._apply(now_s, self._pending_target, "scale_up")
                self._pending_target = None
        else:
            self._pending_target = None
            if target < self.allocation.vcores:
                if now_s - self._last_step_down_s >= policy.gradual_step_s:
                    step = max(self.arch.instance.vcore_step, 1.0)
                    self._apply(
                        now_s, self.allocation.vcores - step, "scale_down"
                    )
                    self._last_step_down_s = now_s

    # -- CDB2: periodic re-fit -------------------------------------------------------

    def _on_demand(self, now_s: float, demand: int) -> None:
        policy = self.policy
        if now_s - self._last_control_s < policy.reaction_s:
            return
        self._last_control_s = now_s
        target = self._target_vcores(demand)
        if target > self.allocation.vcores:
            self._apply(now_s, target, "scale_up")
        elif target < self.allocation.vcores:
            self._apply(now_s, target, "scale_down")

    # -- proactive: forecast-driven pre-scaling ---------------------------------------------

    def _forecast_demand(self, at_s: float) -> Optional[int]:
        """The forecast's demand at ``at_s`` (step semantics), if any."""
        if not self.forecast:
            return None
        demand = None
        for start_s, value in self.forecast:
            if start_s > at_s:
                break
            demand = value
        return demand

    def _proactive(self, now_s: float, demand: int) -> None:
        policy = self.policy
        if now_s - self._last_control_s < policy.reaction_s:
            return
        self._last_control_s = now_s
        predicted = self._forecast_demand(now_s + policy.lead_s)
        # provision for the worse of "what the forecast says is coming"
        # and "what is actually here" (reactive fallback on misprediction)
        effective = max(demand, predicted if predicted is not None else 0)
        target = self._target_vcores(effective)
        if target > self.allocation.vcores:
            self._apply(now_s, target, "scale_up")
        elif target < self.allocation.vcores:
            self._apply(now_s, target, "scale_down")

    # -- CDB3: CU steps + pause/resume --------------------------------------------------

    def _cu_pause_resume(self, now_s: float, demand: int) -> None:
        policy = self.policy
        # resume path: a paused instance sees demand -> start resuming
        if self.allocation.is_paused:
            if demand > 0:
                if self._resuming_until is None:
                    self._resuming_until = now_s + policy.resume_s
                if now_s >= self._resuming_until:
                    self._resuming_until = None
                    self._idle_since = None
                    self._apply(now_s, self._target_vcores(demand), "resume")
            return
        # pause path: sustained zero demand
        if demand <= 0:
            if self._idle_since is None:
                self._idle_since = now_s
            if now_s - self._idle_since >= policy.pause_after_s:
                self._apply(now_s, 0.0, "pause")
            return
        self._idle_since = None
        # CU control happens on a coarse cadence
        if now_s - self._last_control_s < policy.reaction_s:
            return
        self._last_control_s = now_s
        target = self._target_vcores(demand)
        if target > self.allocation.vcores:
            self._lower_demand_since = None
            self._apply(now_s, target, "scale_up")
        elif target < self.allocation.vcores:
            # Partial scale-down only after the demand stayed low for a
            # stabilisation window -- short valleys are ignored, exactly
            # the paper's observation on the Single Valley pattern.
            if self._lower_demand_since is None:
                self._lower_demand_since = now_s
            elif now_s - self._lower_demand_since >= policy.down_stabilization_s:
                self._lower_demand_since = None
                self._apply(now_s, target, "scale_down")
        else:
            self._lower_demand_since = None

"""Multi-tenant resource scheduling models.

Three deployment models from the paper:

* **Isolated instances** (AWS RDS, CDB1, CDB4): one full instance per
  tenant.  Heavy tenants never disturb light ones, but resources cannot
  move between tenants, so staggered workloads waste capacity -- and
  the bill triples (network and IOPS are per instance).
* **Elastic pool** (CDB2): tenants share a pool of vCores/memory.  The
  scheduler re-fits per-tenant shares to demand every slot; when the
  pool is overcommitted every tenant pays a contention penalty, when a
  single tenant is active it can borrow the whole pool.
* **Branches** (CDB3): copy-on-write branches share storage but have
  stringently isolated compute; idle branches pause (scale to zero) and
  resume cold on the next slot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cloud.architectures import Architecture
from repro.cloud.mva_model import estimate_throughput, required_vcores
from repro.cloud.specs import ComputeAllocation, TenancyKind
from repro.cloud.workload_model import WorkloadMix
from repro.qos.admission import BrownoutPolicy


@dataclass
class TenantSlotResult:
    """Per-tenant outcome of one time slot."""

    tenant: int
    demand: int
    tps: float
    allocation: ComputeAllocation
    efficiency: float = 1.0
    resumed_cold: bool = False
    #: concurrency turned away by brownout throttling this slot
    shed: int = 0

    @property
    def admitted(self) -> int:
        return self.demand - self.shed


@dataclass
class SlotResult:
    """One slot across all tenants."""

    slot: int
    tenants: List[TenantSlotResult]

    @property
    def total_tps(self) -> float:
        return sum(tenant.tps for tenant in self.tenants)

    @property
    def total_vcores(self) -> float:
        return sum(tenant.allocation.vcores for tenant in self.tenants)

    @property
    def total_shed(self) -> int:
        return sum(tenant.shed for tenant in self.tenants)


def _cold_slot_fraction(tau_s: float, slot_s: float) -> float:
    """Average throughput fraction over a slot that starts cache-cold.

    TPS ramps as ``1 - exp(-t / tau)``; integrating over the slot gives
    ``1 - (tau / T) * (1 - exp(-T / tau))``.
    """
    import math

    if slot_s <= 0 or tau_s <= 0:
        return 1.0
    return 1.0 - (tau_s / slot_s) * (1.0 - math.exp(-slot_s / tau_s))


class TenantScheduler:
    """Schedules one slot at a time for ``n_tenants`` tenants."""

    def __init__(
        self,
        arch: Architecture,
        workload: WorkloadMix,
        n_tenants: int,
        slot_seconds: float = 60.0,
        brownout: Optional[BrownoutPolicy] = None,
    ):
        if n_tenants < 1:
            raise ValueError("need at least one tenant")
        self.arch = arch
        self.workload = workload
        self.n_tenants = n_tenants
        self.slot_seconds = slot_seconds
        #: optional graceful-degradation mode for the elastic pool: when
        #: overcommit passes the policy threshold, part of each tenant's
        #: demand is turned away (shed) instead of letting the contention
        #: penalty collapse everyone's efficiency
        self.brownout = brownout
        self._paused = [False] * n_tenants
        self._slot_index = 0

    def run_slots(self, demand_matrix: Sequence[Sequence[int]]) -> List[SlotResult]:
        """Run every slot; ``demand_matrix[tenant][slot]`` is concurrency."""
        n_slots = len(demand_matrix[0])
        if any(len(row) != n_slots for row in demand_matrix):
            raise ValueError("all tenants need the same number of slots")
        results = []
        for slot in range(n_slots):
            demands = [int(row[slot]) for row in demand_matrix]
            results.append(self.schedule_slot(demands))
        return results

    def schedule_slot(self, demands: Sequence[int]) -> SlotResult:
        if len(demands) != self.n_tenants:
            raise ValueError(
                f"expected {self.n_tenants} demands, got {len(demands)}"
            )
        kind = self.arch.tenancy.kind
        if kind is TenancyKind.ISOLATED:
            tenants = self._isolated(demands)
        elif kind is TenancyKind.ELASTIC_POOL:
            tenants = self._elastic_pool(demands)
        elif kind is TenancyKind.BRANCH:
            tenants = self._branch(demands)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown tenancy kind {kind}")
        result = SlotResult(slot=self._slot_index, tenants=tenants)
        self._slot_index += 1
        return result

    # -- isolated instances ----------------------------------------------------

    def _isolated(self, demands: Sequence[int]) -> List[TenantSlotResult]:
        allocation = self.arch.instance.max_allocation
        tenants = []
        for index, demand in enumerate(demands):
            estimate = estimate_throughput(
                self.arch, self.workload, demand, allocation
            )
            tenants.append(
                TenantSlotResult(
                    tenant=index,
                    demand=demand,
                    tps=estimate.tps,
                    allocation=allocation,
                )
            )
        return tenants

    # -- shared elastic pool -------------------------------------------------------

    def _elastic_pool(self, demands: Sequence[int]) -> List[TenantSlotResult]:
        pool_vcores = self.arch.instance.max_allocation.vcores * self.n_tenants
        mem_per_core = (
            self.arch.instance.max_allocation.memory_gb
            / self.arch.instance.max_allocation.vcores
        )
        desired = [
            required_vcores(
                self.arch, self.workload, demand, max_vcores=pool_vcores
            )
            if demand > 0
            else 0.0
            for demand in demands
        ]
        total_desired = sum(desired)
        admitted = list(demands)
        sheds = [0] * len(admitted)
        if total_desired <= pool_vcores:
            # Contention-free: everyone gets what they asked for, and the
            # spare capacity is shared among active tenants on demand.
            spare = pool_vcores - total_desired
            active = sum(1 for d in desired if d > 0) or 1
            shares = [
                d + (spare / active if d > 0 else 0.0) for d in desired
            ]
            efficiency = 1.0
        else:
            overcommit = total_desired / pool_vcores - 1.0
            if (
                self.brownout is not None
                and overcommit > self.brownout.overcommit_threshold
            ):
                admitted, sheds, desired = self._throttle(
                    admitted, desired, pool_vcores
                )
                total_desired = sum(desired)
                overcommit = max(0.0, total_desired / pool_vcores - 1.0)
            efficiency = max(
                0.15, 1.0 - self.arch.tenancy.overcommit_penalty * min(1.5, overcommit)
            )
            if total_desired <= pool_vcores:
                shares = list(desired)  # throttling freed the pool up
            else:
                shares = [pool_vcores * d / total_desired for d in desired]
        tenants = []
        for index, (demand, running, share, shed) in enumerate(
            zip(demands, admitted, shares, sheds)
        ):
            allocation = ComputeAllocation(share, share * mem_per_core)
            if running <= 0 or share <= 0:
                estimate_tps = 0.0
            else:
                estimate_tps = estimate_throughput(
                    self.arch,
                    self.workload,
                    running,
                    allocation,
                    efficiency_factor=efficiency,
                ).tps
            tenants.append(
                TenantSlotResult(
                    tenant=index,
                    demand=demand,
                    tps=estimate_tps,
                    allocation=allocation,
                    efficiency=efficiency,
                    shed=shed,
                )
            )
        return tenants

    def _throttle(
        self,
        demands: List[int],
        desired: List[float],
        pool_vcores: float,
    ) -> Tuple[List[int], List[int], List[float]]:
        """Brownout: shed demand until overcommit sits at the threshold.

        Each active tenant is scaled proportionally but keeps at least
        ``min_share`` of what it asked for -- graceful degradation, not
        eviction of the smallest tenants.  ``required_vcores`` saturates
        (deep overload demands the whole pool at any concurrency), so a
        single proportional cut can land far above the target; iterate
        the cut until the target is met or the ``min_share`` floor binds.
        """
        policy = self.brownout
        target = pool_vcores * (1.0 + policy.overcommit_threshold)
        admitted = [max(0, demand) for demand in demands]
        new_desired = list(desired)
        for _ in range(8):
            total = sum(new_desired)
            if total <= target:
                break
            scale = target / max(total, 1e-9)
            proposal: List[int] = []
            for demand, keep in zip(demands, admitted):
                if demand <= 0:
                    proposal.append(0)
                    continue
                floor_keep = max(math.ceil(demand * policy.min_share), 1)
                cut = max(math.floor(keep * scale), floor_keep)
                proposal.append(min(cut, demand))
            if proposal == admitted:
                break  # every tenant sits on its floor; no further moves
            admitted = proposal
            new_desired = [
                required_vcores(
                    self.arch, self.workload, keep, max_vcores=pool_vcores
                )
                if keep > 0
                else 0.0
                for keep in admitted
            ]
        sheds = [
            max(0, demand) - keep for demand, keep in zip(demands, admitted)
        ]
        return admitted, sheds, new_desired

    # -- copy-on-write branches -------------------------------------------------------

    def _branch(self, demands: Sequence[int]) -> List[TenantSlotResult]:
        allocation = self.arch.instance.max_allocation
        resume_s = self.arch.scaling.resume_s
        tau = self.arch.recovery.warmup_tau_rw_s + 10.0  # LFC refill is slow
        tenants = []
        for index, demand in enumerate(demands):
            if demand <= 0:
                # Idle branches pause: no compute allocated, no cost.
                self._paused[index] = True
                tenants.append(
                    TenantSlotResult(
                        tenant=index,
                        demand=0,
                        tps=0.0,
                        allocation=ComputeAllocation(0.0, 0.0),
                    )
                )
                continue
            resumed_cold = self._paused[index]
            self._paused[index] = False
            estimate = estimate_throughput(
                self.arch, self.workload, demand, allocation
            )
            tps = estimate.tps
            if resumed_cold:
                usable = max(0.0, self.slot_seconds - resume_s)
                ramp = _cold_slot_fraction(tau, usable)
                tps *= (usable / self.slot_seconds) * ramp
            tenants.append(
                TenantSlotResult(
                    tenant=index,
                    demand=demand,
                    tps=tps,
                    allocation=allocation,
                    resumed_cold=resumed_cold,
                )
            )
        return tenants

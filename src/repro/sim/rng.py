"""Named deterministic random streams.

Every stochastic component draws from its own named stream so that the
addition of a new component never perturbs the draws of existing ones.
Streams are derived from a master seed with a stable hash, which keeps
experiment results reproducible across processes and platforms.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit seed derived from ``master_seed`` and ``name``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Hands out one :class:`random.Random` per stream name."""

    def __init__(self, master_seed: int = 42):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def reset(self) -> None:
        """Drop all streams; the next access recreates them from scratch."""
        self._streams.clear()

"""Exact Mean Value Analysis (MVA) for closed queueing networks.

The cloud substrate estimates steady-state throughput of a database
instance under ``N`` concurrent clients by modelling the instance as a
closed queueing network: the CPU, the I/O channel, the commit/log path
and the network are *queueing centres*; pure latencies (RDMA hops,
storage round-trips that overlap with other work) are *delay centres*.

Exact MVA recurrence (Reiser & Lavenberg, 1980), for ``n = 1..N``::

    R_k(n) = D_k * (1 + Q_k(n-1))     queueing centre
    R_k(n) = D_k                      delay centre
    X(n)   = n / (Z + sum_k R_k(n))
    Q_k(n) = X(n) * R_k(n)

Multi-server centres (a CPU with ``c`` vCores) use the Seidmann
transformation: a ``c``-server centre with demand ``D`` is replaced by a
single-server queueing centre with demand ``D/c`` plus a delay centre
with demand ``D*(c-1)/c``.  The transformation is exact at the
asymptotes and within a few percent elsewhere, which is ample for a
benchmark whose claims are about *shapes* and *ranks*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class Center:
    """One service centre of the closed network.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"cpu"``).
    demand:
        Total service demand per job in seconds (visits x service time).
    kind:
        ``"queue"`` for a queueing centre, ``"delay"`` for an
        infinite-server (pure latency) centre.
    servers:
        Number of identical servers at a queueing centre.
    """

    name: str
    demand: float
    kind: str = "queue"
    servers: float = 1.0

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"centre {self.name!r} has negative demand")
        if self.kind not in ("queue", "delay"):
            raise ValueError(f"centre kind must be 'queue' or 'delay', got {self.kind!r}")
        if self.servers <= 0:
            raise ValueError(f"centre {self.name!r} needs servers > 0")


@dataclass
class MvaSolution:
    """Steady-state solution of the network at population ``population``."""

    population: int
    throughput: float
    response_time: float
    residence_times: Dict[str, float] = field(default_factory=dict)
    queue_lengths: Dict[str, float] = field(default_factory=dict)
    utilizations: Dict[str, float] = field(default_factory=dict)

    def bottleneck(self) -> str:
        """Name of the centre with the highest utilisation."""
        return max(self.utilizations, key=self.utilizations.get)


class ClosedNetwork:
    """A single-class closed queueing network solved by exact MVA."""

    def __init__(self, centers: Sequence[Center], think_time: float = 0.0):
        if think_time < 0:
            raise ValueError("think time must be non-negative")
        if not centers:
            raise ValueError("a network needs at least one centre")
        names = [center.name for center in centers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate centre names: {names}")
        self.centers = list(centers)
        self.think_time = think_time
        self._expanded = self._expand_multiserver(self.centers)

    @staticmethod
    def _expand_multiserver(centers: Sequence[Center]) -> List[Center]:
        """Apply the Seidmann transformation to multi-server centres."""
        expanded: List[Center] = []
        for center in centers:
            if center.kind == "queue" and center.servers != 1:
                c = center.servers
                expanded.append(Center(center.name, center.demand / c, "queue"))
                # Fractional capacity (c < 1, e.g. a 0.5-vCore serverless
                # instance) only slows the queueing part; there is no
                # parallelism to model with a shadow delay centre.
                if center.demand > 0 and c > 1:
                    expanded.append(
                        Center(f"{center.name}~delay", center.demand * (c - 1) / c, "delay")
                    )
            else:
                expanded.append(center)
        return expanded

    def solve(self, population: int) -> MvaSolution:
        """Exact MVA at integral population ``population``."""
        if population < 0:
            raise ValueError("population must be >= 0")
        if population == 0:
            return MvaSolution(
                population=0,
                throughput=0.0,
                response_time=0.0,
                residence_times={c.name: 0.0 for c in self.centers},
                queue_lengths={c.name: 0.0 for c in self.centers},
                utilizations={c.name: 0.0 for c in self.centers},
            )
        queue_lengths = {center.name: 0.0 for center in self._expanded}
        throughput = 0.0
        residences: Dict[str, float] = {}
        for n in range(1, population + 1):
            residences = {}
            for center in self._expanded:
                if center.kind == "delay":
                    residences[center.name] = center.demand
                else:
                    residences[center.name] = center.demand * (1.0 + queue_lengths[center.name])
            total_response = sum(residences.values())
            throughput = n / (self.think_time + total_response)
            for center in self._expanded:
                queue_lengths[center.name] = throughput * residences[center.name]

        return self._fold(population, throughput, residences, queue_lengths)

    def _fold(
        self,
        population: int,
        throughput: float,
        residences: Dict[str, float],
        queue_lengths: Dict[str, float],
    ) -> MvaSolution:
        """Fold Seidmann shadow centres back into their originals."""
        folded_residence: Dict[str, float] = {}
        folded_queue: Dict[str, float] = {}
        utilizations: Dict[str, float] = {}
        for center in self.centers:
            shadow = f"{center.name}~delay"
            residence = residences.get(center.name, 0.0) + residences.get(shadow, 0.0)
            queue = queue_lengths.get(center.name, 0.0) + queue_lengths.get(shadow, 0.0)
            folded_residence[center.name] = residence
            folded_queue[center.name] = queue
            if center.kind == "delay" or center.demand == 0:
                utilizations[center.name] = 0.0
            else:
                utilizations[center.name] = min(
                    1.0, throughput * center.demand / center.servers
                )
        return MvaSolution(
            population=population,
            throughput=throughput,
            response_time=sum(folded_residence.values()),
            residence_times=folded_residence,
            queue_lengths=folded_queue,
            utilizations=utilizations,
        )

    # -- asymptotic bounds -------------------------------------------------

    def max_throughput(self) -> float:
        """Upper bound 1/max_k(D_k / servers_k) over queueing centres."""
        per_server = [
            center.demand / center.servers
            for center in self.centers
            if center.kind == "queue" and center.demand > 0
        ]
        if not per_server:
            return float("inf")
        return 1.0 / max(per_server)

    def light_load_throughput(self, population: int) -> float:
        """Lower-load bound N / (Z + sum_k D_k)."""
        total_demand = sum(center.demand for center in self.centers)
        return population / (self.think_time + total_demand)

    def saturation_population(self) -> float:
        """N* where the light-load asymptote crosses the capacity bound."""
        bound = self.max_throughput()
        if bound == float("inf"):
            return float("inf")
        total_demand = sum(center.demand for center in self.centers)
        return (self.think_time + total_demand) * bound

"""Shared resources for the DES kernel.

Two primitives cover everything the cloud substrate needs:

* :class:`Resource` -- a FIFO resource with integral capacity, used for
  CPU cores, I/O channels and replay worker slots.  Processes obtain a
  slot by yielding :meth:`Resource.request` and must release it with
  :meth:`Resource.release` (the :meth:`Resource.use` helper wraps a
  timed hold).
* :class:`Container` -- a continuous quantity (e.g. log backlog bytes)
  with blocking ``get``.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro.sim.events import Environment, Event, SimulationError


class Resource:
    """FIFO resource with ``capacity`` identical slots."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Aggregate busy-time accounting for utilisation reporting.
        self._busy_time = 0.0
        self._last_change = env.now

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Integral of slots-in-use over time (core-seconds)."""
        self._account()
        return self._busy_time

    def set_capacity(self, capacity: int) -> None:
        """Resize the resource; shrinking never evicts current holders."""
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self._account()
        self._capacity = capacity
        self._drain()

    def request(self) -> Event:
        """Return an event that succeeds once a slot is available."""
        event = self.env.event()
        if self._in_use < self._capacity:
            self._account()
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        self._account()
        self._in_use -= 1
        self._drain()

    def _drain(self) -> None:
        while self._waiters and self._in_use < self._capacity:
            waiter = self._waiters.popleft()
            self._in_use += 1
            waiter.succeed()

    def use(self, duration: float) -> Generator:
        """Process helper: acquire a slot, hold for ``duration``, release.

        Usage inside a process: ``yield from resource.use(0.5)``.
        """
        yield self.request()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()


class Container:
    """A continuous quantity with blocking ``get`` and immediate ``put``."""

    def __init__(self, env: Environment, initial: float = 0.0, capacity: float = float("inf")):
        if initial < 0 or capacity <= 0:
            raise SimulationError("container needs initial >= 0 and capacity > 0")
        self.env = env
        self.capacity = capacity
        self._level = float(initial)
        self._getters: deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        self._level = min(self.capacity, self._level + amount)
        self._drain()

    def get(self, amount: float) -> Event:
        """Event that succeeds once ``amount`` can be withdrawn (FIFO)."""
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        event = self.env.event()
        self._getters.append((amount, event))
        self._drain()
        return event

    def try_get(self, amount: float) -> bool:
        """Withdraw immediately if possible; never blocks."""
        if self._getters or amount > self._level:
            return False
        self._level -= amount
        return True

    def _drain(self) -> None:
        while self._getters and self._getters[0][0] <= self._level:
            amount, event = self._getters.popleft()
            self._level -= amount
            event.succeed(amount)


def monitored_timeseries() -> "TimeSeries":
    """Convenience constructor mirroring the collector API."""
    return TimeSeries()


class TimeSeries:
    """Append-only (time, value) series with step-function integration."""

    def __init__(self) -> None:
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1] - 1e-12:
            raise SimulationError("time series must be recorded in order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time: float) -> float:
        """Step-function lookup: the last value recorded at or before ``time``."""
        if not self.times:
            raise SimulationError("empty time series")
        result = self.values[0]
        for t, v in zip(self.times, self.values):
            if t > time:
                break
            result = v
        return result

    def integrate(self, start: float, end: float) -> float:
        """Integral of the step function over ``[start, end]``."""
        if end < start:
            raise SimulationError("integration interval reversed")
        if not self.times or end == start:
            return 0.0
        total = 0.0
        previous_time = start
        previous_value = self.value_at(start)
        for t, v in zip(self.times, self.values):
            if t <= start:
                continue
            if t >= end:
                break
            total += previous_value * (t - previous_time)
            previous_time, previous_value = t, v
        total += previous_value * (end - previous_time)
        return total

    def average(self, start: float, end: float) -> float:
        if end <= start:
            return 0.0
        return self.integrate(start, end) / (end - start)

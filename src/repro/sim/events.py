"""A small deterministic discrete-event simulation engine.

The engine follows the SimPy programming model: simulation *processes*
are Python generators that ``yield`` events; the environment resumes a
process when the event it waits on triggers.  Only the features the
cloud substrate needs are implemented, which keeps the kernel easy to
audit:

* :class:`Environment` -- event queue and virtual clock.
* :class:`Event` -- one-shot events that succeed with a value or fail
  with an exception.
* :class:`Timeout` -- an event that triggers after a virtual delay.
* :class:`Process` -- wraps a generator; itself an event that triggers
  when the generator returns.
* :class:`Interrupt` -- thrown into a process by ``Process.interrupt``.

Determinism: events scheduled for the same instant are processed in
scheduling order (a monotonically increasing sequence number breaks
ties), so repeated runs produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupts.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes may wait for.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once and schedules its callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure; waiters see ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._trigger(False, exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.env._schedule(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator and drives it through the event queue.

    The process is itself an event: it triggers with the generator's
    return value when the generator finishes, or fails with the
    exception that escaped the generator.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError("process target must be a generator")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the generator at the current instant.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is a no-op, mirroring SimPy's
        forgiving behaviour, because failure injection frequently races
        with natural completion.
        """
        if self._triggered:
            return
        interrupt_event = Event(self.env)
        interrupt_event.callbacks.append(self._handle_interrupt)
        interrupt_event.succeed(Interrupt(cause))

    def _handle_interrupt(self, event: Event) -> None:
        if self._triggered:
            return
        waiting = self._waiting_on
        if waiting is not None and self._resume in waiting.callbacks:
            waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        self._step(event.value, throw=True)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step(event.value, throw=False)
        else:
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            if not self.callbacks and not isinstance(exc, Interrupt):
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield events"
            )
        self._waiting_on = target
        if target._triggered and not target._scheduled:
            # The event already fired and was consumed; resume immediately.
            immediate = Event(self.env)
            immediate.callbacks.append(self._resume)
            immediate._triggered = True
            immediate._ok = target._ok
            immediate._value = target._value
            self.env._schedule(immediate)
        else:
            target.callbacks.append(self._resume)


class Environment:
    """Virtual clock plus the pending-event heap."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))

    # -- public factory helpers ------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds once every event in ``events`` has.

        The result value is the list of the individual event values in
        input order.  A failure in any child fails the aggregate.
        """
        pending = list(events)
        result = Event(self)
        values: list[Any] = [None] * len(pending)
        remaining = len(pending)
        if remaining == 0:
            result.succeed([])
            return result

        def make_callback(index: int) -> Callable[[Event], None]:
            def callback(event: Event) -> None:
                nonlocal remaining
                if result._triggered:
                    return
                if not event._ok:
                    result.fail(event.value)
                    return
                values[index] = event.value
                remaining -= 1
                if remaining == 0:
                    result.succeed(list(values))

            return callback

        for index, event in enumerate(pending):
            if event._triggered:
                callback = make_callback(index)
                relay = Event(self)
                relay.callbacks.append(callback)
                relay._triggered = True
                relay._ok = event._ok
                relay._value = event._value
                self._schedule(relay)
            else:
                event.callbacks.append(make_callback(index))
        return result

    # -- execution --------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        time, _seq, event = heapq.heappop(self._heap)
        if time < self._now - 1e-12:
            raise SimulationError("event scheduled in the past")
        self._now = max(self._now, time)
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        if until is not None and until < self._now:
            raise SimulationError("cannot run backwards in time")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

"""Deterministic simulation kernel used by the cloud substrate.

The kernel provides three building blocks:

* :mod:`repro.sim.events` -- a small discrete-event simulation (DES)
  engine with generator-based processes, in the spirit of SimPy but
  dependency-free and fully deterministic.
* :mod:`repro.sim.resources` -- FIFO resources and continuous containers
  for modelling CPUs, I/O channels, and network links.
* :mod:`repro.sim.mva` -- an exact Mean Value Analysis solver for closed
  queueing networks, used for fast steady-state throughput estimates.
* :mod:`repro.sim.rng` -- named deterministic random streams so that
  every experiment is reproducible bit-for-bit.
"""

from repro.sim.events import Environment, Event, Interrupt, Process, Timeout
from repro.sim.mva import Center, ClosedNetwork, MvaSolution
from repro.sim.resources import Container, Resource
from repro.sim.rng import RngRegistry

__all__ = [
    "Center",
    "ClosedNetwork",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "MvaSolution",
    "Process",
    "Resource",
    "RngRegistry",
    "Timeout",
]

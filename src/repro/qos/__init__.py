"""``repro.qos``: end-to-end overload protection.

Four cooperating pieces (see ``docs/robustness.md``):

* :mod:`repro.qos.admission` -- bounded priority queues + an AIMD
  adaptive concurrency limit, shedding with a retryable ``OverloadError``;
* :mod:`repro.qos.deadline` -- per-request deadlines that propagate into
  the engine's cancellation points (lock wait, buffer miss, WAL append);
* :mod:`repro.qos.budget` -- retry budgets so client retries cannot
  amplify an overload into a retry storm;
* :mod:`repro.qos.overload` -- the ``--eval overload`` evaluator: sweeps
  offered load past saturation and scores graceful degradation
  (the **D-Score**).

The evaluator names are exported lazily (PEP 562): ``overload`` imports
:mod:`repro.core.resilience`, which imports this package's siblings, so
an eager import here would create a cycle.
"""

from repro.qos.admission import (
    AdmissionController,
    AdmissionPolicy,
    BrownoutPolicy,
    Ticket,
)
from repro.qos.budget import RetryBudget
from repro.qos.deadline import Deadline, DeadlineExceededError
from repro.qos.gate import AdmissionGate

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionGate",
    "BrownoutPolicy",
    "Deadline",
    "DeadlineExceededError",
    "RetryBudget",
    "Ticket",
    # lazy (resolved via __getattr__):
    "OverloadEvaluator",
    "OverloadPoint",
    "OverloadResult",
    "d_score",
]

_LAZY = {"OverloadEvaluator", "OverloadPoint", "OverloadResult", "d_score"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.qos import overload

        return getattr(overload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

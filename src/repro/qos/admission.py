"""Admission control: bounded priority queues + adaptive concurrency.

The :class:`AdmissionController` sits in front of a server (the storage
engine, or a simulated cloud node) and decides, per request, one of
three things: run it now, queue it, or shed it with a retryable
:class:`~repro.engine.errors.OverloadError`.

Two cooperating mechanisms:

* **Bounded priority queues** -- requests that cannot run immediately
  wait in per-priority FIFO queues with a total depth cap.  A full queue
  sheds the *lowest*-priority newest arrival instead of growing without
  bound (unbounded queues are how goodput collapses: by the time a
  request reaches the server its deadline has long passed, so the server
  does 100% work for 0% goodput).
* **Adaptive concurrency limit (AIMD on latency)** -- the in-flight
  limit climbs additively while observed latency stays near the moving
  baseline and backs off multiplicatively when latency exceeds
  ``latency_threshold x baseline`` (a gradient-style congestion signal,
  in the TCP-Vegas/Netflix-concurrency-limits family).  The controller
  therefore *finds* the server's capacity instead of being configured
  with it.

Expired entries are dropped at dequeue time (deadline propagation: a
queued request whose deadline passed is cancelled for free, without ever
occupying the server).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Tuple

from repro.engine.errors import OverloadError
from repro.obs import NULL_OBSERVER, Observer

__all__ = ["AdmissionPolicy", "AdmissionController", "BrownoutPolicy", "Ticket"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tuning knobs of one admission controller."""

    #: total queued requests across all priorities before shedding
    max_queue: int = 64
    #: number of priority classes (0 = highest)
    priorities: int = 3
    initial_limit: float = 8.0
    min_limit: float = 1.0
    max_limit: float = 256.0
    #: additive increase per ~limit completions under good latency
    increase: float = 1.0
    #: multiplicative decrease factor on a congestion signal
    decrease: float = 0.7
    #: congestion when latency > threshold x moving baseline
    latency_threshold: float = 2.0
    #: EWMA weight of the latency baseline
    baseline_alpha: float = 0.05
    #: minimum seconds between multiplicative decreases (one per RTT-ish)
    decrease_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_queue < 0 or self.priorities < 1:
            raise ValueError("need max_queue >= 0 and priorities >= 1")
        if not 0 < self.min_limit <= self.initial_limit <= self.max_limit:
            raise ValueError("need 0 < min_limit <= initial_limit <= max_limit")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if self.latency_threshold <= 1.0:
            raise ValueError("latency_threshold must exceed 1.0")
        if not 0.0 < self.baseline_alpha <= 1.0:
            raise ValueError("baseline_alpha must be in (0, 1]")


@dataclass
class Ticket:
    """One admitted or queued request."""

    item: Any
    priority: int
    enqueued_at_s: float
    deadline: Any = None  # duck-typed: anything with .expired(now)


@dataclass(frozen=True)
class BrownoutPolicy:
    """Degradation knobs for the DES fleet (tenancy / replicas).

    ``overcommit_threshold`` is how far past capacity aggregate demand
    may run before tenants are throttled (demand above
    ``(1 + threshold) x capacity`` is shed); ``min_share`` is the
    fraction of its demand a tenant is always admitted (no tenant is
    starved to zero by its neighbours).
    """

    overcommit_threshold: float = 0.25
    min_share: float = 0.1

    def __post_init__(self) -> None:
        if self.overcommit_threshold < 0:
            raise ValueError("overcommit_threshold must be >= 0")
        if not 0.0 <= self.min_share <= 1.0:
            raise ValueError("min_share must be in [0, 1]")


class AdmissionController:
    """Bounded queue + AIMD concurrency limit for one server."""

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        name: str = "qos",
        observer: Optional[Observer] = None,
    ):
        self.policy = policy or AdmissionPolicy()
        self.name = name
        self.obs = observer or NULL_OBSERVER
        # Pre-resolved counters: admit/release run per request.
        if self.obs.enabled:
            metrics = self.obs.metrics
            self._c = {
                event: metrics.counter(f"qos.{event}")
                for event in ("admitted", "queued", "shed", "expired", "completed")
            }
            self._g_limit = metrics.gauge("qos.limit")
            self._g_depth = metrics.gauge("qos.queue_depth")
            self._g_inflight = metrics.gauge("qos.inflight")
            self._g_limit.set(self.policy.initial_limit)
            # One depth gauge per priority class: the aggregate depth
            # hides which class the backlog lives in (whether p0 keeps
            # its queue empty while p2 absorbs the overload).
            self._g_prio = [
                metrics.gauge(f"qos.queue_depth.p{priority}")
                for priority in range(self.policy.priorities)
            ]
        else:
            self._c = None
            self._g_limit = self._g_depth = self._g_inflight = None
            self._g_prio = None
        self.limit = float(self.policy.initial_limit)
        self.inflight = 0
        self._queues: List[Deque[Ticket]] = [
            deque() for _ in range(self.policy.priorities)
        ]
        self._depth = 0
        self._baseline: Optional[float] = None
        self._min_latency: Optional[float] = None
        self._last_decrease_s = float("-inf")
        # cumulative accounting (cheap, always on -- evaluators read these)
        self.admitted = 0
        self.shed = 0
        self.expired = 0
        self.completed = 0
        self.congestion_signals = 0
        self.peak_queue_depth = 0
        self.peak_inflight = 0

    # -- queries -------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return self._depth

    @property
    def latency_baseline_s(self) -> Optional[float]:
        return self._baseline

    def has_capacity(self) -> bool:
        return self.inflight < int(self.limit)

    # -- gate mode: admit now or shed (no queueing) ---------------------------

    def try_acquire(self, now: float, priority: int = 1) -> None:
        """Admit one request immediately or raise :class:`OverloadError`.

        Synchronous callers (the engine gate) have no scheduler to park
        a queued request on, so the only decisions are run or shed.
        """
        if not self.has_capacity():
            self._shed(now, priority, reason="limit")
        self._admit(now)

    # -- queue mode: enqueue / dequeue driven by a scheduler loop -------------

    def enqueue(
        self,
        item: Any,
        now: float,
        priority: int = 1,
        deadline: Any = None,
    ) -> Ticket:
        """Queue a request; sheds (raises) when the queue is full."""
        priority = min(max(priority, 0), self.policy.priorities - 1)
        if self._depth >= self.policy.max_queue:
            self._shed(now, priority, reason="queue_full")
        ticket = Ticket(item, priority, now, deadline)
        self._queues[priority].append(ticket)
        self._depth += 1
        if self._depth > self.peak_queue_depth:
            self.peak_queue_depth = self._depth
        if self._c is not None:
            self._c["queued"].value += 1.0
            self._g_depth.set(float(self._depth))
            self._g_prio[priority].set(float(len(self._queues[priority])))
        return ticket

    def next_ready(self, now: float) -> Optional[Ticket]:
        """Pop the next runnable request, if the limit allows one.

        Expired entries encountered on the way are dropped and counted
        (``expired``) -- this is where deadline propagation cancels
        queued work for free.  Returns ``None`` when nothing can run.
        """
        while self.has_capacity():
            ticket = self._pop(now)
            if ticket is None:
                return None
            if ticket.deadline is not None and ticket.deadline.expired(now):
                self.expired += 1
                if self._c is not None:
                    self._c["expired"].value += 1.0
                continue
            self._admit(now)
            if self.obs.enabled and now > ticket.enqueued_at_s:
                self.obs.complete(
                    "admission.wait", "qos", ticket.enqueued_at_s, now,
                    track="qos", attrs={"priority": ticket.priority},
                )
            return ticket
        return None

    def _pop(self, now: float) -> Optional[Ticket]:
        for priority, queue in enumerate(self._queues):
            if queue:
                self._depth -= 1
                ticket = queue.popleft()
                if self._g_depth is not None:
                    self._g_depth.set(float(self._depth))
                    self._g_prio[priority].set(float(len(queue)))
                return ticket
        return None

    # -- completion & the AIMD limit ------------------------------------------

    def release(self, now: float, latency_s: float, ok: bool = True) -> None:
        """One in-flight request finished; feed its latency to the limit."""
        if self.inflight > 0:
            self.inflight -= 1
        self.completed += 1
        if self._c is not None:
            self._c["completed"].value += 1.0
            self._g_inflight.set(float(self.inflight))
        if latency_s >= 0 and ok:
            self._on_latency(now, latency_s)
        elif not ok:
            # failures are a congestion signal too (timeouts, aborts)
            self._decrease(now)

    def _on_latency(self, now: float, latency_s: float) -> None:
        if self._min_latency is None or latency_s < self._min_latency:
            self._min_latency = latency_s
        if self._baseline is None:
            self._baseline = latency_s
            return
        if latency_s > self.policy.latency_threshold * self._baseline:
            self._decrease(now)
            return
        # Good sample: drift the baseline and grow the limit additively.
        # The drift is anchored to the best latency ever seen (the
        # Vegas/BBR trick): a plain EWMA baseline chases its own
        # congestion -- every slightly-slow "good" sample raises the
        # baseline, which raises the congestion threshold, which admits
        # more load, which slows the next sample... until the limit
        # rails at max_limit with the latency it was meant to protect.
        alpha = self.policy.baseline_alpha
        self._baseline += alpha * (latency_s - self._baseline)
        self._baseline = min(self._baseline, 1.5 * self._min_latency)
        self.limit = min(
            self.policy.max_limit,
            self.limit + self.policy.increase / max(1.0, self.limit),
        )
        if self._g_limit is not None:
            self._g_limit.set(self.limit)

    def _decrease(self, now: float) -> None:
        self.congestion_signals += 1
        if now - self._last_decrease_s < self.policy.decrease_interval_s:
            return
        self._last_decrease_s = now
        self.limit = max(self.policy.min_limit, self.limit * self.policy.decrease)
        if self._g_limit is not None:
            self._g_limit.set(self.limit)

    # -- internals -------------------------------------------------------------

    def _admit(self, now: float) -> None:
        self.inflight += 1
        self.admitted += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        if self._c is not None:
            self._c["admitted"].value += 1.0
            self._g_inflight.set(float(self.inflight))

    def _shed(self, now: float, priority: int, reason: str) -> None:
        self.shed += 1
        if self._c is not None:
            self._c["shed"].value += 1.0
        # Hint the client to stay away for roughly one queue drain.
        drain_s = (
            self._baseline * max(1, self._depth) / max(1.0, self.limit)
            if self._baseline
            else 0.0
        )
        raise OverloadError(
            f"{self.name}: shed priority-{priority} request ({reason}; "
            f"inflight {self.inflight}/{self.limit:.1f}, "
            f"queue {self._depth}/{self.policy.max_queue})",
            retry_after_s=drain_s,
        )

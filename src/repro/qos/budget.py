"""Retry budgets: token buckets that keep retries from amplifying load.

Without a budget, a fleet of clients configured for ``max_attempts=4``
turns a server brownout into up to 4x the offered load -- the retry
storm that tips an overloaded system into collapse.  A
:class:`RetryBudget` (the Finagle/Envoy ``retry_budget`` design) deposits
a *fraction* of a token per first attempt and spends a whole token per
retry, so sustained retry traffic is capped at ``deposit_ratio`` of the
request rate no matter what the retry policy allows.
"""

from __future__ import annotations

__all__ = ["RetryBudget"]


class RetryBudget:
    """Token bucket bounding retries to a fraction of requests.

    * each *first* attempt deposits ``deposit_ratio`` tokens (capped at
      ``max_tokens``),
    * each retry spends one token; when the bucket is empty the retry is
      denied and ``exhausted`` is counted.

    ``min_tokens`` is the initial balance: a small reserve so the first
    few failures of a quiet session may still retry.
    """

    def __init__(
        self,
        deposit_ratio: float = 0.1,
        min_tokens: float = 2.0,
        max_tokens: float = 10.0,
    ):
        if not 0.0 <= deposit_ratio <= 1.0:
            raise ValueError("deposit_ratio must be in [0, 1]")
        if min_tokens < 0 or max_tokens < min_tokens:
            raise ValueError("need 0 <= min_tokens <= max_tokens")
        self.deposit_ratio = deposit_ratio
        self.max_tokens = max_tokens
        self.tokens = min_tokens
        self.deposits = 0
        self.spends = 0
        self.exhausted = 0

    def record_request(self) -> None:
        """A first attempt happened: deposit a fractional token."""
        self.deposits += 1
        self.tokens = min(self.max_tokens, self.tokens + self.deposit_ratio)

    def try_spend(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens for one retry; False when exhausted."""
        if self.tokens >= cost:
            self.tokens -= cost
            self.spends += 1
            return True
        self.exhausted += 1
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RetryBudget {self.tokens:.2f}/{self.max_tokens:g} tokens, "
            f"{self.exhausted} exhausted>"
        )

"""Request deadlines that propagate across layers.

A :class:`Deadline` is an absolute expiry time bound to the clock it was
created under (wall clock, a DES environment's ``now``, or a test's
manual clock).  Carrying the clock *inside* the deadline is what lets it
cross layers: the engine checks ``txn.deadline.expired()`` at its
cancellation points without knowing or caring which time source the
client runs on, and without importing this module (duck typing keeps
``repro.engine`` free of a qos dependency).

Cancellation points in the engine (see :mod:`repro.engine.database`):

* **lock wait** -- before requesting a row lock, so a doomed transaction
  never joins a queue or takes a lock it cannot use;
* **buffer miss** -- before paying for a page fetch on the read path;
* **WAL append** -- before a log record is durably written, the last
  point where a write can be abandoned without undo work.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.engine.errors import DeadlineExceededError

__all__ = ["Deadline", "DeadlineExceededError"]


class Deadline:
    """An absolute expiry instant with its own time source."""

    __slots__ = ("expires_at_s", "clock")

    def __init__(
        self, expires_at_s: float, clock: Optional[Callable[[], float]] = None
    ):
        self.expires_at_s = expires_at_s
        self.clock = clock or time.monotonic

    @classmethod
    def after(
        cls, timeout_s: float, clock: Optional[Callable[[], float]] = None
    ) -> "Deadline":
        """A deadline ``timeout_s`` from now on ``clock``."""
        if timeout_s < 0:
            raise ValueError("timeout must be >= 0")
        clock = clock or time.monotonic
        return cls(clock() + timeout_s, clock)

    def remaining_s(self, now: Optional[float] = None) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at_s - (self.clock() if now is None else now)

    def expired(self, now: Optional[float] = None) -> bool:
        return self.remaining_s(now) <= 0.0

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceededError` when expired."""
        remaining = self.remaining_s()
        if remaining <= 0.0:
            where = f" at {context}" if context else ""
            raise DeadlineExceededError(
                f"deadline exceeded{where} ({-remaining * 1000:.1f} ms past)"
            )

    def child(self, timeout_s: float) -> "Deadline":
        """A tighter deadline: ``min(self, now + timeout_s)``.

        Propagation helper for fan-out: a sub-request may be given a
        shorter budget but can never outlive its parent's deadline.
        """
        candidate = self.clock() + max(0.0, timeout_s)
        return Deadline(min(self.expires_at_s, candidate), self.clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deadline {self.remaining_s() * 1000:+.1f} ms>"

"""The ``--eval overload`` evaluator: goodput past the saturation knee.

Sweeps offered load from below saturation to well past it (multiples of
the server's capacity) and measures what arrives *on time* -- goodput is
completions within the request deadline, not raw completions.  Two
configurations of the same simulation:

* **qos on** -- the full :mod:`repro.qos` stack: an
  :class:`~repro.qos.admission.AdmissionController` (bounded queue,
  AIMD concurrency limit) fronts the server, deadlines propagate (a
  queued request whose deadline passed is dropped for free), shed
  requests retry only within a shared :class:`~repro.qos.budget.
  RetryBudget`, and reads shed at a saturated primary fall back to a
  read replica (brownout mode).
* **qos off** -- the pre-PR-4 behaviour: an unbounded FIFO queue, no
  shedding, and deadline-blind clients that retry on timeout without a
  budget.  Past the knee the queue grows without bound, every completion
  arrives after its deadline, and retries triple the arrival rate --
  goodput collapses instead of flattening.

The simulation is a deterministic event-heap model (seeded exponential
arrivals, processor-sharing service) in *normalised* units: the server's
capacity is ``capacity_rps`` regardless of architecture, so one sweep
costs milliseconds and the score isolates the qos layer rather than the
SUT's absolute throughput.  Architecture still enters through the base
service time (network RTT) and the replica's capacity share.

**D-Score** (graceful degradation): ``1 -`` the mean relative shortfall
between the ideal goodput curve ``min(offered, peak)`` and the observed
curve over the points past the knee.  1.0 means perfectly flat goodput
under any overload; 0 means total collapse.
"""

from __future__ import annotations

import heapq
import math
import random
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cloud.architectures import Architecture
from repro.core.resilience import RetryPolicy
from repro.engine.errors import OverloadError
from repro.obs import NULL_OBSERVER, Observer
from repro.qos.admission import AdmissionController, AdmissionPolicy
from repro.qos.budget import RetryBudget
from repro.qos.deadline import Deadline

__all__ = ["OverloadEvaluator", "OverloadPoint", "OverloadResult", "d_score"]


@dataclass
class OverloadPoint:
    """One offered-load point of the sweep."""

    multiple: float            # offered load as a multiple of capacity
    offered_rps: float         # logical request arrival rate
    goodput_rps: float         # completions within deadline, per second
    requests: int              # logical requests offered
    succeeded: int
    shed: int                  # rejected by admission control
    expired: int               # dropped in queue past their deadline
    timeouts: int              # completions that missed the deadline
    retries: int               # extra attempts sent by clients
    p99_latency_s: float       # of successful logical requests
    peak_queue_depth: int
    final_limit: float         # AIMD limit at the end (qos) or 0

    @property
    def goodput_fraction(self) -> float:
        return self.succeeded / self.requests if self.requests else 0.0


@dataclass
class OverloadResult:
    """A full sweep for one architecture."""

    arch_name: str
    qos: bool
    capacity_rps: float
    deadline_s: float
    points: List[OverloadPoint] = field(default_factory=list)

    @property
    def peak_goodput_rps(self) -> float:
        return max((point.goodput_rps for point in self.points), default=0.0)

    @property
    def dscore(self) -> float:
        return d_score(
            [(point.offered_rps, point.goodput_rps) for point in self.points],
            self.capacity_rps,
        )

    def point_at(self, multiple: float) -> Optional[OverloadPoint]:
        for point in self.points:
            if abs(point.multiple - multiple) < 1e-9:
                return point
        return None


def d_score(curve: List[Tuple[float, float]], capacity_rps: float) -> float:
    """Graceful-degradation score of a goodput-vs-offered-load curve.

    ``1 - mean(max(0, ideal - observed) / ideal)`` over the points past
    the knee, where ``ideal = min(offered, capacity)``.  Points below
    the knee do not count -- any system serves those; the score measures
    behaviour *past* saturation.  Clamped to [0, 1]; 1.0 when the sweep
    never crosses the knee.
    """
    if capacity_rps <= 0:
        return 0.0
    deficits = []
    for offered, observed in curve:
        if offered <= capacity_rps:
            continue
        ideal = capacity_rps
        deficits.append(max(0.0, ideal - observed) / ideal)
    if not deficits:
        return 1.0
    return max(0.0, min(1.0, 1.0 - sum(deficits) / len(deficits)))


# event kinds, ordered so completions at time t precede arrivals at t
_COMPLETE, _ARRIVE, _RETRY = 0, 1, 2


@dataclass
class _Request:
    """One logical client request (attempts share its deadline)."""

    rid: int
    arrival_s: float
    is_read: bool
    deadline: Deadline
    attempts: int = 0
    done: bool = False


class _Server:
    """Processor-sharing server: ``workers`` cores, capacity ``rps``.

    An attempt admitted while ``inflight`` requests run is served in
    ``base_service_s * max(1, inflight / workers)`` -- service degrades
    smoothly once concurrency exceeds the core count, which is the
    latency signal the AIMD limit feeds on.
    """

    def __init__(self, workers: int, capacity_rps: float, extra_latency_s: float):
        self.workers = workers
        self.base_service_s = workers / capacity_rps
        self.extra_latency_s = extra_latency_s
        self.inflight = 0

    def service_time_s(self, rng: random.Random) -> float:
        load = max(1.0, (self.inflight + 1) / self.workers)
        jitter = 0.8 + 0.4 * rng.random()
        return self.base_service_s * load * jitter + self.extra_latency_s


class OverloadEvaluator:
    """Sweeps one architecture past saturation, with or without qos."""

    def __init__(
        self,
        arch: Architecture,
        qos: bool = True,
        capacity_rps: float = 200.0,
        workers: int = 16,
        deadline_s: float = 0.6,
        duration_s: float = 6.0,
        seed: int = 42,
        read_fraction: float = 0.8,
        read_fallback: bool = True,
        replica_ratio: float = 0.5,
        policy: Optional[AdmissionPolicy] = None,
        observer: Optional[Observer] = None,
        arrival: str = "poisson",
    ):
        from repro.perf.openloop import parse_arrival

        if capacity_rps <= 0 or duration_s <= 0 or deadline_s <= 0:
            raise ValueError("capacity, duration and deadline must be positive")
        self.arrival = parse_arrival(arrival)
        if not self.arrival.is_open:
            raise ValueError(
                "the overload sweep is open-loop by definition; "
                "use a poisson or burst arrival spec"
            )
        self.arch = arch
        self.qos = qos
        self.capacity_rps = capacity_rps
        self.workers = workers
        self.deadline_s = deadline_s
        self.duration_s = duration_s
        self.seed = seed
        self.read_fraction = read_fraction
        self.read_fallback = read_fallback and qos
        self.replica_ratio = replica_ratio
        self.obs = observer or NULL_OBSERVER
        self.policy = policy or AdmissionPolicy(
            max_queue=32,
            initial_limit=float(workers),
            max_limit=float(workers * 16),
            latency_threshold=2.0,
        )
        self.retry_policy = RetryPolicy(
            max_attempts=3, base_backoff_s=deadline_s / 4, jitter=0.0
        )
        #: extra per-request latency from the SUT's network path
        self._extra_latency_s = 2.0 * arch.network.latency_s

    # -- the sweep ------------------------------------------------------------

    def run(self, multiples: Optional[List[float]] = None) -> OverloadResult:
        multiples = multiples or [0.5, 1.0, 1.5, 2.0, 3.0]
        result = OverloadResult(
            arch_name=self.arch.name,
            qos=self.qos,
            capacity_rps=self.capacity_rps,
            deadline_s=self.deadline_s,
        )
        for index, multiple in enumerate(multiples):
            point = self._run_point(multiple, seed_offset=index)
            result.points.append(point)
            if self.obs.enabled:
                self.obs.count("qos.sweep.points")
                self.obs.gauge("qos.sweep.goodput_rps", point.goodput_rps)
        if self.obs.enabled:
            self.obs.event(
                "overload.sweep", "qos", track="qos",
                attrs={
                    "arch": self.arch.name, "qos": self.qos,
                    "dscore": round(result.dscore, 4),
                },
            )
        return result

    # -- one offered-load point ------------------------------------------------

    def _run_point(self, multiple: float, seed_offset: int) -> OverloadPoint:
        # integer-only seed material: hash() of strings is randomised
        # per process, which would make the sweep non-reproducible
        rng = random.Random(
            zlib.crc32(self.arch.name.encode()) * 7919
            + self.seed * 104_729
            + seed_offset * 31
            + (1 if self.qos else 0)
        )
        clock = _VirtualClock()
        primary = _Server(self.workers, self.capacity_rps, self._extra_latency_s)
        replica = (
            _Server(
                max(1, self.workers // 2),
                self.capacity_rps * self.replica_ratio,
                self._extra_latency_s,
            )
            if self.read_fallback
            else None
        )
        controller = (
            AdmissionController(
                self.policy, name=f"overload:{self.arch.name}", observer=self.obs
            )
            if self.qos
            else None
        )
        replica_controller = (
            AdmissionController(
                self.policy, name=f"overload:{self.arch.name}:ro", observer=self.obs
            )
            if replica is not None
            else None
        )
        budget = RetryBudget(deposit_ratio=0.1, min_tokens=3.0, max_tokens=20.0)
        naive_queue: List[Tuple[float, _Request]] = []  # qos-off FIFO
        rate = multiple * self.capacity_rps

        events: List[Tuple[float, int, int, object]] = []
        seq = 0

        def push(at_s: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (at_s, kind, seq, payload))
            seq += 1

        # pre-seed the arrival stream for the whole window through the
        # shared open-loop generator (the spec's rate, when set, is a
        # multiple of capacity like the sweep's own points)
        from repro.perf.openloop import arrival_offsets_window

        arrival_rate = (
            self.arrival.rate * self.capacity_rps
            if self.arrival.rate is not None
            else rate
        )
        requests: List[_Request] = []
        for rid, t in enumerate(
            arrival_offsets_window(self.arrival, arrival_rate,
                                   self.duration_s, rng)
        ):
            request = _Request(
                rid=rid,
                arrival_s=t,
                is_read=rng.random() < self.read_fraction,
                deadline=Deadline(t + self.deadline_s, clock),
            )
            requests.append(request)
            push(t, _ARRIVE, request)

        succeeded = shed = expired = timeouts = retries = 0
        latencies: List[float] = []
        peak_naive_queue = 0

        def start_service(
            server: _Server, request: _Request, now: float, via
        ) -> None:
            server.inflight += 1
            push(now + server.service_time_s(rng), _COMPLETE,
                 (server, request, now, via))

        def pump(now: float) -> None:
            """Admit whatever the limits allow right now."""
            if controller is not None:
                while True:
                    ticket = controller.next_ready(now)
                    if ticket is None:
                        break
                    start_service(primary, ticket.item, now, controller)
                if replica_controller is not None:
                    while True:
                        ticket = replica_controller.next_ready(now)
                        if ticket is None:
                            break
                        start_service(replica, ticket.item, now, replica_controller)
            else:
                while naive_queue and primary.inflight < primary.workers:
                    _enq_at, request = naive_queue.pop(0)
                    start_service(primary, request, now, None)

        def offer(request: _Request, now: float, attempt: bool) -> None:
            nonlocal shed, retries
            if attempt:
                retries += 1
            if controller is None:
                naive_queue.append((now, request))
                # deadline-blind client: gives up waiting after one
                # deadline's worth of silence and resends, leaving the
                # stale copy in the queue -- the classic retry storm
                if request.attempts < self.retry_policy.max_attempts:
                    push(now + self.deadline_s, _RETRY, request)
                return
            try:
                controller.enqueue(request, now, priority=1,
                                   deadline=request.deadline)
            except OverloadError as error:
                # brownout: reads shed at the primary fall back to the
                # read replica before the client sees the rejection
                if (
                    request.is_read
                    and replica_controller is not None
                ):
                    try:
                        replica_controller.enqueue(
                            request, now, priority=1, deadline=request.deadline
                        )
                        return
                    except OverloadError:
                        pass
                shed += 1
                maybe_retry(request, now, error.retry_after_s)

        def maybe_retry(request: _Request, now: float, hint_s: float) -> None:
            if request.done or request.attempts >= self.retry_policy.max_attempts:
                return
            if self.qos and not budget.try_spend():
                return
            delay = max(
                self.retry_policy.backoff_s(request.attempts, rng), hint_s
            )
            at = now + delay
            if request.deadline.expired(at):
                return  # no point replaying past the deadline
            push(at, _RETRY, request)

        while events:
            now, kind, _seq, payload = heapq.heappop(events)
            clock.now = now
            if kind == _ARRIVE or kind == _RETRY:
                request = payload  # type: ignore[assignment]
                if request.done:
                    continue
                request.attempts += 1
                offer(request, now, attempt=(kind == _RETRY))
                pump(now)
                if controller is None:
                    peak_naive_queue = max(peak_naive_queue, len(naive_queue))
            else:
                server, request, started, via = payload  # type: ignore[misc]
                server.inflight -= 1
                latency = now - started
                if via is not None:
                    via.release(now, latency, ok=True)
                if not request.done:
                    if request.deadline.expired(now):
                        timeouts += 1
                        maybe_retry(request, now, 0.0)
                    else:
                        request.done = True
                        succeeded += 1
                        latencies.append(now - request.arrival_s)
                pump(now)

        if controller is not None:
            expired = controller.expired
            if replica_controller is not None:
                expired += replica_controller.expired
            peak_queue = controller.peak_queue_depth
            final_limit = controller.limit
        else:
            peak_queue = peak_naive_queue
            final_limit = 0.0

        latencies.sort()
        p99 = (
            latencies[min(len(latencies) - 1, math.ceil(0.99 * len(latencies)) - 1)]
            if latencies
            else float("inf")
        )
        return OverloadPoint(
            multiple=multiple,
            offered_rps=rate,
            goodput_rps=succeeded / self.duration_s,
            requests=len(requests),
            succeeded=succeeded,
            shed=shed,
            expired=expired,
            timeouts=timeouts,
            retries=retries,
            p99_latency_s=p99,
            peak_queue_depth=peak_queue,
            final_limit=final_limit,
        )


class _VirtualClock:
    """The sweep's time source; deadlines read it directly."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

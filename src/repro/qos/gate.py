"""``AdmissionGate``: overload protection in front of a real engine.

Wraps an :class:`~repro.engine.database.Database` with an
:class:`~repro.qos.admission.AdmissionController` so every statement is
admitted (or shed with a retryable
:class:`~repro.engine.errors.OverloadError`) before it touches the
engine, and carries a per-request :class:`~repro.qos.deadline.Deadline`
into the engine's cancellation points.

The gate is synchronous -- it fronts the cooperative engine, which has
no scheduler to park queued work on -- so its admission decision is
binary: run now or shed.  The queueing/backpressure half of the
controller is exercised by the DES-side overload evaluator
(:mod:`repro.qos.overload`), which *does* have a scheduler.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Sequence

from repro.engine.database import Database
from repro.engine.executor import ResultSet
from repro.qos.admission import AdmissionController, AdmissionPolicy
from repro.qos.deadline import Deadline

__all__ = ["AdmissionGate"]


class AdmissionGate:
    """Admission-controlled facade over a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        controller: Optional[AdmissionController] = None,
        clock: Optional[Callable[[], float]] = None,
        default_timeout_s: Optional[float] = None,
    ):
        self.db = db
        self.clock = clock or time.monotonic
        self.controller = controller or AdmissionController(
            AdmissionPolicy(), name=f"gate:{db.name}", observer=db.obs
        )
        self.default_timeout_s = default_timeout_s

    def _deadline(self, timeout_s: Optional[float]) -> Optional[Deadline]:
        budget = timeout_s if timeout_s is not None else self.default_timeout_s
        if budget is None:
            return None
        return Deadline.after(budget, self.clock)

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        timeout_s: Optional[float] = None,
        priority: int = 1,
    ) -> ResultSet:
        """Admit, then run one autocommit statement under a deadline."""
        started = self.clock()
        self.controller.try_acquire(started, priority)
        ok = False
        try:
            result = self.db.execute(
                sql, params, deadline=self._deadline(timeout_s)
            )
            ok = True
            return result
        finally:
            now = self.clock()
            self.controller.release(now, now - started, ok=ok)

    def query(
        self,
        sql: str,
        params: Sequence[Any] = (),
        timeout_s: Optional[float] = None,
        priority: int = 1,
    ) -> ResultSet:
        """Admission-controlled read-only entry point."""
        started = self.clock()
        self.controller.try_acquire(started, priority)
        ok = False
        try:
            result = self.db.query(
                sql, params, deadline=self._deadline(timeout_s)
            )
            ok = True
            return result
        finally:
            now = self.clock()
            self.controller.release(now, now - started, ok=ok)

"""The two-stage measured harness (pilot -> measured -> profile).

Stage one, the **pilot**, runs a short closed-loop burst on its own
seed stream and observes the host's service rate.  From that it
calibrates stage two: the measured iteration count (quantised to
powers of two so "this host is 7% faster today" does not change *what*
runs) and the open-loop target arrival rate.  Stage two, the
**measured run**, rebuilds the workload from scratch on the measured
seed stream -- pilot writes never leak into the measured heap, and
pilot draws never perturb the measured statement sequence -- and
records wall time, CPU time, peak RSS, deterministic work counters,
and the p50/p95/p99/p999 latency block from the mergeable histograms.
An optional third pass replays the same measured seeds under the
:class:`~repro.perf.profiler.SubsystemProfiler` so attribution cost
never pollutes the timing numbers.

Seeding discipline (the whole point of the named streams):

* ``perf.<workload>.pilot``     -- pilot workload draws
* ``perf.<workload>.measured``  -- measured (and profile) workload draws
* ``perf.<workload>.arrival``   -- the arrival process

so a faster machine (different pilot length) or a different arrival
spec still measures the byte-identical statement sequence, which is
what lets the comparator treat committed/aborted/fsync counts as
exact, machine-independent values.
"""

from __future__ import annotations

import gc
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs.observer import Observer
from repro.perf.openloop import (
    ArrivalSpec,
    OpenLoopResult,
    arrival_offsets,
    parse_arrival,
    run_closed_loop,
    run_open_loop,
)
from repro.perf.profiler import SubsystemProfiler
from repro.perf.trajectory import (
    TrajectoryRecord,
    env_fingerprint,
    workload_fingerprint,
)
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "MeasuredRun",
    "PerfWorkload",
    "TwoStageHarness",
    "peak_rss_kb",
    "perf_workload_names",
]

#: iteration-count bounds the pilot calibration is clamped to
MIN_TXNS = 64
MAX_TXNS = 50_000


def peak_rss_kb() -> float:
    """Process peak RSS in KiB (``ru_maxrss``; 0.0 where unsupported).

    A high-water mark over the whole process lifetime -- comparable
    between BENCH files produced by the same entry point, and
    deliberately *not* gated by the comparator.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak /= 1024.0
    return float(peak)


def _quantise(value: int) -> int:
    """Round to the nearest power of two (calibration stability)."""
    if value <= 1:
        return 1
    power = 1
    while power * 2 <= value:
        power *= 2
    return power * 2 if value - power > power * 2 - value else power


@dataclass
class PerfWorkload:
    """A measurable workload: a factory plus its fingerprint params.

    ``build(stage_seed)`` returns ``(run_one, counters)`` where
    ``run_one()`` executes one transaction (returning ``False`` on a
    retryable abort) and ``counters()`` reads the deterministic work
    counters ``{"committed": ..., "aborted": ..., "fsyncs": ...}``
    accumulated so far.
    """

    name: str
    params: Dict[str, Any]
    build: Callable[[int], Tuple[Callable[[], object], Callable[[], Dict[str, int]]]]


@dataclass
class MeasuredRun:
    """Everything stage two (plus the profile pass) produced."""

    workload: str
    arrival: ArrivalSpec
    seed: int
    params: Dict[str, Any]
    # pilot
    pilot_txns: int
    pilot_wall_s: float
    pilot_rate_tps: float
    target_rate_tps: float
    # measured
    txns: int
    committed: int
    aborted: int
    fsyncs: int
    wall_s: float
    cpu_s: float
    peak_rss_kb: float
    service: OpenLoopResult
    openloop: Optional[OpenLoopResult] = None
    # profile pass
    profile: Optional[SubsystemProfiler] = None
    spin_s: float = 0.0
    extra_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def tps(self) -> float:
        return self.committed / self.wall_s if self.wall_s > 0 else 0.0

    def to_record(self) -> TrajectoryRecord:
        params = {
            "name": self.workload,
            "seed": self.seed,
            "arrival": self.arrival.describe(),
            **self.params,
        }
        metrics: Dict[str, Any] = {
            "txns": self.txns,
            "committed": self.committed,
            "aborted": self.aborted,
            "fsyncs": self.fsyncs,
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "peak_rss_kb": round(self.peak_rss_kb, 1),
            "tps": round(self.tps, 3),
            "latency_ms": {
                key: round(value, 4)
                for key, value in self.service.latency_summary_ms().items()
            },
            "openloop_latency_ms": (
                {
                    key: round(value, 4)
                    for key, value in self.openloop.latency_summary_ms().items()
                }
                if self.openloop is not None
                else None
            ),
        }
        if self.extra_counters:
            metrics["counters"] = dict(self.extra_counters)
        subsystems: Dict[str, Any] = {}
        if self.profile is not None:
            subsystems = {
                "wall_s": round(self.profile.wall_s, 6),
                "coverage": round(self.profile.coverage, 4),
                "seconds": {
                    name: round(value, 6)
                    for name, value in self.profile.breakdown().items()
                },
                "shares": {
                    name: round(value, 4)
                    for name, value in self.profile.shares().items()
                },
            }
        return TrajectoryRecord(
            eval_name=self.workload,
            workload={
                "name": self.workload,
                "seed": self.seed,
                "arrival": self.arrival.describe(),
                "params": params,
                "fingerprint": workload_fingerprint(params),
            },
            env=env_fingerprint(spin_s=self.spin_s),
            pilot={
                "txns": self.pilot_txns,
                "wall_s": round(self.pilot_wall_s, 6),
                "rate_tps": round(self.pilot_rate_tps, 3),
                "target_rate_tps": round(self.target_rate_tps, 3),
            },
            metrics=metrics,
            subsystems=subsystems,
        )


# ---------------------------------------------------------------------------
# built-in workloads
# ---------------------------------------------------------------------------

def _sales_workload(
    name: str,
    n_shards: int,
    cross_ratio: float,
    seed: int,
    row_scale: float,
    observer: Optional[Observer],
) -> PerfWorkload:
    """The payment workload against a freshly loaded shard fleet."""
    from repro.shard.fleet import load_sales_fleet
    from repro.shard.workload import ShardSalesWorkload

    def build(stage_seed: int):
        fleet, _data = load_sales_fleet(
            n_shards, row_scale=row_scale, seed=seed, observer=observer,
        )
        workload = ShardSalesWorkload(
            fleet, cross_ratio=cross_ratio, seed=stage_seed
        )
        fsyncs_at_start = fleet.fsyncs

        def counters() -> Dict[str, int]:
            return {
                "committed": workload.committed,
                "aborted": workload.aborted,
                "cross_committed": workload.cross_committed,
                "fsyncs": fleet.fsyncs - fsyncs_at_start,
            }

        return workload.run_one, counters

    return PerfWorkload(
        name=name,
        params={
            "n_shards": n_shards,
            "cross_ratio": cross_ratio,
            "row_scale": row_scale,
        },
        build=build,
    )


def perf_workload_names() -> Tuple[str, ...]:
    """The workloads the harness knows how to build."""
    return ("oltp", "shard")


class TwoStageHarness:
    """Pilot -> measured -> profile, producing one trajectory record.

    ``txns=None`` lets the pilot calibrate the measured iteration
    count to roughly ``target_s`` seconds of work; a fixed ``txns``
    (what ``--quick`` and the CI gate use) makes the deterministic
    counters byte-comparable across machines.
    """

    def __init__(
        self,
        seed: int = 42,
        row_scale: float = 0.002,
        pilot_txns: int = 48,
        target_s: float = 1.5,
        txns: Optional[int] = None,
        arrival: ArrivalSpec | str = "poisson",
        rate_factor: float = 1.0,
        profile: bool = True,
        shard_cross_ratio: float = 0.2,
        observer: Optional[Observer] = None,
    ):
        if pilot_txns < 1:
            raise ValueError("pilot_txns must be >= 1")
        if target_s <= 0:
            raise ValueError("target_s must be positive")
        if txns is not None and txns < 1:
            raise ValueError("txns must be >= 1")
        if rate_factor <= 0:
            raise ValueError("rate_factor must be positive")
        self.seed = seed
        self.row_scale = row_scale
        self.pilot_txns = pilot_txns
        self.target_s = target_s
        self.txns = txns
        self.arrival = parse_arrival(arrival)
        self.rate_factor = rate_factor
        self.profile = profile
        self.shard_cross_ratio = shard_cross_ratio
        self.observer = observer
        self._spin_s: Optional[float] = None

    # -- workload construction ----------------------------------------------

    def workload(self, name: str) -> PerfWorkload:
        if name == "oltp":
            return _sales_workload(
                "oltp", n_shards=1, cross_ratio=0.0, seed=self.seed,
                row_scale=self.row_scale, observer=self.observer,
            )
        if name == "shard":
            return _sales_workload(
                "shard", n_shards=2, cross_ratio=self.shard_cross_ratio,
                seed=self.seed, row_scale=self.row_scale,
                observer=self.observer,
            )
        raise KeyError(
            f"unknown perf workload {name!r}; one of {perf_workload_names()}"
        )

    # -- the stages ----------------------------------------------------------

    def _stage_seed(self, workload: str, stage: str) -> int:
        return derive_seed(self.seed, f"perf.{workload}.{stage}")

    def run(self, name: str) -> MeasuredRun:
        spec = self.workload(name)
        observer = self.observer

        # Stage one: pilot.  Its own seed stream AND its own fleet --
        # nothing it touches survives into the measured run.
        run_one, _counters = spec.build(self._stage_seed(name, "pilot"))
        pilot_start = time.perf_counter()
        for _ in range(self.pilot_txns):
            run_one()
        pilot_wall = time.perf_counter() - pilot_start
        pilot_rate = self.pilot_txns / pilot_wall if pilot_wall > 0 else 0.0

        if self.txns is not None:
            txns = self.txns
        else:
            txns = _quantise(
                max(MIN_TXNS, min(MAX_TXNS, round(pilot_rate * self.target_s)))
            )
        target_rate = (
            self.arrival.rate
            if self.arrival.rate is not None
            else max(1.0, pilot_rate * self.rate_factor)
        )

        # Stage two: the measured run, rebuilt from scratch.  GC is
        # collected and paused for the duration: a cycle collection
        # triggered by the pilot's (or a previous workload's) garbage
        # landing mid-loop shows up as a multi-millisecond tail spike
        # that has nothing to do with the workload under test.
        run_one, counters = spec.build(self._stage_seed(name, "measured"))
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            cpu_start = time.process_time()
            wall_start = time.perf_counter()
            if self.arrival.is_open:
                arrival_rng = RngRegistry(
                    self._stage_seed(name, "arrival")
                ).stream(self.arrival.kind)
                offsets = arrival_offsets(
                    self.arrival, target_rate, txns, arrival_rng
                )
                openloop = run_open_loop(
                    run_one, offsets, observer=observer,
                    metric=f"perf.{name}.openloop.latency_s",
                )
                service = openloop.service_view()
            else:
                openloop = None
                service = run_closed_loop(
                    run_one, txns, observer=observer,
                    metric=f"perf.{name}.service_s",
                )
            wall_s = time.perf_counter() - wall_start
            cpu_s = time.process_time() - cpu_start
        finally:
            if gc_was_enabled:
                gc.enable()
        if observer is not None and observer.enabled:
            observer.complete(
                f"perf.measured.{name}", "perf",
                wall_start, wall_start + wall_s,
                track="perf", attrs={"txns": txns},
            )
        counts = counters()

        # Stage three (optional): the profile pass replays the measured
        # seeds under the deterministic tracer -- identical statements,
        # separate timing, so attribution overhead stays out of stage 2.
        profiler = None
        if self.profile:
            run_one, _counters = spec.build(self._stage_seed(name, "measured"))
            profiler = SubsystemProfiler()
            with profiler:
                for _ in range(txns):
                    run_one()
            if observer is not None:
                profiler.emit(observer)

        if self._spin_s is None:
            from repro.perf.trajectory import calibration_spin

            self._spin_s = calibration_spin()

        extra = {
            key: value for key, value in counts.items()
            if key not in ("committed", "aborted", "fsyncs")
        }
        return MeasuredRun(
            workload=name,
            arrival=self.arrival,
            seed=self.seed,
            params=spec.params,
            pilot_txns=self.pilot_txns,
            pilot_wall_s=pilot_wall,
            pilot_rate_tps=pilot_rate,
            target_rate_tps=target_rate if self.arrival.is_open else 0.0,
            txns=txns,
            committed=counts.get("committed", 0),
            aborted=counts.get("aborted", 0),
            fsyncs=counts.get("fsyncs", 0),
            wall_s=wall_s,
            cpu_s=cpu_s,
            peak_rss_kb=peak_rss_kb(),
            service=service,
            openloop=openloop,
            profile=profiler,
            spin_s=self._spin_s,
            extra_counters=extra,
        )

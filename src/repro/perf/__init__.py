"""``repro.perf``: the performance-observability subsystem.

Four layers, built on :mod:`repro.obs`:

* :mod:`repro.perf.openloop` -- coordinated-omission-free load
  generation: Poisson/burst arrival schedules per client class, with
  latency timestamped from the *scheduled* start, not the actual one.
* :mod:`repro.perf.profiler` -- a deterministic subsystem profiler
  (``sys.setprofile`` tracer, plus a virtual-clock sampler for DES
  runs) attributing measured time to engine subsystems.
* :mod:`repro.perf.harness` -- the two-stage measured harness: a pilot
  run calibrates iteration count and target rate, a measured run
  records wall/CPU/RSS and tail percentiles, an optional profile pass
  produces the subsystem cost breakdown.
* :mod:`repro.perf.trajectory` / :mod:`repro.perf.compare` -- the
  canonical ``BENCH_<eval>.json`` schema, baseline files, and the
  regression comparator CI gates on.
"""

from repro.perf.harness import MeasuredRun, TwoStageHarness, perf_workload_names
from repro.perf.openloop import (
    ArrivalSpec,
    OpenLoopResult,
    arrival_offsets,
    arrival_offsets_window,
    parse_arrival,
    replay_open_loop,
    run_closed_loop,
    run_open_loop,
)
from repro.perf.profiler import SUBSYSTEMS, ClockSampler, SubsystemProfiler
from repro.perf.trajectory import (
    BENCH_SCHEMA,
    TrajectoryRecord,
    bench_filename,
    validate_bench,
    write_bench,
)

__all__ = [
    "ArrivalSpec",
    "BENCH_SCHEMA",
    "ClockSampler",
    "MeasuredRun",
    "OpenLoopResult",
    "SUBSYSTEMS",
    "SubsystemProfiler",
    "TrajectoryRecord",
    "TwoStageHarness",
    "arrival_offsets",
    "arrival_offsets_window",
    "bench_filename",
    "parse_arrival",
    "perf_workload_names",
    "replay_open_loop",
    "run_closed_loop",
    "run_open_loop",
    "validate_bench",
    "write_bench",
]

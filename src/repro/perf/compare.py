"""The trajectory comparator and CI regression gate.

``python -m repro.perf.compare`` diffs measured runs against the
committed baselines in ``benchmarks/baselines/``.  Three kinds of
check, in decreasing order of strength:

* **Identity** -- schema validity and workload-fingerprint equality.
  A fingerprint mismatch means the two documents measured different
  things; the comparator refuses to produce a number rather than
  produce a wrong one.
* **Exact** -- the deterministic work counters.  With a fixed
  iteration count and the named seed streams, ``committed``,
  ``aborted`` and ``fsyncs`` are machine-independent integers; any
  drift is a behaviour change (a planner picking a different path, a
  retry loop firing differently), not noise, and fails outright.
* **Banded** -- wall-clock metrics (throughput, p50/p99 latency),
  normalised by the **calibration-spin ratio** of the two hosts
  before the band applies.  The spin (see
  :func:`repro.perf.trajectory.calibration_spin`) measures each host's
  single-thread Python speed; dividing it out turns "this runner is
  40% slower than the one that wrote the baseline" from a false alarm
  into a no-op.  Tail percentiles get double the band of medians --
  tails are honest but noisy.

With no file arguments the gate runs the two-stage harness live
(``--quick`` pins the iteration count for CI) and compares the fresh
records; with file arguments it validates and compares those instead.
``--write`` refreshes the baselines in place.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.perf.trajectory import (
    TrajectoryRecord,
    bench_filename,
    validate_bench,
    write_bench,
)

__all__ = [
    "CompareReport",
    "MetricCheck",
    "compare_docs",
    "load_bench",
    "main",
]

#: default relative band on normalised throughput / median latency
DEFAULT_BAND = 0.5

#: tail percentiles tolerate double the band
TAIL_FACTOR = 2.0

#: absolute grace (ms) added to the latency limits -- sub-millisecond
#: percentiles over a few hundred samples sit inside scheduler-tick
#: noise, where no relative band is wide enough without being useless
#: on real regressions (which shift the tail by whole milliseconds)
LATENCY_SLACK_MS = {"p50": 0.25, "p99": 1.0}

#: minimum profiler coverage a record with a subsystem block must show
MIN_COVERAGE = 0.9

#: default location of the committed baselines (relative to the repo root)
DEFAULT_BASELINE_DIR = "benchmarks/baselines"

#: iteration count ``--quick`` pins (must match the committed baselines)
QUICK_TXNS = 256


@dataclass
class MetricCheck:
    """One comparator row: a metric, its limit, and the verdict."""

    metric: str
    kind: str                     # "exact" | "band" | "identity"
    baseline: Any
    current: Any
    normalized: Optional[float] = None
    limit: Optional[float] = None
    ok: bool = True
    note: str = ""

    def format(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        if self.kind == "exact":
            detail = f"baseline={self.baseline} current={self.current}"
        elif self.kind == "band":
            detail = (
                f"baseline={self.baseline:.4g} current={self.current:.4g} "
                f"normalized={self.normalized:.4g} limit={self.limit:.4g}"
            )
        else:
            detail = self.note or f"{self.current!r}"
        return f"  [{mark}] {self.metric:<28} {detail}"


@dataclass
class CompareReport:
    """Everything :func:`compare_docs` decided, printable and testable."""

    eval_name: str
    checks: List[MetricCheck] = field(default_factory=list)
    spin_ratio: float = 1.0

    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[MetricCheck]:
        return [check for check in self.checks if not check.ok]

    def format(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"{self.eval_name}: {verdict} "
            f"(spin ratio {self.spin_ratio:.3f})"
        ]
        lines.extend(check.format() for check in self.checks)
        return "\n".join(lines)


def _identity(report: CompareReport, metric: str, ok: bool, note: str) -> bool:
    report.checks.append(
        MetricCheck(metric=metric, kind="identity", baseline=None,
                    current=None, ok=ok, note=note)
    )
    return ok


def compare_docs(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    band: float = DEFAULT_BAND,
) -> CompareReport:
    """Compare a fresh BENCH document against a committed baseline."""
    name = str(current.get("eval", baseline.get("eval", "?")))
    report = CompareReport(eval_name=name)

    current_problems = validate_bench(current)
    baseline_problems = validate_bench(baseline)
    if not _identity(
        report, "schema", not current_problems and not baseline_problems,
        "; ".join(current_problems + baseline_problems) or "valid",
    ):
        return report

    fp_current = current["workload"]["fingerprint"]
    fp_baseline = baseline["workload"]["fingerprint"]
    if not _identity(
        report, "workload.fingerprint", fp_current == fp_baseline,
        "match" if fp_current == fp_baseline else (
            f"incomparable: {fp_current[:12]} != {fp_baseline[:12]} "
            "(different workload parameters)"
        ),
    ):
        return report

    cur_m, base_m = current["metrics"], baseline["metrics"]

    # Exact: deterministic counters, comparable iff the iteration count
    # matches (a calibrating run legitimately does different work).
    if cur_m["txns"] == base_m["txns"]:
        for key in ("committed", "aborted", "fsyncs"):
            report.checks.append(MetricCheck(
                metric=f"metrics.{key}", kind="exact",
                baseline=base_m[key], current=cur_m[key],
                ok=cur_m[key] == base_m[key],
            ))
    else:
        _identity(
            report, "metrics.counters", True,
            f"skipped exact counters: txns {cur_m['txns']} != "
            f"{base_m['txns']} (calibrated run)",
        )

    # Banded: wall-clock metrics, spin-normalised.
    spin_cur = float(current["env"]["spin_s"])
    spin_base = float(baseline["env"]["spin_s"])
    ratio = spin_cur / spin_base if spin_base > 0 else 1.0
    report.spin_ratio = ratio

    tps_cur, tps_base = float(cur_m["tps"]), float(base_m["tps"])
    if tps_base > 0:
        normalized = tps_cur * ratio  # slower host -> credit back its spin
        limit = tps_base * (1.0 - band)
        report.checks.append(MetricCheck(
            metric="metrics.tps", kind="band",
            baseline=tps_base, current=tps_cur,
            normalized=normalized, limit=limit,
            ok=normalized >= limit,
        ))

    for pct, factor in (("p50", 1.0), ("p99", TAIL_FACTOR)):
        cur_v = cur_m["latency_ms"].get(pct)
        base_v = base_m["latency_ms"].get(pct)
        if not isinstance(cur_v, (int, float)) or not isinstance(
            base_v, (int, float)
        ) or base_v <= 0:
            continue
        normalized = float(cur_v) / ratio  # slower host -> scale down
        limit = float(base_v) * (1.0 + band * factor) + LATENCY_SLACK_MS[pct]
        report.checks.append(MetricCheck(
            metric=f"metrics.latency_ms.{pct}", kind="band",
            baseline=float(base_v), current=float(cur_v),
            normalized=normalized, limit=limit,
            ok=normalized <= limit,
        ))

    # Profiler coverage: a breakdown that sums to less than 90% of the
    # profiled wall time is a broken hook, not a measurement.
    subsystems = current.get("subsystems")
    if subsystems:
        coverage = float(subsystems.get("coverage", 0.0))
        report.checks.append(MetricCheck(
            metric="subsystems.coverage", kind="band",
            baseline=MIN_COVERAGE, current=coverage,
            normalized=coverage, limit=MIN_COVERAGE,
            ok=coverage >= MIN_COVERAGE,
        ))

    return report


def load_bench(path: Path | str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _run_harness(args: argparse.Namespace) -> List[TrajectoryRecord]:
    from repro.core.config import BenchConfig
    from repro.perf.harness import TwoStageHarness, perf_workload_names

    names = (
        [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else list(perf_workload_names())
    )
    # Workload knobs come from the same config the CLI evaluator uses,
    # so `--eval perf --quick --bench-out` and `compare --quick` agree
    # on the workload fingerprint and gate against the same baselines.
    config = BenchConfig.quick() if args.quick else BenchConfig()
    harness = TwoStageHarness(
        seed=args.seed,
        row_scale=config.row_scale,
        pilot_txns=config.perf_pilot_txns,
        target_s=config.perf_target_s,
        txns=QUICK_TXNS if args.quick else args.txns,
        arrival=args.arrival,
        profile=not args.no_profile,
        shard_cross_ratio=config.shard_cross_ratio,
    )
    records = []
    for name in names:
        run = harness.run(name)
        records.append(run.to_record())
    return records


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.compare",
        description=(
            "Validate BENCH_<eval>.json documents and gate them against "
            "committed baselines."
        ),
    )
    parser.add_argument(
        "files", nargs="*",
        help="BENCH files to compare; with none, run the harness live",
    )
    parser.add_argument(
        "--baseline-dir", default=DEFAULT_BASELINE_DIR,
        help=f"committed baselines directory (default {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--band", type=float, default=DEFAULT_BAND,
        help="relative band on normalised tps/p50 (tails get 2x)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"pin the measured run to {QUICK_TXNS} txns (the CI shape)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--workloads", default=None,
        help="comma-separated workload names (default: all)",
    )
    parser.add_argument(
        "--txns", type=int, default=None,
        help="fixed measured iteration count (default: pilot-calibrated)",
    )
    parser.add_argument(
        "--arrival", default="poisson",
        help="arrival spec: closed | poisson[:RATE] | burst[:RATE,N]",
    )
    parser.add_argument(
        "--no-profile", action="store_true",
        help="skip the subsystem-profile pass",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="write/refresh baselines instead of comparing",
    )
    parser.add_argument(
        "--bench-out", default=None, metavar="DIR",
        help="also write the fresh BENCH files to DIR",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline_dir)

    if args.files:
        docs = []
        for path in args.files:
            doc = load_bench(path)
            problems = validate_bench(doc)
            if problems:
                print(f"{path}: INVALID")
                for problem in problems:
                    print(f"  - {problem}")
                return 1
            print(f"{path}: valid ({doc['eval']})")
            docs.append(doc)
    else:
        records = _run_harness(args)
        if args.bench_out:
            for record in records:
                print(f"wrote {write_bench(record, args.bench_out)}")
        if args.write:
            for record in records:
                print(f"wrote {write_bench(record, baseline_dir)}")
            return 0
        docs = [record.to_doc() for record in records]

    exit_code = 0
    for doc in docs:
        baseline_path = baseline_dir / bench_filename(doc["eval"])
        if not baseline_path.exists():
            print(f"{doc['eval']}: no baseline at {baseline_path} (skipped)")
            continue
        report = compare_docs(doc, load_bench(baseline_path), band=args.band)
        print(report.format())
        if not report.passed:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

"""Open-loop, coordinated-omission-free load generation and recording.

A *closed-loop* driver issues the next operation only after the
previous one returned, so a stall in the server also stalls the load
generator -- the driver "coordinates" with the system under test and
omits exactly the samples that would have shown the stall (Tene's
coordinated omission).  An *open-loop* driver decides arrival times in
advance, independent of completions, and measures every operation from
its **scheduled** start.  An operation that sat behind a backlog is
charged its queueing delay; nothing is omitted.

This module provides both halves:

* **Arrival schedules** -- :func:`arrival_offsets` turns an
  :class:`ArrivalSpec` (Poisson or burst, per client class) into a
  sorted list of scheduled start offsets.  Randomness comes from a
  caller-supplied :class:`random.Random` so the schedule is pinned by
  the usual :func:`~repro.sim.rng.derive_seed` named streams.
* **CO-free execution** -- :func:`run_open_loop` replays a schedule
  against a synchronous ``run_one`` callable, accounting service on a
  single-server virtual queue: each operation starts at
  ``max(scheduled, previous completion)`` and its recorded latency is
  ``completion - scheduled``.  The wall clock only measures *service*
  durations; waiting is bookkept, not slept, so a measured run costs
  the same wall time as the closed-loop equivalent while recording
  honest open-loop sojourn times.
* :func:`run_closed_loop` -- the traditional recording (latency =
  service time of the operation just run), kept for the side-by-side
  comparison in ``benchmarks/bench_tail_openloop.py``.

Latencies land in a mergeable :class:`~repro.obs.metrics.Histogram`
(and optionally in a shared observer under a caller-chosen metric
name) so per-class and per-worker results aggregate exactly.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram
from repro.obs.observer import Observer

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "OpenLoopResult",
    "arrival_offsets",
    "arrival_offsets_window",
    "merge_schedules",
    "parse_arrival",
    "replay_open_loop",
    "run_closed_loop",
    "run_open_loop",
]

#: supported arrival processes ("closed" means: no schedule, classic loop)
ARRIVAL_KINDS = ("closed", "poisson", "burst")

#: default burst size for ``burst`` arrivals
DEFAULT_BURST = 8


@dataclass(frozen=True)
class ArrivalSpec:
    """One client class's arrival process.

    ``rate`` is in operations per second; ``None`` lets the harness
    substitute its pilot-calibrated target rate.  ``burst`` groups that
    many arrivals at the same instant (bursty tenants, connection
    storms); groups are spaced so the long-run rate still holds.
    """

    kind: str = "poisson"
    rate: Optional[float] = None
    burst: int = DEFAULT_BURST
    name: str = "default"

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; one of {ARRIVAL_KINDS}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.burst < 1:
            raise ValueError("burst size must be >= 1")

    @property
    def is_open(self) -> bool:
        return self.kind != "closed"

    def describe(self) -> str:
        if self.kind == "closed":
            return "closed"
        rate = "auto" if self.rate is None else f"{self.rate:g}"
        if self.kind == "burst":
            return f"burst:{rate}x{self.burst}"
        return f"poisson:{rate}"


def parse_arrival(value) -> ArrivalSpec:
    """Parse an arrival spec from its CLI spelling.

    ``closed`` | ``poisson`` | ``poisson:RATE`` | ``burst`` |
    ``burst:RATE`` | ``burst:RATE,N``.  ``RATE`` may be ``auto``.
    Already-built specs pass through (programmatic callers).
    """
    if isinstance(value, ArrivalSpec):
        return value
    text = str(value).strip().lower()
    kind, _sep, args = text.partition(":")
    if kind not in ARRIVAL_KINDS:
        raise ValueError(
            f"unknown arrival kind {kind!r}; one of {ARRIVAL_KINDS}"
        )
    if kind == "closed":
        if args:
            raise ValueError("'closed' takes no arguments")
        return ArrivalSpec(kind="closed")
    rate: Optional[float] = None
    burst = DEFAULT_BURST
    if args:
        rate_text, _sep, burst_text = args.partition(",")
        if rate_text and rate_text != "auto":
            rate = float(rate_text)
        if burst_text:
            if kind != "burst":
                raise ValueError("only 'burst' arrivals take a burst size")
            burst = int(burst_text)
    return ArrivalSpec(kind=kind, rate=rate, burst=burst)


def arrival_offsets(
    spec: ArrivalSpec,
    rate: float,
    count: int,
    rng: random.Random,
) -> List[float]:
    """``count`` scheduled start offsets (seconds from t=0), sorted.

    ``rate`` is the effective arrival rate; it overrides nothing --
    callers pass ``spec.rate or calibrated_rate``.  Poisson draws
    exponential gaps; burst emits groups of ``spec.burst`` simultaneous
    arrivals spaced ``burst / rate`` apart (same long-run rate, maximal
    short-term pressure).
    """
    if spec.kind == "closed":
        raise ValueError("closed-loop runs have no arrival schedule")
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if count < 1:
        raise ValueError("need at least one arrival")
    offsets: List[float] = []
    t = 0.0
    if spec.kind == "poisson":
        for _ in range(count):
            t += rng.expovariate(rate)
            offsets.append(t)
    else:  # burst
        gap = spec.burst / rate
        while len(offsets) < count:
            take = min(spec.burst, count - len(offsets))
            offsets.extend([t] * take)
            t += gap
    return offsets


def arrival_offsets_window(
    spec: ArrivalSpec,
    rate: float,
    duration_s: float,
    rng: random.Random,
) -> List[float]:
    """Scheduled start offsets inside ``[0, duration_s)``, sorted.

    The duration-bounded sibling of :func:`arrival_offsets` for
    fixed-window simulations (the overload sweep): the number of
    arrivals is whatever the process produces in the window.
    """
    if spec.kind == "closed":
        raise ValueError("closed-loop runs have no arrival schedule")
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    offsets: List[float] = []
    if spec.kind == "poisson":
        t = rng.expovariate(rate)
        while t < duration_s:
            offsets.append(t)
            t += rng.expovariate(rate)
    else:  # burst
        gap = spec.burst / rate
        t = gap
        while t < duration_s:
            offsets.extend([t] * spec.burst)
            t += gap
    return offsets


def merge_schedules(
    schedules: Dict[str, Sequence[float]],
) -> List[Tuple[float, str]]:
    """Interleave per-class schedules into one ``(offset, class)`` list.

    Stable on ties (sorted by offset, then class name) so multi-class
    runs stay deterministic.
    """
    merged = [
        (offset, name)
        for name, offsets in schedules.items()
        for offset in offsets
    ]
    merged.sort()
    return merged


@dataclass
class OpenLoopResult:
    """Latency record of one (open- or closed-loop) drive."""

    mode: str                       # "open" | "closed"
    operations: int = 0
    errors: int = 0
    wall_s: float = 0.0             # wall time actually spent in run_one
    #: virtual completion time of the last operation (open loop only);
    #: >= wall_s by exactly the scheduled idle time
    makespan_s: float = 0.0
    histogram: Histogram = field(
        default_factory=lambda: Histogram("openloop.latency_s")
    )
    #: per-operation service durations (== ``histogram`` for closed mode)
    service_histogram: Histogram = field(
        default_factory=lambda: Histogram("openloop.service_s")
    )
    #: per-class histograms when the schedule carries classes
    by_class: Dict[str, Histogram] = field(default_factory=dict)

    def percentile_ms(self, pct: float) -> float:
        return self.histogram.percentile(pct) * 1000.0

    def latency_summary_ms(self) -> Dict[str, float]:
        """The p50/p95/p99/p999 block every BENCH file reports."""
        if not self.histogram.count:
            return {}
        return {
            "p50": self.percentile_ms(50.0),
            "p95": self.percentile_ms(95.0),
            "p99": self.percentile_ms(99.0),
            "p999": self.percentile_ms(99.9),
        }

    def service_view(self) -> "OpenLoopResult":
        """This run's *service-time* record (closed-loop style latencies).

        For an open-loop run the primary histogram holds CO-free sojourn
        times; the service view exposes the raw per-operation durations
        under the same interface, so a BENCH file can report both.
        """
        if self.mode == "closed":
            return self
        return OpenLoopResult(
            mode="closed",
            operations=self.operations,
            errors=self.errors,
            wall_s=self.wall_s,
            makespan_s=self.wall_s,
            histogram=self.service_histogram,
            service_histogram=self.service_histogram,
        )


def _class_histogram(result: OpenLoopResult, name: str) -> Histogram:
    histogram = result.by_class.get(name)
    if histogram is None:
        histogram = result.by_class[name] = Histogram(
            f"openloop.latency_s.{name}"
        )
    return histogram


def run_open_loop(
    run_one: Callable[[], object],
    schedule: Sequence[float] | Sequence[Tuple[float, str]],
    observer: Optional[Observer] = None,
    metric: str = "perf.openloop.latency_s",
    clock: Callable[[], float] = time.perf_counter,
) -> OpenLoopResult:
    """Drive ``run_one`` once per scheduled arrival, recording CO-free.

    Service is accounted on a single-server virtual queue: operation
    *i* begins service at ``max(scheduled_i, completion_{i-1})`` and
    its latency is ``completion_i - scheduled_i`` -- queueing delay
    plus service time, exactly what a client that sent the request at
    its scheduled instant would observe.  ``run_one`` returning
    ``False`` (the workloads' retryable-abort convention) counts as an
    error but still consumes service time.

    ``schedule`` entries are either plain offsets or ``(offset,
    class_name)`` pairs (see :func:`merge_schedules`); classes get
    per-class histograms on top of the merged one.
    """
    result = OpenLoopResult(mode="open")
    free_at = 0.0
    wall = 0.0
    for entry in schedule:
        if isinstance(entry, tuple):
            scheduled, cls = entry
        else:
            scheduled, cls = entry, None
        begin = clock()
        ok = run_one()
        service_s = clock() - begin
        wall += service_s
        start = scheduled if scheduled > free_at else free_at
        free_at = start + service_s
        latency = free_at - scheduled
        result.histogram.observe(latency)
        result.service_histogram.observe(service_s)
        if cls is not None:
            _class_histogram(result, cls).observe(latency)
        if observer is not None and observer.enabled:
            observer.observe(metric, latency)
        result.operations += 1
        if ok is False:
            result.errors += 1
    result.wall_s = wall
    result.makespan_s = free_at
    return result


def replay_open_loop(
    service_s: Sequence[float],
    schedule: Sequence[float],
    errors: int = 0,
) -> OpenLoopResult:
    """Open-loop accounting over already-measured service durations.

    The virtual-queue arithmetic of :func:`run_open_loop` needs only
    the per-operation service times (in execution order) and the
    arrival schedule -- not the operations themselves.  Drivers that
    already ran their loop can therefore record closed-loop and
    *replay* the same durations against an arrival schedule to get the
    CO-free view, paying zero extra execution time.
    """
    if len(service_s) != len(schedule):
        raise ValueError(
            f"{len(service_s)} service durations vs "
            f"{len(schedule)} scheduled arrivals"
        )
    result = OpenLoopResult(mode="open")
    free_at = 0.0
    wall = 0.0
    for scheduled, duration in zip(schedule, service_s):
        wall += duration
        start = scheduled if scheduled > free_at else free_at
        free_at = start + duration
        result.histogram.observe(free_at - scheduled)
        result.service_histogram.observe(duration)
        result.operations += 1
    result.errors = errors
    result.wall_s = wall
    result.makespan_s = free_at
    return result


def run_closed_loop(
    run_one: Callable[[], object],
    count: int,
    observer: Optional[Observer] = None,
    metric: str = "perf.closedloop.latency_s",
    clock: Callable[[], float] = time.perf_counter,
) -> OpenLoopResult:
    """The traditional recording: latency = the operation's own duration.

    This is the coordinated-omission-*prone* baseline the open-loop
    runner is compared against; a backlog that delays every subsequent
    operation leaves no trace here.
    """
    if count < 1:
        raise ValueError("need at least one operation")
    result = OpenLoopResult(mode="closed")
    result.service_histogram = result.histogram
    wall = 0.0
    for _ in range(count):
        begin = clock()
        ok = run_one()
        service_s = clock() - begin
        wall += service_s
        result.histogram.observe(service_s)
        if observer is not None and observer.enabled:
            observer.observe(metric, service_s)
        result.operations += 1
        if ok is False:
            result.errors += 1
    result.wall_s = wall
    result.makespan_s = wall
    return result

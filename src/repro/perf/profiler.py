"""Deterministic subsystem profiler: where did the measured time go?

Attribution is by *engine subsystem*, not by function: every frame
maps through :data:`SUBSYSTEM_MODULES` onto one of
:data:`SUBSYSTEMS` (parser/planner, executor, locks, buffer, WAL,
MVCC, 2PC, or ``other``), so the output is a handful of numbers a
trajectory file can carry and a regression gate can diff -- not a
40-thousand-row pprof dump.

Two drivers, one attribution table:

* :class:`SubsystemProfiler` -- a ``sys.setprofile`` tracer.  Every
  call/return event (Python *and* C) closes the interval since the
  previous event and charges it to the subsystem on top of a shadow
  stack.  Deterministic (no signals, no sampling jitter) and complete:
  the per-subsystem seconds sum to the profiled wall time by
  construction.  Slower than an unprofiled run, which is why the
  two-stage harness runs it as a separate pass after the measured run,
  on the same seeds.
* :class:`ClockSampler` -- for virtual-time (DES) evaluations, where
  wall time is meaningless.  It wraps the observer's clock callable;
  each read attributes the virtual time elapsed since the previous
  read to the subsystem of the *calling* stack.  Instrumented sites
  already read the clock at every interesting boundary, so clock reads
  are exactly the sampling points a DES can support deterministically.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.observer import Observer

__all__ = [
    "SUBSYSTEMS",
    "SUBSYSTEM_MODULES",
    "ClockSampler",
    "SubsystemProfiler",
    "classify_filename",
]

#: the subsystems a breakdown reports, in display order
SUBSYSTEMS = (
    "parser",      # SQL parsing and planning
    "executor",    # statement execution / row loops
    "locks",       # 2PL lock manager
    "buffer",      # buffer pool and pages
    "wal",         # write-ahead log and recovery
    "mvcc",        # version chains, transactions, visibility
    "2pc",         # cross-shard coordination and routing
    "other",       # everything else (workload gen, harness, stdlib)
)

#: module basename (under ``repro/``) -> subsystem
SUBSYSTEM_MODULES: Dict[str, str] = {
    "engine/sql.py": "parser",
    "engine/executor.py": "executor",
    "engine/compiler.py": "executor",
    "engine/database.py": "executor",
    "engine/index.py": "executor",
    "engine/locks.py": "locks",
    "engine/buffer.py": "buffer",
    "engine/page.py": "buffer",
    "engine/wal.py": "wal",
    "engine/walcodec.py": "wal",
    "engine/recovery.py": "wal",
    "engine/table.py": "mvcc",
    "engine/txn.py": "mvcc",
    "shard/coordinator.py": "2pc",
    "shard/router.py": "2pc",
    "shard/fleet.py": "2pc",
}

_SENTINEL = "/repro/"


def classify_filename(filename: str) -> str:
    """Map a code object's filename onto a subsystem name."""
    path = filename.replace("\\", "/")
    index = path.rfind(_SENTINEL)
    if index < 0:
        return "other"
    return SUBSYSTEM_MODULES.get(path[index + len(_SENTINEL):], "other")


class SubsystemProfiler:
    """Deterministic ``sys.setprofile`` attribution of wall time.

    Use as a context manager around the run to profile::

        profiler = SubsystemProfiler()
        with profiler:
            workload()
        profiler.breakdown()   # {"executor": 0.41, "wal": 0.18, ...}

    The shadow stack starts at ``other`` (the harness's own loop); a
    frame entering ``repro/engine/wal.py`` pushes ``wal``, and the
    interval up to the *next* event is charged to whatever was on top
    when it elapsed.  C-function events charge the enclosing Python
    frame's subsystem, so builtins called from the executor bill the
    executor.
    """

    def __init__(self, clock: Callable[[], float] = None):
        import time

        self.clock = clock or time.perf_counter
        self.seconds: Dict[str, float] = {name: 0.0 for name in SUBSYSTEMS}
        self.events = 0
        self.wall_s = 0.0
        self._stack: List[str] = []
        self._last: float = 0.0
        self._start: float = 0.0
        self._classify_cache: Dict[str, str] = {}

    # -- the hook ------------------------------------------------------------

    def _classify(self, frame) -> str:
        filename = frame.f_code.co_filename
        subsystem = self._classify_cache.get(filename)
        if subsystem is None:
            subsystem = classify_filename(filename)
            self._classify_cache[filename] = subsystem
        return subsystem

    def _hook(self, frame, event: str, arg) -> None:
        now = self.clock()
        stack = self._stack
        self.seconds[stack[-1] if stack else "other"] += now - self._last
        self.events += 1
        if event == "call":
            stack.append(self._classify(frame))
        elif event == "return":
            if stack:
                stack.pop()
        elif event == "c_call":
            # bill the builtin to the Python frame that invoked it
            stack.append(self._classify(frame))
        elif event == "c_return" or event == "c_exception":
            if stack:
                stack.pop()
        # Reuse the entry timestamp: the hook's own cost is charged to
        # the subsystem whose events caused it, so attributed seconds
        # sum to the profiled wall time (coverage ~1.0) instead of
        # leaking the tracer overhead into an unattributed gap.
        self._last = now

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "SubsystemProfiler":
        self._start = self._last = self.clock()
        sys.setprofile(self._hook)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        sys.setprofile(None)
        now = self.clock()
        stack = self._stack
        self.seconds[stack[-1] if stack else "other"] += now - self._last
        self.wall_s += now - self._start
        self._stack = []

    # -- reading -------------------------------------------------------------

    def breakdown(self) -> Dict[str, float]:
        """Seconds per subsystem, in :data:`SUBSYSTEMS` order."""
        return {name: self.seconds[name] for name in SUBSYSTEMS}

    def shares(self) -> Dict[str, float]:
        """Fractions of the attributed total (sums to 1 when nonzero)."""
        total = sum(self.seconds.values())
        if total <= 0:
            return {name: 0.0 for name in SUBSYSTEMS}
        return {name: self.seconds[name] / total for name in SUBSYSTEMS}

    @property
    def coverage(self) -> float:
        """Attributed seconds as a fraction of the profiled wall time.

        ~1.0 by construction for the setprofile driver; the acceptance
        gate checks >= 0.9 so a broken hook cannot silently report a
        partial breakdown as complete.
        """
        if self.wall_s <= 0:
            return 0.0
        return min(1.0, sum(self.seconds.values()) / self.wall_s)

    def emit(self, observer: Observer, track: str = "perf") -> None:
        """Publish the breakdown into the shared observer.

        One gauge per subsystem (``perf.subsystem.<name>_s``) plus a
        single instant event carrying the whole breakdown, so the
        ``--trace`` timeline shows the cost split next to the spans it
        explains.
        """
        if not observer.enabled:
            return
        for name, value in self.breakdown().items():
            observer.gauge(f"perf.subsystem.{name}_s", value)
        observer.gauge("perf.subsystem.coverage", self.coverage)
        observer.event(
            "perf.subsystem_breakdown", "perf", track=track,
            attrs={
                "wall_s": round(self.wall_s, 6),
                "coverage": round(self.coverage, 4),
                **{name: round(value, 6)
                   for name, value in self.breakdown().items() if value > 0},
            },
        )


class ClockSampler:
    """Virtual-clock-driven attribution for DES evaluations.

    Wraps a clock callable (``VirtualClock.now`` accessor or an
    ``env.now`` lambda); every read attributes the virtual seconds
    elapsed since the previous read to the subsystem of the caller's
    stack (nearest ``repro/`` frame).  Bind it in place of the raw
    clock -- e.g. ``observer.bind_clock(sampler)`` -- and the
    instrumented sites' own clock reads become the sample points:
    deterministic, zero extra machinery, and in virtual time where
    wall-time profilers are blind.
    """

    def __init__(self, clock: Callable[[], float], max_depth: int = 12):
        self.inner = clock
        self.max_depth = max_depth
        self.seconds: Dict[str, float] = {name: 0.0 for name in SUBSYSTEMS}
        self.samples = 0
        self._last: Optional[float] = None
        self._classify_cache: Dict[str, str] = {}

    def _caller_subsystem(self) -> str:
        frame = sys._getframe(2)  # skip __call__ and _caller_subsystem
        depth = 0
        while frame is not None and depth < self.max_depth:
            filename = frame.f_code.co_filename
            subsystem = self._classify_cache.get(filename)
            if subsystem is None:
                subsystem = classify_filename(filename)
                self._classify_cache[filename] = subsystem
            if subsystem != "other":
                return subsystem
            frame = frame.f_back
            depth += 1
        return "other"

    def __call__(self) -> float:
        now = self.inner()
        if self._last is not None and now > self._last:
            self.seconds[self._caller_subsystem()] += now - self._last
        self._last = now
        self.samples += 1
        return now

    def breakdown(self) -> Dict[str, float]:
        return {name: self.seconds[name] for name in SUBSYSTEMS}

    def shares(self) -> Dict[str, float]:
        total = sum(self.seconds.values())
        if total <= 0:
            return {name: 0.0 for name in SUBSYSTEMS}
        return {name: self.seconds[name] / total for name in SUBSYSTEMS}

"""The ``BENCH_<eval>.json`` trajectory schema.

One file per measured workload, committed to the repository, so the
repo's performance over time is a diffable sequence of small JSON
documents instead of folklore.  The schema is deliberately flat and
small:

* ``workload`` -- what ran: name, parameters, seed, arrival process,
  and a fingerprint (SHA-256 over the canonical parameter encoding).
  Two runs are *comparable* iff their fingerprints match; the
  comparator refuses to diff apples against oranges.
* ``env`` -- where it ran: interpreter, platform, CPU count, and a
  **calibration spin** -- the wall seconds of a fixed pure-Python loop.
  The spin measures the host's single-thread Python speed, so the
  comparator can normalise wall-clock metrics across machines instead
  of gating CI on the runner lottery.
* ``pilot`` -- what stage one decided: observed rate, calibrated
  iteration count, target arrival rate.
* ``metrics`` -- what stage two measured: deterministic counters
  (committed/aborted/fsyncs -- exact, machine-independent), wall/CPU
  seconds, peak RSS, throughput, and the p50/p95/p99/p999 latency
  block (closed-loop service and, for open arrivals, CO-free sojourn).
* ``subsystems`` -- the profiler's cost breakdown with its coverage.

:func:`validate_bench` is the structural gate CI runs on every emitted
file; it returns a list of human-readable problems (empty = valid).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "BENCH_SCHEMA",
    "TrajectoryRecord",
    "bench_filename",
    "calibration_spin",
    "env_fingerprint",
    "validate_bench",
    "workload_fingerprint",
    "write_bench",
]

#: schema identifier carried (and checked) in every BENCH file
BENCH_SCHEMA = "cloudybench.bench/1"

#: iterations of the calibration spin (fixed forever: changing it
#: invalidates every committed baseline's normalisation)
_SPIN_ITERATIONS = 200_000


def calibration_spin(iterations: int = _SPIN_ITERATIONS) -> float:
    """Wall seconds of a fixed pure-Python loop on this host.

    The loop shape (integer arithmetic + a list append per iteration)
    roughly matches the engine's own byte-shuffling, so the ratio of
    two hosts' spins predicts the ratio of their engine throughput well
    enough for a wide regression band.  Best-of-three to shrug off a
    noisy neighbour.
    """
    best = float("inf")
    for _ in range(3):
        sink: List[int] = []
        append = sink.append
        start = time.perf_counter()
        acc = 0
        for i in range(iterations):
            acc = (acc + i * 31) & 0xFFFFFFFF
            if not i & 1023:
                append(acc)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def workload_fingerprint(params: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of the parameters."""
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def env_fingerprint(spin_s: Optional[float] = None) -> Dict[str, Any]:
    """The environment block of a BENCH file."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "spin_s": calibration_spin() if spin_s is None else spin_s,
    }


@dataclass
class TrajectoryRecord:
    """One measured run in trajectory form (what a BENCH file holds)."""

    eval_name: str
    workload: Dict[str, Any]
    env: Dict[str, Any]
    pilot: Dict[str, Any]
    metrics: Dict[str, Any]
    subsystems: Dict[str, Any] = field(default_factory=dict)

    def to_doc(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "eval": self.eval_name,
            "workload": self.workload,
            "env": self.env,
            "pilot": self.pilot,
            "metrics": self.metrics,
            "subsystems": self.subsystems,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "TrajectoryRecord":
        problems = validate_bench(doc)
        if problems:
            raise ValueError(
                "invalid BENCH document: " + "; ".join(problems)
            )
        return cls(
            eval_name=doc["eval"],
            workload=doc["workload"],
            env=doc["env"],
            pilot=doc["pilot"],
            metrics=doc["metrics"],
            subsystems=doc.get("subsystems", {}),
        )

    @property
    def fingerprint(self) -> str:
        return self.workload["fingerprint"]


def bench_filename(eval_name: str) -> str:
    """Canonical file name: ``BENCH_<eval>.json``."""
    safe = eval_name.replace("-", "_")
    return f"BENCH_{safe}.json"


def write_bench(record: TrajectoryRecord, directory: Path | str) -> Path:
    """Write the record under its canonical name; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / bench_filename(record.eval_name)
    with open(path, "w") as handle:
        json.dump(record.to_doc(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

#: (path, type) pairs every document must carry
_REQUIRED: List[tuple] = [
    (("schema",), str),
    (("eval",), str),
    (("workload",), dict),
    (("workload", "name"), str),
    (("workload", "seed"), int),
    (("workload", "arrival"), str),
    (("workload", "params"), dict),
    (("workload", "fingerprint"), str),
    (("env",), dict),
    (("env", "python"), str),
    (("env", "platform"), str),
    (("env", "cpu_count"), int),
    (("env", "spin_s"), (int, float)),
    (("pilot",), dict),
    (("pilot", "txns"), int),
    (("pilot", "rate_tps"), (int, float)),
    (("metrics",), dict),
    (("metrics", "txns"), int),
    (("metrics", "committed"), int),
    (("metrics", "aborted"), int),
    (("metrics", "fsyncs"), int),
    (("metrics", "wall_s"), (int, float)),
    (("metrics", "cpu_s"), (int, float)),
    (("metrics", "peak_rss_kb"), (int, float)),
    (("metrics", "tps"), (int, float)),
    (("metrics", "latency_ms"), dict),
]

#: required percentile keys of every latency block
_PERCENTILES = ("p50", "p95", "p99", "p999")


def _get(doc: Dict[str, Any], path: tuple) -> Any:
    node: Any = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def validate_bench(doc: Any) -> List[str]:
    """Structural validation; returns problems (empty list = valid)."""
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    problems: List[str] = []
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        problems.append(
            f"schema is {schema!r}, expected {BENCH_SCHEMA!r}"
        )
    for path, expected in _REQUIRED:
        value = _get(doc, path)
        dotted = ".".join(path)
        if value is None:
            problems.append(f"missing {dotted}")
        elif not isinstance(value, expected) or isinstance(value, bool):
            problems.append(
                f"{dotted} has type {type(value).__name__}, "
                f"expected {getattr(expected, '__name__', expected)}"
            )
    workload = doc.get("workload")
    if isinstance(workload, dict) and isinstance(
        workload.get("fingerprint"), str
    ):
        params = workload.get("params")
        if isinstance(params, dict):
            expected_fp = workload_fingerprint(params)
            if workload["fingerprint"] != expected_fp:
                problems.append(
                    "workload.fingerprint does not match workload.params"
                )
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        latency = metrics.get("latency_ms")
        if isinstance(latency, dict):
            for pct in _PERCENTILES:
                if not isinstance(latency.get(pct), (int, float)):
                    problems.append(f"metrics.latency_ms.{pct} missing")
            values = [latency.get(p) for p in _PERCENTILES
                      if isinstance(latency.get(p), (int, float))]
            if values != sorted(values):
                problems.append("latency percentiles are not monotone")
        openloop = metrics.get("openloop_latency_ms")
        if openloop is not None and not isinstance(openloop, dict):
            problems.append("metrics.openloop_latency_ms must be an object")
        if isinstance(metrics.get("txns"), int) and metrics["txns"] < 1:
            problems.append("metrics.txns must be >= 1")
    subsystems = doc.get("subsystems")
    if subsystems:
        if not isinstance(subsystems, dict):
            problems.append("subsystems must be an object")
        else:
            for key in ("wall_s", "coverage", "seconds", "shares"):
                if key not in subsystems:
                    problems.append(f"missing subsystems.{key}")
            coverage = subsystems.get("coverage")
            if isinstance(coverage, (int, float)) and not 0 <= coverage <= 1:
                problems.append("subsystems.coverage must be in [0, 1]")
            seconds = subsystems.get("seconds")
            if isinstance(seconds, dict) and any(
                not isinstance(v, (int, float)) or v < 0
                for v in seconds.values()
            ):
                problems.append("subsystems.seconds must be >= 0 numbers")
    return problems

"""Two-stage harness: determinism, calibration, evaluator wiring."""

import pytest

from repro.perf.harness import (
    MAX_TXNS,
    MIN_TXNS,
    TwoStageHarness,
    _quantise,
    peak_rss_kb,
    perf_workload_names,
)
from repro.perf.trajectory import validate_bench


class TestQuantise:
    @pytest.mark.parametrize("value,expected", [
        (0, 1), (1, 1), (2, 2), (3, 2), (5, 4), (6, 4), (7, 8),
        (48, 32), (96, 64), (1000, 1024), (1536, 1024),
    ])
    def test_rounds_to_nearest_power_of_two(self, value, expected):
        assert _quantise(value) == expected

    def test_result_is_always_a_power_of_two(self):
        for value in range(1, 300):
            quantised = _quantise(value)
            assert quantised & (quantised - 1) == 0

    def test_bounds_are_quantisable(self):
        # the clamp range must survive quantisation without escaping it
        assert _quantise(MIN_TXNS) == MIN_TXNS
        assert _quantise(MAX_TXNS) <= MAX_TXNS * 2


class TestConstruction:
    def test_known_workloads(self):
        assert perf_workload_names() == ("oltp", "shard")
        harness = TwoStageHarness()
        for name in perf_workload_names():
            assert harness.workload(name).name == name

    def test_unknown_workload_names_the_catalogue(self):
        with pytest.raises(KeyError, match="oltp"):
            TwoStageHarness().workload("htap")

    @pytest.mark.parametrize("kwargs", [
        {"pilot_txns": 0},
        {"target_s": 0.0},
        {"txns": 0},
        {"rate_factor": 0.0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            TwoStageHarness(**kwargs)

    def test_workload_params_carry_the_fingerprint_inputs(self):
        harness = TwoStageHarness(row_scale=0.004, shard_cross_ratio=0.3)
        assert harness.workload("oltp").params == {
            "n_shards": 1, "cross_ratio": 0.0, "row_scale": 0.004,
        }
        assert harness.workload("shard").params["cross_ratio"] == 0.3

    def test_peak_rss_is_positive_here(self):
        assert peak_rss_kb() > 0


def run_quick(seed=42, **kwargs):
    kwargs.setdefault("txns", 96)
    kwargs.setdefault("pilot_txns", 8)
    kwargs.setdefault("profile", False)
    return TwoStageHarness(seed=seed, **kwargs).run("oltp")


class TestDeterminism:
    def test_counters_are_seed_deterministic(self):
        a, b = run_quick(), run_quick()
        assert (a.committed, a.aborted, a.fsyncs) == (
            b.committed, b.aborted, b.fsyncs
        )
        assert a.txns == b.txns == 96

    def test_pilot_length_does_not_perturb_measured_counters(self):
        # the whole point of the per-stage seed streams: a different
        # pilot (faster host calibration) measures identical statements
        a = run_quick(pilot_txns=4)
        b = run_quick(pilot_txns=24)
        assert (a.committed, a.aborted, a.fsyncs) == (
            b.committed, b.aborted, b.fsyncs
        )

    def test_arrival_process_does_not_perturb_measured_counters(self):
        a = run_quick(arrival="poisson")
        b = run_quick(arrival="burst:500,4")
        c = run_quick(arrival="closed")
        assert (a.committed, a.fsyncs) == (b.committed, b.fsyncs)
        assert (a.committed, a.fsyncs) == (c.committed, c.fsyncs)

    def test_different_seed_changes_the_work(self):
        a = run_quick(seed=42)
        b = run_quick(seed=43)
        # same txn count, but the statement mix differs
        assert a.txns == b.txns
        assert a.to_record().fingerprint != b.to_record().fingerprint


class TestMeasuredRun:
    def test_record_round_trips_through_validation(self):
        run = run_quick()
        doc = run.to_record().to_doc()
        assert validate_bench(doc) == []
        assert doc["metrics"]["txns"] == 96
        assert doc["metrics"]["committed"] + doc["metrics"]["aborted"] == 96
        assert doc["workload"]["arrival"] == "poisson:auto"
        assert doc["pilot"]["txns"] == 8

    def test_open_loop_run_keeps_both_views(self):
        run = run_quick(arrival="poisson")
        assert run.openloop is not None
        assert run.service.mode == "closed"  # queueing-free service view
        doc = run.to_record().to_doc()
        assert doc["metrics"]["openloop_latency_ms"] is not None

    def test_closed_loop_run_has_no_openloop_block(self):
        run = run_quick(arrival="closed")
        assert run.openloop is None
        assert run.to_record().to_doc()["metrics"]["openloop_latency_ms"] is None

    def test_profile_pass_meets_the_coverage_gate(self):
        run = run_quick(profile=True)
        assert run.profile is not None
        assert run.profile.coverage >= 0.9
        subsystems = run.to_record().to_doc()["subsystems"]
        assert subsystems["coverage"] >= 0.9
        assert subsystems["shares"]["executor"] > 0


class TestEvaluatorWiring:
    def test_perf_evaluator_is_registered_with_its_options(self):
        import repro.core.evaluators  # noqa: F401 - populate the registry
        from repro.core.evalapi import get_evaluator

        spec = get_evaluator("perf")
        assert sorted(option.name for option in spec.options) == [
            "arrival", "profile", "txns", "workloads",
        ]

    def test_quick_config_pins_the_iteration_count(self):
        from repro.core.config import BenchConfig

        config = BenchConfig.quick()
        assert config.perf_txns == 256
        assert config.perf_profile is True

"""Open-loop arrivals and CO-free accounting: the arithmetic, pinned.

``replay_open_loop`` is pure virtual-queue bookkeeping, so its answers
are checkable by hand; the schedule generators are pinned for
determinism and long-run rate.  Everything here is wall-clock-free.
"""

import random

import pytest

from repro.perf.openloop import (
    ArrivalSpec,
    arrival_offsets,
    arrival_offsets_window,
    merge_schedules,
    parse_arrival,
    replay_open_loop,
    run_closed_loop,
    run_open_loop,
)


# -- parse_arrival -------------------------------------------------------------


class TestParseArrival:
    def test_closed(self):
        spec = parse_arrival("closed")
        assert spec.kind == "closed" and not spec.is_open
        assert spec.describe() == "closed"

    def test_poisson_auto(self):
        spec = parse_arrival("poisson")
        assert spec.kind == "poisson" and spec.rate is None
        assert spec.describe() == "poisson:auto"

    def test_poisson_with_rate(self):
        spec = parse_arrival("poisson:250")
        assert spec.rate == 250.0
        assert spec.describe() == "poisson:250"

    def test_burst_with_rate_and_size(self):
        spec = parse_arrival("burst:100,4")
        assert spec.kind == "burst" and spec.rate == 100.0 and spec.burst == 4
        assert spec.describe() == "burst:100x4"

    def test_spec_passes_through(self):
        spec = ArrivalSpec(kind="poisson", rate=10.0)
        assert parse_arrival(spec) is spec

    @pytest.mark.parametrize("bad", [
        "open", "closed:5", "poisson:0", "poisson:100,8", "burst:10,-1",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_arrival(bad)


# -- schedules -----------------------------------------------------------------


class TestSchedules:
    def test_poisson_is_seed_deterministic(self):
        spec = ArrivalSpec(kind="poisson")
        a = arrival_offsets(spec, 100.0, 50, random.Random(7))
        b = arrival_offsets(spec, 100.0, 50, random.Random(7))
        c = arrival_offsets(spec, 100.0, 50, random.Random(8))
        assert a == b != c
        assert a == sorted(a) and all(t > 0 for t in a)

    def test_poisson_long_run_rate(self):
        spec = ArrivalSpec(kind="poisson")
        offsets = arrival_offsets(spec, 200.0, 4000, random.Random(3))
        # 4000 arrivals at 200/s should span ~20s; 3-sigma ~ 5%
        assert offsets[-1] == pytest.approx(20.0, rel=0.1)

    def test_burst_groups_share_an_instant(self):
        spec = ArrivalSpec(kind="burst", burst=4)
        offsets = arrival_offsets(spec, 100.0, 10, random.Random(1))
        assert offsets[0:4] == [0.0] * 4
        assert offsets[4:8] == [0.04] * 4     # gap = burst/rate
        assert offsets[8:10] == [0.08] * 2    # trailing partial group

    def test_window_respects_duration(self):
        spec = ArrivalSpec(kind="poisson")
        offsets = arrival_offsets_window(spec, 500.0, 2.0, random.Random(5))
        assert all(0.0 < t < 2.0 for t in offsets)
        assert len(offsets) == pytest.approx(1000, rel=0.15)

    def test_window_burst_counts_whole_groups(self):
        spec = ArrivalSpec(kind="burst", burst=8)
        offsets = arrival_offsets_window(spec, 80.0, 1.0, random.Random(5))
        assert len(offsets) % 8 == 0
        assert all(t < 1.0 for t in offsets)

    def test_closed_has_no_schedule(self):
        with pytest.raises(ValueError):
            arrival_offsets(ArrivalSpec(kind="closed"), 10.0, 5, random.Random(0))

    def test_merge_is_sorted_and_stable(self):
        merged = merge_schedules({
            "b": [0.2, 0.4], "a": [0.2, 0.1],
        })
        assert merged == [(0.1, "a"), (0.2, "a"), (0.2, "b"), (0.4, "b")]


# -- replay accounting ---------------------------------------------------------


class TestReplayAccounting:
    def test_no_backlog_latency_equals_service(self):
        # arrivals far apart: every op starts on schedule
        result = replay_open_loop([0.010, 0.010, 0.010], [0.0, 1.0, 2.0])
        assert result.operations == 3
        assert result.histogram.max == pytest.approx(0.010)
        assert result.histogram.min == pytest.approx(0.010)
        assert result.makespan_s == pytest.approx(2.010)
        assert result.wall_s == pytest.approx(0.030)

    def test_backlog_charges_queueing_delay(self):
        # all three due at t=0; the virtual queue serialises them
        result = replay_open_loop([0.010, 0.010, 0.010], [0.0, 0.0, 0.0])
        # latencies: 10ms, 20ms, 30ms
        assert result.histogram.min == pytest.approx(0.010)
        assert result.histogram.max == pytest.approx(0.030)
        assert result.histogram.sum == pytest.approx(0.060)
        assert result.makespan_s == pytest.approx(0.030)

    def test_one_stall_poisons_the_tail(self):
        # The coordinated-omission shape: one 1s stall, then fast ops
        # that were already due.  Closed-loop would record one slow
        # sample; open-loop charges the backlog to every queued op.
        service = [1.0] + [0.001] * 9
        schedule = [0.01 * i for i in range(10)]
        result = replay_open_loop(service, schedule)
        slow = sum(
            count for bound, count in zip(
                result.histogram.bounds + (float("inf"),),
                result.histogram.bucket_counts,
            ) if bound > 0.5
        )
        assert slow == 10  # every operation saw ~1s, not just the first

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            replay_open_loop([0.1], [0.0, 1.0])

    def test_service_view_strips_queueing(self):
        result = replay_open_loop([0.010, 0.010], [0.0, 0.0])
        view = result.service_view()
        assert view.mode == "closed"
        assert view.histogram.max == pytest.approx(0.010)
        assert view.operations == 2


# -- live drivers (virtual clock) ---------------------------------------------


class FakeClock:
    """Deterministic clock: each read advances by the next tick."""

    def __init__(self, step: float):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestDrivers:
    def test_open_loop_matches_replay(self):
        # run_open_loop with a fake clock (each op costs one step)
        # must agree with replay_open_loop over the same durations
        clock = FakeClock(step=0.005)
        schedule = [0.0, 0.001, 0.002, 0.5]
        live = run_open_loop(lambda: True, schedule, clock=clock)
        replayed = replay_open_loop([0.005] * 4, schedule)
        assert live.histogram.bucket_counts == replayed.histogram.bucket_counts
        assert live.makespan_s == pytest.approx(replayed.makespan_s)

    def test_open_loop_counts_errors(self):
        outcomes = iter([True, False, True])
        result = run_open_loop(
            lambda: next(outcomes), [0.0, 0.0, 0.0], clock=FakeClock(0.001)
        )
        assert result.operations == 3
        assert result.errors == 1

    def test_closed_loop_histogram_is_service(self):
        result = run_closed_loop(lambda: True, 5, clock=FakeClock(0.002))
        assert result.mode == "closed"
        assert result.operations == 5
        assert result.histogram is result.service_histogram

    def test_classed_schedule_gets_per_class_histograms(self):
        schedule = [(0.0, "gold"), (0.0, "bronze"), (0.1, "gold")]
        result = run_open_loop(lambda: True, schedule, clock=FakeClock(0.001))
        assert set(result.by_class) == {"gold", "bronze"}
        assert result.by_class["gold"].count == 2
        assert result.by_class["bronze"].count == 1

"""Subsystem profiler: classification, coverage, emission."""

import pytest

from repro.obs import Observer
from repro.perf.profiler import (
    SUBSYSTEMS,
    ClockSampler,
    SubsystemProfiler,
    classify_filename,
)


class TestClassify:
    @pytest.mark.parametrize("filename,expected", [
        ("/x/src/repro/engine/sql.py", "parser"),
        ("/x/src/repro/engine/executor.py", "executor"),
        ("/x/src/repro/engine/database.py", "executor"),
        ("/x/src/repro/engine/locks.py", "locks"),
        ("/x/src/repro/engine/buffer.py", "buffer"),
        ("/x/src/repro/engine/wal.py", "wal"),
        ("/x/src/repro/engine/recovery.py", "wal"),
        ("/x/src/repro/engine/table.py", "mvcc"),
        ("/x/src/repro/engine/txn.py", "mvcc"),
        ("/x/src/repro/shard/coordinator.py", "2pc"),
        ("/x/src/repro/shard/router.py", "2pc"),
        ("/x/src/repro/core/workload.py", "other"),
        ("/usr/lib/python3.12/random.py", "other"),
    ])
    def test_module_map(self, filename, expected):
        assert classify_filename(filename) == expected

    def test_windows_separators(self):
        assert classify_filename(r"C:\x\repro\engine\wal.py") == "wal"

    def test_nested_repro_uses_last_anchor(self):
        # an installed copy under another repro/ dir: rfind wins
        path = "/home/repro/old/src/repro/engine/locks.py"
        assert classify_filename(path) == "locks"


class TestProfiler:
    def test_coverage_is_complete_on_real_work(self):
        from repro.engine.database import Database
        from repro.engine.types import Column, ColumnType, Schema

        db = Database("prof")
        db.create_table(Schema(
            "KV",
            (
                Column("K", ColumnType.INT, nullable=False),
                Column("V", ColumnType.INT, default=0),
            ),
            primary_key="K",
        ))
        profiler = SubsystemProfiler()
        with profiler:
            for key in range(40):
                db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, key])
            for key in range(40):
                db.execute("SELECT * FROM kv WHERE K = ?", [key])
        assert profiler.events > 0
        # the acceptance gate: attributed seconds cover >= 90% of wall
        assert profiler.coverage >= 0.9
        breakdown = profiler.breakdown()
        assert set(breakdown) == set(SUBSYSTEMS)
        # real engine work cannot be all "other"
        engine_s = sum(
            value for name, value in breakdown.items() if name != "other"
        )
        assert engine_s > 0
        shares = profiler.shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_breakdown_sums_to_wall(self):
        profiler = SubsystemProfiler()
        with profiler:
            total = 0
            for i in range(1000):
                total += i * i
        assert sum(profiler.seconds.values()) == pytest.approx(
            profiler.wall_s, rel=1e-6
        )

    def test_emit_publishes_gauges_and_event(self):
        obs = Observer(clock=lambda: 0.0)
        profiler = SubsystemProfiler()
        with profiler:
            sum(range(100))
        profiler.emit(obs)
        for name in SUBSYSTEMS:
            assert f"perf.subsystem.{name}_s" in obs.metrics.gauges
        assert "perf.subsystem.coverage" in obs.metrics.gauges
        names = [span.name for span in obs.tracer.spans()]
        assert "perf.subsystem_breakdown" in names

    def test_emit_is_a_noop_when_disabled(self):
        from repro.obs import NULL_OBSERVER

        profiler = SubsystemProfiler()
        with profiler:
            pass
        profiler.emit(NULL_OBSERVER)  # must not raise or register


class TestClockSampler:
    def test_attributes_virtual_time_to_caller(self):
        ticks = iter(float(i) for i in range(100))
        sampler = ClockSampler(lambda: next(ticks))
        sampler()          # prime: first read sets the baseline
        sampler()          # +1.0s attributed to this caller (tests: other)
        sampler()
        assert sampler.samples == 3
        assert sum(sampler.seconds.values()) == pytest.approx(2.0)
        assert sampler.seconds["other"] == pytest.approx(2.0)

    def test_time_going_backwards_is_ignored(self):
        values = iter([5.0, 3.0, 4.0])
        sampler = ClockSampler(lambda: next(values))
        assert sampler() == 5.0
        assert sampler() == 3.0  # backwards: nothing attributed
        sampler()
        assert sum(sampler.seconds.values()) == pytest.approx(1.0)

    def test_shares_empty_without_samples(self):
        sampler = ClockSampler(lambda: 0.0)
        assert all(value == 0.0 for value in sampler.shares().values())


class TestCompiledPathCoverage:
    def test_compiled_update_loop_keeps_coverage(self):
        """The compiled-statement fast path collapses per-row work into
        fewer, flatter Python frames; the profiler must still attribute
        >= 90% of its wall time (the BENCH acceptance gate)."""
        from repro.engine.database import Database
        from repro.engine.types import Column, ColumnType, Schema

        db = Database("prof-compiled")
        db.create_table(Schema(
            "KV",
            (
                Column("K", ColumnType.INT, nullable=False),
                Column("V", ColumnType.INT, default=0),
            ),
            primary_key="K",
        ))
        for key in range(50):
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, key])
        # Warm the plan cache so the profiled loop runs entirely on the
        # compiled dispatch (cache hits, no parsing).
        db.execute("UPDATE kv SET V = V + ? WHERE K = ?", [1, 0])
        profiler = SubsystemProfiler()
        with profiler:
            for key in range(50):
                txn = db.begin()
                db.execute("UPDATE kv SET V = V + ? WHERE K = ?", [1, key],
                           txn=txn)
                txn.commit()
        assert profiler.events > 0
        assert profiler.coverage >= 0.9
        breakdown = profiler.breakdown()
        # the write loop must show up in the write-side subsystems, not
        # vanish into "other"
        assert breakdown["wal"] + breakdown["executor"] + breakdown["locks"] > 0

"""BENCH document schema: fingerprints, round-trips, validation."""

import json

import pytest

from repro.perf.trajectory import (
    BENCH_SCHEMA,
    TrajectoryRecord,
    bench_filename,
    env_fingerprint,
    validate_bench,
    workload_fingerprint,
    write_bench,
)


def valid_doc():
    params = {"workload": "oltp", "row_scale": 0.002, "cross_ratio": 0.0}
    return {
        "schema": BENCH_SCHEMA,
        "eval": "oltp",
        "workload": {
            "name": "oltp",
            "seed": 42,
            "arrival": "poisson:auto",
            "params": params,
            "fingerprint": workload_fingerprint(params),
        },
        "env": {
            "python": "3.12.0",
            "implementation": "CPython",
            "platform": "linux",
            "machine": "x86_64",
            "cpu_count": 8,
            "spin_s": 0.02,
        },
        "pilot": {"txns": 48, "rate_tps": 5000.0, "target_rate_tps": 5000.0},
        "metrics": {
            "txns": 256,
            "committed": 256,
            "aborted": 0,
            "fsyncs": 256,
            "wall_s": 0.05,
            "cpu_s": 0.05,
            "peak_rss_kb": 40000,
            "tps": 5120.0,
            "latency_ms": {"p50": 0.1, "p95": 0.2, "p99": 0.3, "p999": 0.4},
        },
        "subsystems": {
            "wall_s": 0.06,
            "coverage": 0.98,
            "seconds": {"executor": 0.03, "wal": 0.02},
            "shares": {"executor": 0.6, "wal": 0.4},
        },
    }


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = workload_fingerprint({"a": 1, "b": [2, 3]})
        b = workload_fingerprint({"b": [2, 3], "a": 1})
        assert a == b and len(a) == 64

    def test_sensitive_to_any_parameter(self):
        base = {"workload": "oltp", "row_scale": 0.002}
        assert workload_fingerprint(base) != workload_fingerprint(
            {**base, "row_scale": 0.003}
        )

    def test_env_fingerprint_shape(self):
        env = env_fingerprint(spin_s=0.01)
        for key in ("python", "platform", "cpu_count", "spin_s"):
            assert key in env
        assert env["spin_s"] == 0.01


class TestValidation:
    def test_valid_document_has_no_problems(self):
        assert validate_bench(valid_doc()) == []

    def test_not_an_object(self):
        assert validate_bench([1, 2]) == ["document is not a JSON object"]

    def test_wrong_schema_tag(self):
        doc = valid_doc()
        doc["schema"] = "something/else"
        assert any("schema" in p for p in validate_bench(doc))

    def test_missing_required_path(self):
        doc = valid_doc()
        del doc["metrics"]["fsyncs"]
        assert "missing metrics.fsyncs" in validate_bench(doc)

    def test_type_mismatch(self):
        doc = valid_doc()
        doc["metrics"]["committed"] = "256"
        assert any("metrics.committed" in p for p in validate_bench(doc))

    def test_bool_does_not_satisfy_int(self):
        doc = valid_doc()
        doc["metrics"]["txns"] = True
        assert any("metrics.txns" in p for p in validate_bench(doc))

    def test_fingerprint_must_match_params(self):
        doc = valid_doc()
        doc["workload"]["params"]["row_scale"] = 0.5
        assert (
            "workload.fingerprint does not match workload.params"
            in validate_bench(doc)
        )

    def test_percentiles_must_be_monotone(self):
        doc = valid_doc()
        doc["metrics"]["latency_ms"]["p99"] = 0.05  # below p50
        assert "latency percentiles are not monotone" in validate_bench(doc)

    def test_coverage_bounds(self):
        doc = valid_doc()
        doc["subsystems"]["coverage"] = 1.4
        assert any("coverage" in p for p in validate_bench(doc))

    def test_negative_subsystem_seconds(self):
        doc = valid_doc()
        doc["subsystems"]["seconds"]["wal"] = -0.1
        assert any("seconds" in p for p in validate_bench(doc))


class TestRoundTrip:
    def test_record_to_doc_to_record(self):
        record = TrajectoryRecord.from_doc(valid_doc())
        again = TrajectoryRecord.from_doc(record.to_doc())
        assert again == record
        assert record.fingerprint == valid_doc()["workload"]["fingerprint"]

    def test_from_doc_rejects_invalid(self):
        doc = valid_doc()
        del doc["pilot"]
        with pytest.raises(ValueError, match="invalid BENCH document"):
            TrajectoryRecord.from_doc(doc)

    def test_write_bench_canonical_name_and_layout(self, tmp_path):
        record = TrajectoryRecord.from_doc(valid_doc())
        path = write_bench(record, tmp_path)
        assert path.name == "BENCH_oltp.json"
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == record.to_doc()
        # sorted keys: a diff-stable layout for committed baselines
        assert text == json.dumps(
            record.to_doc(), indent=2, sort_keys=True
        ) + "\n"

    def test_bench_filename_slugs_dashes(self):
        assert bench_filename("scaleout-real") == "BENCH_scaleout_real.json"

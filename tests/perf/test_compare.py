"""The regression comparator: identity, exact and banded checks."""

import pytest

from repro.core.config import BenchConfig
from repro.perf.compare import (
    DEFAULT_BAND,
    MIN_COVERAGE,
    QUICK_TXNS,
    compare_docs,
    main,
)
from tests.perf.test_trajectory import valid_doc


def docs():
    return valid_doc(), valid_doc()


class TestIdentity:
    def test_identical_docs_pass(self):
        current, baseline = docs()
        report = compare_docs(current, baseline)
        assert report.passed
        assert report.spin_ratio == pytest.approx(1.0)

    def test_invalid_schema_short_circuits(self):
        current, baseline = docs()
        del current["metrics"]["tps"]
        report = compare_docs(current, baseline)
        assert not report.passed
        assert [check.metric for check in report.failures] == ["schema"]
        assert len(report.checks) == 1  # nothing else was attempted

    def test_fingerprint_mismatch_refuses_to_compare(self):
        from repro.perf.trajectory import workload_fingerprint

        current, baseline = docs()
        current["workload"]["params"]["row_scale"] = 0.01
        current["workload"]["fingerprint"] = workload_fingerprint(
            current["workload"]["params"]
        )
        report = compare_docs(current, baseline)
        assert not report.passed
        assert report.failures[0].metric == "workload.fingerprint"
        assert "incomparable" in report.failures[0].note
        # no banded checks were produced for incomparable docs
        assert all(check.kind == "identity" for check in report.checks)


class TestExactCounters:
    def test_counter_drift_fails_outright(self):
        current, baseline = docs()
        current["metrics"]["fsyncs"] += 1
        report = compare_docs(current, baseline)
        assert not report.passed
        assert report.failures[0].metric == "metrics.fsyncs"

    def test_different_txns_skips_exact_counters(self):
        current, baseline = docs()
        current["metrics"]["txns"] = 512
        current["metrics"]["committed"] = 512
        report = compare_docs(current, baseline)
        metrics = [check.metric for check in report.checks]
        assert "metrics.committed" not in metrics
        assert "metrics.counters" in metrics  # the skip is visible
        assert report.passed


class TestBands:
    def test_regression_beyond_band_fails(self):
        current, baseline = docs()
        current["metrics"]["tps"] = baseline["metrics"]["tps"] * (
            1.0 - DEFAULT_BAND
        ) * 0.9
        report = compare_docs(current, baseline)
        assert not report.passed
        assert report.failures[0].metric == "metrics.tps"

    def test_spin_normalisation_forgives_a_slow_host(self):
        # Half the throughput on a host whose spin is twice as slow is
        # not a regression: normalised tps is unchanged.
        current, baseline = docs()
        current["env"]["spin_s"] = baseline["env"]["spin_s"] * 2.0
        current["metrics"]["tps"] = baseline["metrics"]["tps"] / 2.0
        current["metrics"]["latency_ms"] = {
            key: value * 2.0
            for key, value in baseline["metrics"]["latency_ms"].items()
        }
        report = compare_docs(current, baseline)
        assert report.spin_ratio == pytest.approx(2.0)
        assert report.passed

    def test_fast_host_does_not_mask_a_regression(self):
        # Twice-as-fast host, but tps dropped anyway: normalisation
        # scales the measured tps *up*, so the drop must be real to fail.
        current, baseline = docs()
        current["env"]["spin_s"] = baseline["env"]["spin_s"] / 2.0
        current["metrics"]["tps"] = baseline["metrics"]["tps"] / 8.0
        report = compare_docs(current, baseline)
        assert any(
            check.metric == "metrics.tps" and not check.ok
            for check in report.checks
        )

    def test_tail_gets_double_band(self):
        current, baseline = docs()
        # p99 40% over baseline: within band * TAIL_FACTOR (1.0), ok
        current["metrics"]["latency_ms"]["p99"] = (
            baseline["metrics"]["latency_ms"]["p99"] * 1.4
        )
        # keep percentiles monotone
        current["metrics"]["latency_ms"]["p999"] = (
            current["metrics"]["latency_ms"]["p99"] * 2
        )
        assert compare_docs(current, baseline).passed

    def test_tail_gets_absolute_scheduler_slack(self):
        from repro.perf.compare import LATENCY_SLACK_MS

        # a sub-ms baseline tail hit by one scheduler tick: far outside
        # any relative band, but inside the absolute grace
        current, baseline = docs()
        current["metrics"]["latency_ms"]["p99"] = (
            baseline["metrics"]["latency_ms"]["p99"]
            + LATENCY_SLACK_MS["p99"] * 0.9
        )
        current["metrics"]["latency_ms"]["p999"] = (
            current["metrics"]["latency_ms"]["p99"] * 2
        )
        assert compare_docs(current, baseline).passed

    def test_whole_millisecond_tail_regression_still_fails(self):
        current, baseline = docs()
        current["metrics"]["latency_ms"]["p99"] = (
            baseline["metrics"]["latency_ms"]["p99"] + 5.0
        )
        current["metrics"]["latency_ms"]["p999"] = (
            current["metrics"]["latency_ms"]["p99"] * 2
        )
        report = compare_docs(current, baseline)
        assert not report.passed
        assert report.failures[0].metric == "metrics.latency_ms.p99"

    def test_low_profiler_coverage_fails(self):
        current, baseline = docs()
        current["subsystems"]["coverage"] = MIN_COVERAGE - 0.2
        report = compare_docs(current, baseline)
        assert not report.passed
        assert report.failures[0].metric == "subsystems.coverage"

    def test_report_formats_every_check(self):
        current, baseline = docs()
        text = compare_docs(current, baseline).format()
        assert text.splitlines()[0].startswith("oltp: PASS")
        assert "metrics.tps" in text


class TestCliAndConstants:
    def test_quick_txns_matches_quick_config(self):
        # the CI gate's --quick and the registry's quick() must pin the
        # same measured iteration count, or the committed baselines'
        # exact counters would never be comparable with CLI output
        assert BenchConfig.quick().perf_txns == QUICK_TXNS

    def test_files_mode_validates(self, tmp_path, capsys):
        import json

        good = tmp_path / "BENCH_oltp.json"
        good.write_text(json.dumps(valid_doc()))
        assert main([str(good), "--baseline-dir", str(tmp_path / "none")]) == 0
        out = capsys.readouterr().out
        assert "valid (oltp)" in out
        assert "no baseline" in out

    def test_files_mode_rejects_invalid(self, tmp_path, capsys):
        import json

        doc = valid_doc()
        del doc["env"]
        bad = tmp_path / "BENCH_oltp.json"
        bad.write_text(json.dumps(doc))
        assert main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_files_mode_gates_against_baseline(self, tmp_path, capsys):
        import json

        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        (baseline_dir / "BENCH_oltp.json").write_text(json.dumps(valid_doc()))
        regressed = valid_doc()
        regressed["metrics"]["fsyncs"] += 7
        fresh = tmp_path / "BENCH_oltp.json"
        fresh.write_text(json.dumps(regressed))
        assert main([str(fresh), "--baseline-dir", str(baseline_dir)]) == 1
        assert "FAIL" in capsys.readouterr().out

"""TPC-C consistency conditions (clause 3.3.2 of the spec, adapted).

After any mix of transactions the schema must satisfy:

* **C1** -- W_YTD equals the sum of its districts' D_YTD (plus the
  initial load offsets), since Payment adds the same amount to both.
* **C2** -- every district's D_NEXT_O_ID is one greater than the
  largest O_ID of its orders.
* **C3** -- every order has exactly O_OL_CNT order lines.
* **C4** -- every NEW_ORDER row references an existing order.
"""

import pytest

from repro.baselines.tpcc import TpccWorkload, load_tpcc
from repro.engine.database import Database


@pytest.fixture(scope="module")
def exercised():
    db = Database("tpcc-consistency")
    scale = load_tpcc(db, warehouses=1, customer_scale=0.003, item_scale=0.003)
    workload = TpccWorkload(db, scale, seed=99)
    # capture initial offsets before running the mix
    initial_w = db.query("SELECT W_YTD FROM warehouse WHERE W_ID = ?", [1]).scalar()
    initial_d = db.query("SELECT SUM(D_YTD) FROM district").scalar()
    workload.run_many(250)
    return db, scale, initial_w, initial_d


def test_c1_warehouse_ytd_tracks_districts(exercised):
    db, _scale, initial_w, initial_d = exercised
    w_ytd = db.query("SELECT W_YTD FROM warehouse WHERE W_ID = ?", [1]).scalar()
    d_ytd = db.query("SELECT SUM(D_YTD) FROM district").scalar()
    # Payment adds the same amount to both, so the deltas are equal.
    assert w_ytd - initial_w == pytest.approx(d_ytd - initial_d, abs=0.01)


def test_c2_next_order_id_is_max_plus_one(exercised):
    db, scale, _w, _d = exercised
    for d_id in range(1, scale.districts + 1):
        next_o_id = db.query(
            "SELECT D_NEXT_O_ID FROM district WHERE D_W_ID = ? AND D_ID = ?",
            [1, d_id],
        ).scalar()
        max_o_id = db.query(
            "SELECT MAX(O_ID) FROM orders WHERE O_W_ID = ? AND O_D_ID = ?",
            [1, d_id],
        ).scalar()
        assert next_o_id == (max_o_id or 0) + 1


def test_c3_order_line_counts(exercised):
    db, scale, _w, _d = exercised
    orders = db.query(
        "SELECT O_ID, O_D_ID, O_OL_CNT FROM orders WHERE O_W_ID = ?", [1]
    ).rows
    # sample a bounded number to keep the check fast
    for o_id, d_id, ol_cnt in orders[-80:]:
        lines = db.query(
            "SELECT COUNT(*) FROM order_line"
            " WHERE OL_W_ID = ? AND OL_D_ID = ? AND OL_O_ID = ?",
            [1, d_id, o_id],
        ).scalar()
        assert lines == ol_cnt


def test_c4_new_orders_reference_existing_orders(exercised):
    db, _scale, _w, _d = exercised
    pending = db.query(
        "SELECT NO_O_ID, NO_D_ID FROM new_order WHERE NO_W_ID = ?", [1]
    ).rows
    for no_o_id, d_id in pending:
        order = db.query(
            "SELECT O_ID FROM orders WHERE O_W_ID = ? AND O_D_ID = ? AND O_ID = ?",
            [1, d_id, no_o_id],
        ).first()
        assert order is not None


def test_invariants_survive_crash_recovery(exercised):
    db, _scale, _w, _d = exercised
    before = db.content_hash()
    db.checkpoint()
    db.crash()
    db.recover()
    assert db.content_hash() == before

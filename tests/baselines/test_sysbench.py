"""Tests for the SysBench baseline."""

import pytest

from repro.baselines.sysbench import (
    DATASET_BYTES,
    SysbenchWorkload,
    load_sysbench,
    sysbench_mix,
)
from repro.engine.database import Database


@pytest.fixture
def loaded():
    db = Database("sb")
    load_sysbench(db, tables=2, rows=100)
    return db


def test_load_creates_tables_and_rows(loaded):
    assert loaded.table("SBTEST1").row_count == 100
    assert loaded.table("SBTEST2").row_count == 100
    assert "sbtest1_k" in loaded.table("SBTEST1").secondary_indexes


def test_point_select_workload(loaded):
    workload = SysbenchWorkload(loaded, "oltp_point_select", tables=2)
    workload.run_many(50)
    assert workload.executed == 50


def test_write_only_updates_k(loaded):
    workload = SysbenchWorkload(loaded, "oltp_write_only", tables=2, seed=1)
    before = loaded.query("SELECT SUM(K) FROM sbtest1").scalar() + \
        loaded.query("SELECT SUM(K) FROM sbtest2").scalar()
    workload.run_many(30)
    after = loaded.query("SELECT SUM(K) FROM sbtest1").scalar() + \
        loaded.query("SELECT SUM(K) FROM sbtest2").scalar()
    assert after == before + 30  # each update adds exactly 1


def test_read_write_preserves_row_count(loaded):
    workload = SysbenchWorkload(loaded, "oltp_read_write", tables=2, seed=2)
    before = loaded.table("SBTEST1").row_count + loaded.table("SBTEST2").row_count
    workload.run_many(20)
    after = loaded.table("SBTEST1").row_count + loaded.table("SBTEST2").row_count
    assert after == before  # delete+reinsert pairs balance out


def test_unknown_kind_rejected(loaded):
    with pytest.raises(ValueError):
        SysbenchWorkload(loaded, "oltp_magic")
    with pytest.raises(ValueError):
        sysbench_mix("oltp_magic")


def test_mix_working_set_scales():
    base = sysbench_mix("oltp_read_write")
    assert base.working_set_bytes == pytest.approx(DATASET_BYTES)
    half = sysbench_mix("oltp_read_write", rows=150_000)
    assert half.working_set_bytes == pytest.approx(DATASET_BYTES / 2)


def test_mix_shapes():
    assert sysbench_mix("oltp_point_select").write_fraction == 0.0
    assert sysbench_mix("oltp_write_only").write_fraction == 1.0
    rw = sysbench_mix("oltp_read_write")
    assert rw.statements > 10  # the classic 14-statement transaction


def test_deterministic(loaded):
    db2 = Database("sb2")
    load_sysbench(db2, tables=2, rows=100)
    w1 = SysbenchWorkload(loaded, "oltp_write_only", tables=2, seed=9)
    w2 = SysbenchWorkload(db2, "oltp_write_only", tables=2, seed=9)
    w1.run_many(25)
    w2.run_many(25)
    assert (loaded.query("SELECT SUM(K) FROM sbtest1").scalar()
            == db2.query("SELECT SUM(K) FROM sbtest1").scalar())

"""Tests for the YCSB baseline."""

import random

import pytest

from repro.baselines.ycsb import (
    WORKLOADS,
    YcsbWorkload,
    ZipfianGenerator,
    load_ycsb,
    ycsb_mix,
)
from repro.engine.database import Database


@pytest.fixture
def loaded():
    db = Database("ycsb")
    load_ycsb(db, records=200)
    return db


class TestZipfian:
    def test_range(self):
        gen = ZipfianGenerator(100, rng=random.Random(0))
        draws = [gen.next() for _ in range(2000)]
        assert min(draws) >= 1
        assert max(draws) <= 100

    def test_skew_favours_small_keys(self):
        gen = ZipfianGenerator(1000, rng=random.Random(0))
        draws = [gen.next() for _ in range(5000)]
        top_decile = sum(1 for draw in draws if draw <= 100)
        assert top_decile / len(draws) > 0.5  # zipf 0.99: heavy head

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)


class TestWorkloads:
    def test_core_workloads_defined(self):
        assert set(WORKLOADS) == set("ABCDEF")
        assert WORKLOADS["C"] == {"read": 1.0}
        assert WORKLOADS["E"]["scan"] == 0.95

    @pytest.mark.parametrize("workload", list("ABCDEF"))
    def test_each_workload_runs(self, loaded, workload):
        driver = YcsbWorkload(loaded.clone_full(f"copy{workload}"),
                              workload, records=200)
        driver.run_many(60)
        assert sum(driver.executed.values()) == 60

    def test_workload_a_mixes_reads_and_updates(self, loaded):
        driver = YcsbWorkload(loaded, "A", records=200, seed=3)
        driver.run_many(200)
        assert driver.executed["read"] > 50
        assert driver.executed["update"] > 50

    def test_workload_d_inserts_grow_table(self, loaded):
        driver = YcsbWorkload(loaded, "D", records=200, seed=4)
        before = loaded.table("USERTABLE").row_count
        driver.run_many(100)
        assert loaded.table("USERTABLE").row_count == before + driver.executed["insert"]

    def test_updates_change_fields(self, loaded):
        driver = YcsbWorkload(loaded, "A", records=200, seed=5)
        driver.run_many(100)
        changed = loaded.query(
            "SELECT COUNT(*) FROM usertable WHERE FIELD0 >= ?", ["rmw-"]
        )
        # at least some updates/rmws landed (prefix match via >=)
        assert driver.executed["update"] > 0

    def test_unknown_workload_rejected(self, loaded):
        with pytest.raises(ValueError):
            YcsbWorkload(loaded, "Z")
        with pytest.raises(ValueError):
            ycsb_mix("Z")


class TestMix:
    def test_mix_hot_set(self):
        mix = ycsb_mix("A", records=1000)
        assert mix.hot_fraction > 0
        assert mix.hot_set_bytes < mix.working_set_bytes

    def test_workload_c_is_read_only(self):
        assert ycsb_mix("C").write_fraction == 0.0

    def test_workload_a_half_writes(self):
        assert ycsb_mix("A").write_fraction == pytest.approx(0.5)

    def test_latest_distribution_for_d(self):
        assert ycsb_mix("D").hot_fraction > ycsb_mix("A").hot_fraction

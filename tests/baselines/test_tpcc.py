"""Tests for the TPC-C baseline."""

import pytest

from repro.baselines.tpcc import (
    DISTRICTS_PER_WAREHOUSE,
    STANDARD_MIX,
    TPCC_CLASSES,
    TpccWorkload,
    load_tpcc,
    tpcc_mix,
)
from repro.engine.database import Database


@pytest.fixture(scope="module")
def loaded():
    db = Database("tpcc")
    scale = load_tpcc(db, warehouses=1, customer_scale=0.003, item_scale=0.003)
    return db, scale


def test_schema_and_scaling(loaded):
    db, scale = loaded
    assert db.table("WAREHOUSE").row_count == 1
    assert db.table("DISTRICT").row_count == DISTRICTS_PER_WAREHOUSE
    assert db.table("CUSTOMER").row_count == scale.customers_per_district * 10
    assert db.table("ITEM").row_count == scale.items
    assert db.table("STOCK").row_count == scale.items


def test_new_order_inserts_order_and_lines(loaded):
    db, scale = loaded
    workload = TpccWorkload(db, scale, seed=1)
    orders_before = db.table("ORDERS").row_count
    lines_before = db.table("ORDER_LINE").row_count
    assert workload.new_order()
    assert db.table("ORDERS").row_count == orders_before + 1
    assert db.table("ORDER_LINE").row_count - lines_before >= 5


def test_new_order_advances_district_counter(loaded):
    db, scale = loaded
    workload = TpccWorkload(db, scale, seed=2)
    before = db.query(
        "SELECT SUM(D_NEXT_O_ID) FROM district"
    ).scalar()
    succeeded = sum(1 for _ in range(5) if workload.new_order())
    after = db.query("SELECT SUM(D_NEXT_O_ID) FROM district").scalar()
    # rolled-back new_orders also restore D_NEXT_O_ID
    assert after == before + succeeded


def test_payment_moves_money(loaded):
    db, scale = loaded
    workload = TpccWorkload(db, scale, seed=3)
    ytd_before = db.query("SELECT W_YTD FROM warehouse WHERE W_ID = ?", [1]).scalar()
    hist_before = db.table("HISTORY").row_count
    assert workload.payment()
    assert db.query("SELECT W_YTD FROM warehouse WHERE W_ID = ?", [1]).scalar() > ytd_before
    assert db.table("HISTORY").row_count == hist_before + 1


def test_order_status_returns_latest_order(loaded):
    db, scale = loaded
    workload = TpccWorkload(db, scale, seed=4)
    latest = workload.order_status()
    assert latest is not None


def test_delivery_consumes_new_orders(loaded):
    db, scale = loaded
    workload = TpccWorkload(db, scale, seed=5)
    # make sure there is something to deliver
    for _ in range(3):
        workload.new_order()
    pending_before = db.table("NEW_ORDER").row_count
    delivered = workload.delivery()
    assert delivered > 0
    assert db.table("NEW_ORDER").row_count == pending_before - delivered


def test_stock_level_counts(loaded):
    db, scale = loaded
    workload = TpccWorkload(db, scale, seed=6)
    workload.new_order()
    low = workload.stock_level()
    assert low >= 0


def test_mixed_run_matches_standard_weights(loaded):
    db, scale = loaded
    workload = TpccWorkload(db, scale, seed=7)
    workload.run_many(200)
    counts = workload.executed
    assert counts["new_order"] > counts["order_status"]
    assert counts["payment"] > counts["delivery"]
    # every attempt is counted once; intentional rollbacks are tracked
    # separately and stay a small minority
    assert sum(counts.values()) == 200
    assert workload.aborted <= counts["new_order"] * 0.1


def test_one_percent_rollback_rate():
    db = Database("tpcc-abort")
    scale = load_tpcc(db, warehouses=1, customer_scale=0.002, item_scale=0.002)
    workload = TpccWorkload(db, scale, seed=8)
    for _ in range(300):
        workload.new_order()
    assert 0 < workload.aborted < 20  # ~1% of 300, with slack


def test_mix_model_constants():
    mix = tpcc_mix()
    assert set(STANDARD_MIX.values()) == {45, 43, 4, 4, 4}
    assert mix.write_fraction > 0.8  # new_order+payment+delivery write
    assert TPCC_CLASSES["stock_level"].page_writes == 0
    assert mix.hot_fraction > 0      # warehouse-local traffic is hot
    bigger = tpcc_mix(warehouses=10)
    assert bigger.working_set_bytes == pytest.approx(10 * mix.working_set_bytes)

"""The scrubber: proactive CRC verification with repair.

Three repair sources, one escalation: an archive primary repairs from
its mirror, a live-WAL record repairs from the archive's verified
copy, and a record with no intact copy anywhere is reported
unrepairable -- the early warning that replay would refuse the range.
"""

import dataclasses

from repro.dr.archive import FleetArchiver, WalArchiver
from repro.dr.scrub import scrub_archive, scrub_fleet, scrub_wal
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema
from repro.ha.workload import PairWorkload, build_pairs_fleet
from repro.sim.rng import derive_seed


def fresh_db(name="scrub"):
    db = Database(name, buffer_size_bytes=1 << 22)
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def archived_db(name="scrub"):
    db = fresh_db(name)
    archiver = WalArchiver(db)
    for k in (1, 2, 3):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
    return db, archiver


class TestScrubArchive:
    def test_repairs_a_flipped_bit_from_the_mirror(self):
        db, archiver = archived_db()
        archive = archiver.archive
        lsn = archive.first_lsn + 2
        archive.flip_bit(lsn, bit=4)
        report = scrub_archive(archive)
        assert report.archive_records == len(archive)
        assert report.archive_repaired == 1
        assert report.clean
        assert archive.record(lsn).is_intact

    def test_clean_archive_scrubs_clean(self):
        db, archiver = archived_db()
        report = scrub_archive(archiver.archive)
        assert report.repaired == 0
        assert report.clean
        assert report.scanned == len(archiver.archive)

    def test_both_copies_rotten_is_unrepairable(self):
        db, archiver = archived_db()
        archive = archiver.archive
        lsn = archive.first_lsn + 1
        archive.flip_bit(lsn, bit=4)
        mirror = archive._mirror[lsn]
        archive._mirror[lsn] = dataclasses.replace(mirror, crc=mirror.crc ^ 1)
        report = scrub_archive(archive)
        assert report.repaired == 0
        assert not report.clean
        assert report.unrepairable == [(db.name, lsn)]


class TestScrubWal:
    def test_repairs_a_live_record_from_the_archive(self):
        db, archiver = archived_db()
        lsn = db.wal.last_lsn - 1
        db.wal.flip_bit(lsn)
        assert not db.wal.record_at(lsn).is_intact
        report = scrub_wal(db, archiver.archive)
        assert report.wal_repaired == 1
        assert report.clean
        assert db.wal.record_at(lsn).is_intact

    def test_no_archive_copy_is_unrepairable(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        lsn = db.wal.last_lsn
        db.wal.flip_bit(lsn)
        report = scrub_wal(db, archive=None)
        assert report.wal_repaired == 0
        assert report.unrepairable == [(db.name, lsn)]


class TestScrubFleet:
    def test_one_pass_covers_every_archive_and_live_log(self):
        fleet, pairs = build_pairs_fleet(n_shards=2, n_pairs=2, name="scrubf")
        archiver = FleetArchiver(fleet, mode="sync")
        workload = PairWorkload(
            fleet, pairs, seed=derive_seed(3, "scrub.fleet")
        )
        for _ in range(3):
            assert workload.transfer()
        archiver.catch_up()
        # one rotten record in each layer, different shards
        archiver.archives[0].flip_bit(archiver.archives[0].last_lsn, bit=2)
        wal = fleet.shards[1].wal
        wal.flip_bit(wal.last_lsn)
        report = scrub_fleet(fleet, archiver)
        assert report.archive_repaired == 1
        assert report.wal_repaired == 1
        assert report.clean
        assert report.scanned == report.archive_records + report.wal_records
        # the scrubbed rig restores cleanly end to end
        from repro.dr.backup import BackupJob
        from repro.dr.restore import RestoreJob

        manifest = BackupJob(fleet, archiver, name="scrubf").run()
        archiver.catch_up()
        restored, restore_report = RestoreJob(
            manifest, archiver, name="scrubf"
        ).run()
        assert restore_report.rows_loaded == 4

"""Regression: repr-canonicalization of the record CRC.

Before the binary codec, the CRC was computed over ``repr()`` of the
record's fields, so a record rebuilt from archive ingest or a wire
frame with a list where a tuple was written (or ``1.0`` where ``1``
was logged) failed verification: ``is_intact`` went false on healthy
data, archive re-offers triggered spurious timeline rewinds, and the
scrubber "repaired" records that were never corrupt.  The canonical
binary CRC folds those value-identical forms together; these tests pin
that behaviour end to end.
"""

import dataclasses

from repro.dr.archive import ShardArchive, WalArchiver
from repro.dr.scrub import scrub_archive, scrub_wal
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema


def fresh_db(name="codec-reg"):
    db = Database(name, buffer_size_bytes=1 << 22)
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def rebuilt(record):
    """The shapes archive ingest / wire transport can hand back: tuples
    decayed to lists, ints widened to floats."""
    def decay(image):
        if image is None:
            return None
        return [float(c) if isinstance(c, int) and not isinstance(c, bool) else c
                for c in image]
    return dataclasses.replace(
        record,
        key=float(record.key) if isinstance(record.key, int) else record.key,
        before=decay(record.before),
        after=decay(record.after),
    )


class TestRebuiltRecordsStayIntact:
    def test_list_and_float_rebuild_passes_crc(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [20, 1])
        for record in db.wal.records_from(db.wal.first_retained_lsn):
            copy = rebuilt(record)
            assert copy.is_intact, (
                f"LSN {record.lsn}: value-identical rebuild failed CRC"
            )

    def test_archive_reoffer_of_rebuilt_record_is_duplicate_not_rewind(self):
        db = fresh_db()
        archive = ShardArchive(db.name)
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
        for record in db.wal.records_from(db.wal.first_retained_lsn):
            archive.ingest(record)
        top = db.wal.record_at(db.wal.last_lsn)
        # A re-offer that round-tripped through a frame must be seen as
        # the same record -- a rewind here would drop archived history.
        assert not archive.ingest(rebuilt(top))
        assert archive.duplicates == 1
        assert archive.rewinds == 0

    def test_true_divergence_still_rewinds(self):
        db = fresh_db()
        archive = ShardArchive(db.name)
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
        for record in db.wal.records_from(db.wal.first_retained_lsn):
            archive.ingest(record)
        top = db.wal.record_at(db.wal.last_lsn)
        diverged = dataclasses.replace(top, txn_id=top.txn_id + 1)
        diverged = dataclasses.replace(diverged, crc=diverged.expected_crc())
        assert archive.ingest(diverged)
        assert archive.rewinds == 1


class TestScrubberOnHealthyRecords:
    def test_scrub_repairs_nothing_on_a_healthy_archive(self):
        db = fresh_db()
        archiver = WalArchiver(db)
        for k in (1, 2, 3):
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [99, 2])
        report = scrub_archive(archiver.archive)
        assert report.repaired == 0
        assert report.unrepairable == []
        assert report.clean

    def test_scrub_wal_accepts_rebuilt_records(self):
        """A WAL whose records round-tripped through value-decaying
        transport (the replication path) must scrub clean."""
        db = fresh_db()
        archiver = WalArchiver(db)
        for k in (1, 2):
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
        db.wal._records[:] = [rebuilt(r) for r in db.wal._records]
        report = scrub_wal(db, archiver.archive)
        assert report.repaired == 0
        assert report.unrepairable == []

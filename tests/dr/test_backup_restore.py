"""Online backup + point-in-time restore: the round trip, checked.

The contract under test: a backup taken under live load plus the
archived WAL reproduces the exact pre-disaster committed state (restore
to the archive end), or any earlier consistent point (restore to the
barrier); the barrier refuses cuts that would tear a transaction; and
in-doubt 2PC branches inside the replay range resolve by the fleet's
decision-union rule.
"""

import pytest

from repro.dr.archive import FleetArchiver
from repro.dr.backup import BackupJob
from repro.dr.restore import RestoreJob
from repro.engine.errors import EngineError
from repro.ha.history import HistoryChecker
from repro.ha.workload import SELECT_STAMP, PairWorkload, build_pairs_fleet
from repro.sim.rng import derive_seed

N_PAIRS = 3


def dr_rig(name, seed=11):
    fleet, pairs = build_pairs_fleet(n_shards=2, n_pairs=N_PAIRS, name=name)
    archiver = FleetArchiver(fleet, mode="sync")
    workload = PairWorkload(fleet, pairs, seed=derive_seed(seed, name))
    return fleet, pairs, archiver, workload


def stamp(fleet, row_id):
    return fleet.execute(SELECT_STAMP, [row_id]).rows[0][0]


class TestRoundTrip:
    def test_restore_reproduces_the_pre_disaster_state(self):
        fleet, pairs, archiver, workload = dr_rig("drrt")
        for _ in range(4):
            assert workload.transfer()
        manifest = BackupJob(fleet, archiver, name="drrt").run()
        for _ in range(3):
            assert workload.transfer()
        # the disaster: seal the archive, abandon the fleet
        archiver.catch_up()
        target = [archive.last_lsn for archive in archiver.archives]
        restored, report = RestoreJob(manifest, archiver, name="drrt").run(
            target=target
        )
        assert report.rows_loaded == 2 * N_PAIRS
        assert report.records_replayed > 0
        # byte-for-byte: every pair holds the exact pre-disaster stamp
        for row_a, row_b in pairs:
            assert stamp(restored, row_a) == stamp(fleet, row_a)
            assert stamp(restored, row_b) == stamp(fleet, row_b)
        # and the restored fleet serves checked traffic on one timeline
        post = PairWorkload(
            restored, pairs, history=workload.history,
            seed=derive_seed(11, "drrt.post"),
        )
        post._versions.update(workload._versions)
        for _ in range(3):
            assert post.transfer()
            assert post.read() is not None
        check = HistoryChecker().check(post.history, post.final_stamps())
        assert not check.violations

    def test_restore_to_the_barrier_is_the_image_alone(self):
        """PITR to the earliest legal target: exactly the as-of-backup
        stamps, none of the later traffic."""
        fleet, pairs, archiver, workload = dr_rig("drpitr")
        for _ in range(4):
            assert workload.transfer()
        manifest = BackupJob(fleet, archiver, name="drpitr").run()
        as_of_backup = {
            row: stamp(fleet, row) for pair in pairs for row in pair
        }
        for _ in range(4):
            assert workload.transfer()
        restored, report = RestoreJob(manifest, archiver, name="drpitr").run(
            target=manifest.barrier
        )
        assert report.records_replayed == 0
        for row, expected in as_of_backup.items():
            assert stamp(restored, row) == expected

    def test_target_below_the_barrier_is_refused(self):
        fleet, pairs, archiver, workload = dr_rig("drlow")
        workload.transfer()
        manifest = BackupJob(fleet, archiver, name="drlow").run()
        too_low = [lsn - 1 for lsn in manifest.barrier]
        with pytest.raises(EngineError, match="precedes the backup barrier"):
            RestoreJob(manifest, archiver, name="drlow").run(target=too_low)


class TestOnlineness:
    def test_transfer_during_the_image_lands_above_the_barrier(self):
        """The backup never blocks writers: a transfer committed while
        the images are being cut is invisible to the image (it is above
        the pin's snapshot) but fully present in the replay range."""
        fleet, pairs, archiver, workload = dr_rig("dronl")
        for _ in range(3):
            assert workload.transfer()
        backup = BackupJob(fleet, archiver, name="dronl")
        concurrent = []
        backup.arm_action(
            "after_pin", lambda: concurrent.append(workload.transfer())
        )
        manifest = backup.run()
        assert concurrent == [True]
        assert manifest.total_rows == 2 * N_PAIRS
        archiver.catch_up()
        end = [archive.last_lsn for archive in archiver.archives]
        # to the barrier: the concurrent transfer is not there
        at_barrier, _ = RestoreJob(manifest, archiver, name="dronl-b").run(
            target=manifest.barrier
        )
        # to the end: it is
        at_end, _ = RestoreJob(manifest, archiver, name="dronl-e").run(
            target=end
        )
        live = {row: stamp(fleet, row) for pair in pairs for row in pair}
        assert {row: stamp(at_end, row) for row in live} == live
        assert any(
            stamp(at_barrier, row) != live[row] for row in live
        )

    def test_barrier_refuses_an_open_transaction_with_logged_work(self):
        fleet, pairs, archiver, workload = dr_rig("drbar")
        assert workload.transfer()
        shard = fleet.shards[0]
        txn = shard.begin()
        shard.execute(
            "INSERT INTO PAIRS (P_ID, P_STAMP) VALUES (?, ?)",
            [9901, 1], txn=txn,
        )
        backup = BackupJob(
            fleet, archiver, name="drbar", max_barrier_attempts=2
        )
        with pytest.raises(EngineError, match="straddle"):
            backup.run()
        # settle it and the cut goes through
        txn.commit()
        manifest = backup.run()
        assert manifest.total_rows == 2 * N_PAIRS + 1


class TestInDoubtResolution:
    def _prepare_pair(self, fleet, pairs, gtid, value):
        """Prepare (but do not decide) one stamp write on both shards."""
        (row_a, row_b) = pairs[0]
        branches = []
        for shard_row in (row_a, row_b):
            shard = fleet.shards[fleet.router.shard_for("PAIRS", shard_row)]
            txn = shard.begin()
            shard.execute(
                "UPDATE PAIRS SET P_STAMP = ? WHERE P_ID = ?",
                [value, shard_row], txn=txn,
            )
            shard.prepare_commit(txn, gtid=gtid)
            branches.append((shard, txn))
        return (row_a, row_b), branches

    def test_prepared_branch_with_a_decision_commits_at_restore(self):
        """A PITR cut may strand PREPARE on one shard and DECISION on
        another; the union rule commits the branch anyway."""
        fleet, pairs, archiver, workload = dr_rig("drdoubt-c")
        for _ in range(2):
            assert workload.transfer()
        manifest = BackupJob(fleet, archiver, name="drdoubt-c").run()
        (row_a, row_b), branches = self._prepare_pair(
            fleet, pairs, gtid="g-dr-commit", value=777
        )
        # the coordinator decided on exactly one shard, then the
        # disaster struck before the second-phase commit
        shard, txn = branches[0]
        shard.log_decision(txn.txn_id, "g-dr-commit")
        archiver.catch_up()
        target = [archive.last_lsn for archive in archiver.archives]
        restored, report = RestoreJob(
            manifest, archiver, name="drdoubt-c"
        ).run(target=target)
        assert report.resolved_commit >= 1
        assert stamp(restored, row_a) == 777
        assert stamp(restored, row_b) == 777

    def test_prepared_branch_without_a_decision_aborts_at_restore(self):
        fleet, pairs, archiver, workload = dr_rig("drdoubt-a")
        for _ in range(2):
            assert workload.transfer()
        manifest = BackupJob(fleet, archiver, name="drdoubt-a").run()
        (row_a, row_b) = pairs[0]
        before = {row_a: stamp(fleet, row_a), row_b: stamp(fleet, row_b)}
        _, _branches = self._prepare_pair(
            fleet, pairs, gtid="g-dr-abort", value=888
        )
        archiver.catch_up()
        target = [archive.last_lsn for archive in archiver.archives]
        restored, report = RestoreJob(
            manifest, archiver, name="drdoubt-a"
        ).run(target=target)
        assert report.resolved_abort >= 2
        assert report.resolved_commit == 0
        assert stamp(restored, row_a) == before[row_a]
        assert stamp(restored, row_b) == before[row_b]


class TestRestoreShapes:
    def test_ha_restore_rebootstraps_standbys(self):
        fleet, pairs, archiver, workload = dr_rig("drha")
        for _ in range(3):
            assert workload.transfer()
        manifest = BackupJob(fleet, archiver, name="drha").run()
        archiver.catch_up()
        restored, report = RestoreJob(manifest, archiver, name="drha").run(
            ha=True
        )
        assert report.standbys == 2
        assert report.wall_s > 0
        assert report.virtual_s > 0

    def test_mismatched_archive_count_is_refused(self):
        fleet, pairs, archiver, workload = dr_rig("drmis")
        workload.transfer()
        manifest = BackupJob(fleet, archiver, name="drmis").run()
        with pytest.raises(EngineError, match="archives"):
            RestoreJob(manifest, archiver.archives[:1], name="drmis")

    def test_unknown_phase_names_are_rejected(self):
        fleet, pairs, archiver, workload = dr_rig("drph")
        backup = BackupJob(fleet, archiver, name="drph")
        with pytest.raises(ValueError, match="unknown backup phase"):
            backup.arm_crash("mid_flight")
        workload.transfer()
        manifest = backup.run()
        restore = RestoreJob(manifest, archiver, name="drph")
        with pytest.raises(ValueError, match="unknown restore phase"):
            restore.arm_crash("mid_flight")

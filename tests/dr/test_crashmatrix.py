"""The backup/restore crash-point sweep, pinned.

CI runs the quick (coordinator-only) matrix; the full 16-cell sweep is
the ``python -m repro.dr.crashmatrix`` smoke job.  What the tests pin:
every cell passes with zero history violations, the fault actually
fires, and the fingerprint is identical across runs at a fixed seed --
the determinism contract regressions show up against.
"""

import pytest

from repro.dr.crashmatrix import CELLS, TARGETS, run_cell, run_matrix


class TestSingleCells:
    def test_backup_coordinator_crash_cell(self):
        cell = run_cell("backup", "after_pin", "coordinator")
        assert cell.fault_fired
        assert cell.retried
        assert cell.passed

    def test_backup_shard_kill_cell(self):
        cell = run_cell("backup", "after_image", "shard")
        assert cell.fault_fired
        assert cell.passed

    def test_restore_coordinator_crash_cell(self):
        cell = run_cell("restore", "after_replay", "coordinator")
        assert cell.fault_fired
        assert cell.retried
        assert cell.passed
        assert cell.rows_restored > 0
        assert cell.records_replayed > 0

    def test_restore_shard_kill_cell(self):
        cell = run_cell("restore", "after_load", "shard")
        assert cell.fault_fired
        assert cell.passed

    def test_unknown_cell_and_target_rejected(self):
        with pytest.raises(ValueError, match="unknown cell"):
            run_cell("backup", "mid_flight", "coordinator")
        with pytest.raises(ValueError, match="unknown target"):
            run_cell("backup", "after_pin", "operator")


class TestQuickMatrix:
    def test_quick_matrix_passes_and_is_deterministic(self):
        first = run_matrix(seed=7, quick=True)
        assert len(first.cells) == len(CELLS)
        assert first.passed, "\n".join(first.describe())
        assert not first.violations
        second = run_matrix(seed=7, quick=True)
        assert first.fingerprint() == second.fingerprint()

    def test_cells_cover_every_phase_boundary(self):
        result = run_matrix(seed=7, quick=True)
        swept = {(cell.stage, cell.phase) for cell in result.cells}
        assert swept == set(CELLS)
        assert {cell.target for cell in result.cells} == {"coordinator"}
        assert set(TARGETS) == {"coordinator", "shard"}

"""The ``--eval dr`` evaluator: RPO/RTO semantics, both archive modes.

Sync archiving must measure RPO zero and a perfect DR score with the
mid-run ``ARCHIVE_CORRUPT`` flip repaired by the scrubber; lagged
archiving must lose exactly its buffered tail, price it as a non-zero
RPO, and keep the time-travel anomalies the RPO explains out of the
violation count.  The BENCH record built from a run must validate
against the trajectory schema.
"""

import pytest

from repro.dr.evaluator import DREvaluator


def run(archive_mode, txns=80, seed=42):
    return DREvaluator(
        txns=txns, n_pairs=3, archive_mode=archive_mode, post_txns=8,
        seed=seed,
    ).run()


class TestSyncMode:
    def test_sync_archiving_has_zero_rpo(self):
        result = run("sync")
        assert result.acked > 0
        assert result.rpo_txns == 0
        assert result.lag_lost_records == 0
        assert result.consistent
        assert result.dr_score == 1.0
        # liveness: the restored fleet served checked traffic
        assert result.post_transfers > 0
        assert result.post_reads > 0

    def test_sync_run_exercises_corruption_and_scrub(self):
        result = run("sync")
        assert result.corrupted_segments == 1
        assert result.scrub is not None
        assert result.scrub.repaired == 1
        assert result.scrub.clean

    def test_rto_is_measured_and_modelled(self):
        result = run("sync")
        assert result.restore is not None
        assert result.rto_wall_s > 0
        assert result.rto_virtual_s > 0
        assert result.restore.rows_loaded == 2 * 3
        assert result.restore.records_replayed > 0


class TestLaggedMode:
    def test_lagged_archiving_prices_the_buffered_tail(self):
        result = run("lagged")
        assert result.lag_lost_records > 0
        assert result.rpo_txns > 0
        assert result.rpo_txns < result.acked
        assert 0.0 < result.dr_score < 1.0

    def test_time_travel_anomalies_are_explained_by_the_rpo(self):
        """Restoring to an earlier point reads as lost updates and
        non-monotonic reads; with a non-zero RPO those are the RPO, not
        violations."""
        result = run("lagged")
        assert result.rpo_explained_violations > 0
        assert result.consistent
        assert result.dr_score == pytest.approx(
            1.0 - result.rpo_txns / result.acked
        )


class TestConfigurationAndBench:
    def test_bad_archive_mode_rejected(self):
        with pytest.raises(ValueError, match="archive mode"):
            DREvaluator(archive_mode="eventual")

    def test_determinism_at_a_fixed_seed(self):
        first = run("sync", txns=40)
        second = run("sync", txns=40)
        assert first.acked == second.acked
        assert first.archived_records == second.archived_records
        assert first.restore.records_replayed == second.restore.records_replayed
        assert first.fsyncs == second.fsyncs

    def test_bench_record_validates_against_the_trajectory_schema(self):
        from repro.dr.bench import dr_record
        from repro.perf.trajectory import validate_bench

        result = run("sync")
        record = dr_record(
            result, restore_wall_s=[result.rto_wall_s], seed=42,
            wall_s=1.0, cpu_s=1.0, peak_rss_kb=1,
        )
        assert validate_bench(record.to_doc()) == []
        assert record.metrics["rpo_txns"] == 0
        assert record.metrics["committed"] == result.acked

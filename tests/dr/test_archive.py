"""WAL archiving: ingest semantics, lag, truncation, catch-up.

The archive's correctness rests on three ingest rules -- duplicate
re-offers are no-ops, a reused LSN with a different payload rewinds the
dead timeline, and a rotted primary heals in place from its mirror --
plus the completeness hooks (pre-truncate ingestion, ``catch_up``)
that guarantee replay never finds a gap.
"""

import dataclasses

import pytest

from repro.dr.archive import FleetArchiver, ShardArchive, WalArchiver
from repro.engine.database import Database
from repro.engine.errors import EngineError, WalCorruptionError
from repro.engine.types import Column, ColumnType, Schema


def fresh_db(name="arch"):
    db = Database(name, buffer_size_bytes=1 << 22)
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def insert(db, k):
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])


class TestShardArchiveIngest:
    def test_duplicate_reoffer_is_a_noop(self):
        db = fresh_db()
        archive = ShardArchive(db.name)
        record = None
        insert(db, 1)
        for record in db.wal.records_from(db.wal.first_retained_lsn):
            assert archive.ingest(record)
        before = len(archive)
        assert not archive.ingest(record)
        assert len(archive) == before
        assert archive.duplicates == 1
        assert archive.rewinds == 0

    def test_corrupt_incoming_record_is_refused(self):
        db = fresh_db()
        archive = ShardArchive(db.name)
        insert(db, 1)
        good = db.wal.record_at(db.wal.last_lsn)
        bad = dataclasses.replace(good, crc=good.crc ^ 1)
        with pytest.raises(WalCorruptionError, match="CRC"):
            archive.ingest(bad)
        assert len(archive) == 0

    def test_reused_lsn_rewinds_the_dead_timeline(self):
        """After ``discard_from`` the engine reuses LSNs; the archived
        suffix belonged to a dead timeline and must be dropped."""
        db = fresh_db()
        archiver = WalArchiver(db)
        for k in (1, 2, 3):
            insert(db, k)
        archive = archiver.archive
        end_before = archive.last_lsn
        # discard the last insert's records, then write a different one
        # into the same LSNs
        chain_head = db.wal.transaction_chain(
            db.wal.record_at(end_before).txn_id, end_before
        )[-1].lsn
        db.wal.discard_from(chain_head)
        insert(db, 9)
        assert archive.rewinds == 1
        assert archive.rewound_records > 0
        # the archive tracks the live timeline exactly
        assert archive.last_lsn == db.wal.last_lsn
        live = {r.lsn: r for r in db.wal.records_from(db.wal.first_retained_lsn)}
        for lsn in range(chain_head, archive.last_lsn + 1):
            assert archive.record(lsn) == live[lsn]

    def test_rotted_primary_heals_from_matching_reoffer(self):
        """Same LSN, different payload, but only because the primary
        rotted: a re-offer matching the intact mirror heals in place
        instead of rewinding away the suffix."""
        db = fresh_db()
        archiver = WalArchiver(db)
        for k in (1, 2, 3):
            insert(db, k)
        archive = archiver.archive
        lsn = archive.first_lsn + 1
        end = archive.last_lsn
        archive.flip_bit(lsn, bit=3)
        assert not archive.record(lsn).is_intact
        assert archive.ingest(db.wal.record_at(lsn))
        assert archive.healed == 1
        assert archive.rewinds == 0
        assert archive.record(lsn).is_intact
        # nothing above the healed record was thrown away
        assert archive.last_lsn == end
        assert not archive.missing_between(archive.first_lsn - 1, end)


class TestShardArchiveReads:
    def _archive_with_gap(self):
        db = fresh_db()
        records = []
        for k in (1, 2, 3, 4):
            insert(db, k)
        records = list(db.wal.records_from(db.wal.first_retained_lsn))
        archive = ShardArchive(db.name)
        skipped = records[len(records) // 2]
        for record in records:
            if record.lsn != skipped.lsn:
                archive.ingest(record)
        return archive, records, skipped

    def test_records_between_raises_on_gap(self):
        archive, records, skipped = self._archive_with_gap()
        with pytest.raises(EngineError, match="gap"):
            archive.records_between(records[0].lsn - 1, records[-1].lsn)
        assert archive.missing_between(
            records[0].lsn - 1, records[-1].lsn
        ) == [skipped.lsn]

    def test_records_between_raises_on_corruption(self):
        db = fresh_db()
        archiver = WalArchiver(db)
        for k in (1, 2):
            insert(db, k)
        archive = archiver.archive
        archive.flip_bit(archive.first_lsn + 1)
        with pytest.raises(WalCorruptionError, match="scrub"):
            archive.records_between(archive.first_lsn - 1, archive.last_lsn)

    def test_records_between_returns_the_contiguous_range(self):
        db = fresh_db()
        archiver = WalArchiver(db)
        for k in (1, 2, 3):
            insert(db, k)
        archive = archiver.archive
        out = archive.records_between(archive.first_lsn - 1, archive.last_lsn)
        assert [r.lsn for r in out] == list(
            range(archive.first_lsn, archive.last_lsn + 1)
        )

    def test_missing_record_read_raises(self):
        archive = ShardArchive("empty")
        with pytest.raises(EngineError, match="no LSN"):
            archive.record(5)
        assert not archive.has(5)
        assert archive.first_lsn == 0
        assert archive.last_lsn == 0

    def test_flip_bit_repair_verified_copy(self):
        db = fresh_db()
        archiver = WalArchiver(db)
        insert(db, 1)
        archive = archiver.archive
        lsn = archive.last_lsn
        archive.flip_bit(lsn, bit=7)
        assert archive.first_corrupt_lsn() == lsn
        # the mirror still serves an intact copy, and repairs the primary
        assert archive.verified_copy(lsn).is_intact
        assert archive.repair(lsn)
        assert archive.first_corrupt_lsn() is None
        assert archive.record(lsn).is_intact


class TestWalArchiverModes:
    def test_sync_ships_on_append(self):
        db = fresh_db()
        archiver = WalArchiver(db, mode="sync")
        insert(db, 1)
        assert archiver.archive.last_lsn == db.wal.last_lsn
        assert archiver.lag_records == 0

    def test_lagged_buffers_until_flush(self):
        db = fresh_db()
        archiver = WalArchiver(db, mode="lagged")
        for k in (1, 2):
            insert(db, k)
        assert len(archiver.archive) == 0
        assert archiver.lag_records > 0
        pending = archiver.lag_records
        assert archiver.flush() == pending
        assert archiver.lag_records == 0
        assert archiver.archive.last_lsn == db.wal.last_lsn

    def test_drop_pending_returns_the_rpo_exposure(self):
        db = fresh_db()
        archiver = WalArchiver(db, mode="lagged")
        insert(db, 1)
        pending = archiver.lag_records
        assert pending > 0
        assert archiver.drop_pending() == pending
        assert archiver.lag_records == 0
        assert len(archiver.archive) == 0

    def test_truncation_ingests_the_doomed_prefix(self):
        """Checkpoint truncation must pass the dropped prefix through
        the archive -- in lagged mode that is the only copy left."""
        db = fresh_db()
        archiver = WalArchiver(db, mode="lagged")
        for k in (1, 2, 3):
            insert(db, k)
        assert len(archiver.archive) == 0
        db.checkpoint(truncate_wal=True)
        boundary = db.wal.first_retained_lsn
        assert boundary > 1
        # every truncated record is archived; the buffer kept only what
        # the log still retains
        assert not archiver.archive.missing_between(0, boundary - 1)
        assert all(
            record.lsn >= boundary for record in archiver._pending
        )

    def test_catch_up_heals_append_gaps_from_the_live_log(self):
        db = fresh_db()
        for k in (1, 2):
            insert(db, k)
        # attach late: the appends above never reached the listeners
        archiver = WalArchiver(db)
        assert len(archiver.archive) == 0
        added = archiver.catch_up()
        assert added == db.wal.retained_records
        assert archiver.archive.last_lsn == db.wal.last_lsn

    def test_detach_stops_the_feed(self):
        db = fresh_db()
        archiver = WalArchiver(db)
        insert(db, 1)
        end = archiver.archive.last_lsn
        archiver.detach()
        insert(db, 2)
        assert archiver.archive.last_lsn == end

    def test_invalid_mode_rejected(self):
        db = fresh_db()
        with pytest.raises(ValueError, match="archive mode"):
            WalArchiver(db, mode="eventual")


class TestFleetArchiver:
    def test_one_archiver_per_shard_and_mode_control(self):
        from repro.ha.workload import build_pairs_fleet

        fleet, _pairs = build_pairs_fleet(n_shards=2, n_pairs=2, name="archf")
        archiver = FleetArchiver(fleet, mode="sync")
        assert len(archiver.archives) == 2
        assert archiver.mode == "sync"
        # the fleet was loaded before the archivers attached: catch_up
        # seals each archive to its shard's durable horizon
        assert archiver.catch_up() > 0
        for shard, archive in zip(fleet.shards, archiver.archives):
            assert archive.last_lsn == shard.wal.last_lsn
        archiver.set_mode("lagged")
        assert all(a.mode == "lagged" for a in archiver.archivers)
        with pytest.raises(ValueError, match="archive mode"):
            archiver.set_mode("eventual")
        archiver.detach()

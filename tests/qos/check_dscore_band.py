"""CI gate: per-architecture D-Scores must sit in their pinned bands.

Runs the overload evaluator at the quick sizing with the default seed
and asserts, for every architecture:

* **qos on** -- D-Score >= 0.9 (goodput holds past the knee);
* **qos off** -- D-Score in [0.15, 0.5] (the baseline collapses, but
  not to an implausible zero -- a 0.0 here means the simulation broke,
  not that the baseline got worse).

The bands are intentionally loose around the measured values (~1.0 and
~0.30-0.36) so parameter-sensitive drift fails loudly while jitter in
the last decimals does not.  Exits non-zero on any violation.

Usage: ``PYTHONPATH=src python tests/qos/check_dscore_band.py``
"""

import sys

from repro.core.config import BenchConfig
from repro.core.runner import CloudyBench

QOS_MIN = 0.9
NOQOS_BAND = (0.15, 0.5)


def main() -> int:
    bench = CloudyBench(BenchConfig.quick())
    failures = []
    for qos in (True, False):
        for arch, result in bench._compute_overload(qos=qos).items():
            dscore = result.dscore
            if qos:
                ok = dscore >= QOS_MIN
                band = f">= {QOS_MIN}"
            else:
                ok = NOQOS_BAND[0] <= dscore <= NOQOS_BAND[1]
                band = f"in [{NOQOS_BAND[0]}, {NOQOS_BAND[1]}]"
            flag = "ok" if ok else "FAIL"
            print(
                f"{flag:4s} qos={'on ' if qos else 'off'} {arch:10s} "
                f"D-Score {dscore:.3f} (want {band})"
            )
            if not ok:
                failures.append((qos, arch, dscore))
    if failures:
        print(f"{len(failures)} D-Score(s) out of band", file=sys.stderr)
        return 1
    print("all D-Scores in band")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The overload evaluator: determinism, qos-vs-baseline, registry wiring."""

import pytest

from repro.cloud.architectures import get as get_architecture
from repro.core.config import BenchConfig
from repro.core.evalapi import EvalOutcome, get_evaluator, parse_bool
from repro.core.runner import CloudyBench
from repro.qos.overload import OverloadEvaluator, d_score

ARCH = get_architecture("aws_rds")
QUICK = dict(capacity_rps=200.0, duration_s=1.5, seed=7)
MULTIPLES = [0.5, 2.0]


def sweep(qos, **overrides):
    kwargs = dict(QUICK)
    kwargs.update(overrides)
    return OverloadEvaluator(ARCH, qos=qos, **kwargs).run(list(MULTIPLES))


# -- d_score ------------------------------------------------------------------


class TestDScore:
    def test_never_past_the_knee_scores_one(self):
        assert d_score([(50.0, 50.0), (100.0, 99.0)], 100.0) == 1.0
        assert d_score([], 100.0) == 1.0

    def test_total_collapse_scores_zero(self):
        assert d_score([(200.0, 0.0)], 100.0) == 0.0

    def test_flat_goodput_scores_one(self):
        assert d_score([(200.0, 100.0), (300.0, 100.0)], 100.0) == 1.0

    def test_partial_shortfall(self):
        # one point past the knee at half the capacity: 1 - 0.5
        assert d_score([(200.0, 50.0)], 100.0) == pytest.approx(0.5)

    def test_overachieving_points_do_not_inflate(self):
        assert d_score([(200.0, 150.0)], 100.0) == 1.0

    def test_zero_capacity_scores_zero(self):
        assert d_score([(10.0, 10.0)], 0.0) == 0.0


# -- the simulation -----------------------------------------------------------


class TestSweep:
    def test_identical_runs_are_byte_identical(self):
        first, second = sweep(qos=True), sweep(qos=True)
        assert first.points == second.points
        assert first.dscore == second.dscore

    def test_seed_changes_the_arrival_schedule(self):
        assert sweep(qos=True).points != sweep(qos=True, seed=8).points

    def test_qos_protects_goodput_past_the_knee(self):
        protected, unprotected = sweep(qos=True), sweep(qos=False)
        assert protected.dscore > unprotected.dscore
        assert (
            protected.point_at(2.0).goodput_rps
            > unprotected.point_at(2.0).goodput_rps
        )

    def test_qos_queue_is_bounded_and_baseline_queue_is_not(self):
        protected, unprotected = sweep(qos=True), sweep(qos=False)
        max_queue = OverloadEvaluator(ARCH, qos=True).policy.max_queue
        for point in protected.points:
            assert point.peak_queue_depth <= max_queue
        assert unprotected.point_at(2.0).peak_queue_depth > max_queue

    def test_qos_sheds_instead_of_timing_out(self):
        protected, unprotected = sweep(qos=True), sweep(qos=False)
        past_knee = protected.point_at(2.0)
        assert past_knee.shed > 0
        assert unprotected.point_at(2.0).shed == 0
        assert unprotected.point_at(2.0).timeouts > past_knee.timeouts

    def test_point_at_unknown_multiple_is_none(self):
        assert sweep(qos=True).point_at(9.0) is None

    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(ValueError):
            OverloadEvaluator(ARCH, capacity_rps=0.0)
        with pytest.raises(ValueError):
            OverloadEvaluator(ARCH, deadline_s=-1.0)


# -- registry integration -----------------------------------------------------


@pytest.fixture(scope="module")
def bench():
    config = BenchConfig.quick()
    config.architectures = ["aws_rds", "cdb3"]
    config.overload_multiples = [0.5, 2.0]
    config.overload_duration_s = 1.5
    return CloudyBench(config)


class TestRegistry:
    def test_overload_is_registered(self):
        spec = get_evaluator("overload")
        assert "goodput" in spec.title
        names = [option.name for option in spec.options]
        assert names == ["qos", "arrival"]

    def test_run_returns_scored_outcome(self, bench):
        outcome = bench.run("overload")
        assert isinstance(outcome, EvalOutcome)
        assert outcome.name == "overload"
        assert "qos on" in outcome.title
        assert set(outcome.scores) == {"d.aws_rds", "d.cdb3"}
        assert all(0.0 <= value <= 1.0 for value in outcome.scores.values())
        # one row per (arch, multiple)
        assert len(outcome.rows) == 2 * len(bench.config.overload_multiples)

    def test_qos_option_switches_configuration(self, bench):
        unprotected = bench.run("overload", qos=False)
        assert "qos off" in unprotected.title
        protected = bench.run("overload", qos=True)
        for arch in ("aws_rds", "cdb3"):
            assert (
                protected.scores[f"d.{arch}"] > unprotected.scores[f"d.{arch}"]
            )

    def test_results_are_cached_per_flag(self, bench):
        bench.run("overload", qos=True)
        first = bench._compute_overload(qos=True)
        assert bench._compute_overload(qos=True) is first
        assert bench._compute_overload(qos=False) is not first

    def test_overall_carries_the_dscore(self, bench):
        bench.run("overload")  # populate the cache for the config's flag
        outcome = bench.run("overall")
        assert set(outcome.payload) == {"aws_rds", "cdb3"}
        for scores in outcome.payload.values():
            assert "d" in scores.extras
            assert 0.0 <= scores.extras["d"] <= 1.0


# -- CLI boolean options ------------------------------------------------------


class TestParseBool:
    @pytest.mark.parametrize("raw", [True, "true", "1", "YES", " on "])
    def test_truthy(self, raw):
        assert parse_bool(raw) is True

    @pytest.mark.parametrize("raw", [False, "false", "0", "No", " off "])
    def test_falsy(self, raw):
        assert parse_bool(raw) is False

    @pytest.mark.parametrize("raw", ["maybe", "", "2", None])
    def test_rejects_everything_else(self, raw):
        with pytest.raises(ValueError):
            parse_bool(raw)

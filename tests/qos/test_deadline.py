"""Deadline propagation: the object itself, and engine cancellation.

The integration tests drive a real engine database under a manual clock
and verify the PR's core safety claim: a transaction cancelled by its
deadline releases every lock and rolls back cleanly -- including MVCC
write intents under SNAPSHOT isolation -- so no other transaction ever
waits on, or conflicts with, a corpse.
"""

import pytest

from repro.engine.database import Database
from repro.engine.errors import DeadlineExceededError
from repro.engine.txn import IsolationLevel
from repro.engine.types import Column, ColumnType, Schema
from repro.qos.deadline import Deadline


def fresh_db(**kwargs):
    db = Database("qos_deadline", buffer_size_bytes=1 << 22, **kwargs)
    db.create_table(Schema(
        "KV",
        (
            Column("K", ColumnType.INT, nullable=False),
            Column("V", ColumnType.INT, nullable=False, default=0),
        ),
        primary_key="K",
    ))
    for k in range(1, 6):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k * 10])
    return db


class ManualClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# -- the Deadline object ------------------------------------------------------


class TestDeadline:
    def test_after_and_remaining(self):
        clock = ManualClock(10.0)
        deadline = Deadline.after(5.0, clock)
        assert deadline.remaining_s() == pytest.approx(5.0)
        assert not deadline.expired()
        clock.now = 15.0
        assert deadline.expired()
        assert deadline.remaining_s() == pytest.approx(0.0)

    def test_after_rejects_negative_timeout(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_check_raises_with_context(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock)
        deadline.check("lock wait")  # no-op while alive
        clock.now = 1.5
        with pytest.raises(DeadlineExceededError, match="lock wait"):
            deadline.check("lock wait")

    def test_expired_accepts_explicit_now(self):
        deadline = Deadline(1.0, ManualClock())
        assert not deadline.expired(now=0.5)
        assert deadline.expired(now=1.0)

    def test_child_never_outlives_parent(self):
        clock = ManualClock()
        parent = Deadline(1.0, clock)
        assert parent.child(10.0).expires_at_s == pytest.approx(1.0)
        tighter = parent.child(0.3)
        assert tighter.expires_at_s == pytest.approx(0.3)
        assert tighter.clock is clock


# -- engine integration: cancellation rolls back cleanly ----------------------


class TestEngineCancellation:
    def test_expired_txn_rolls_back_and_releases_locks(self):
        clock = ManualClock()
        db = fresh_db()
        txn = db.begin(deadline=Deadline(1.0, clock))
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [111, 1], txn=txn)
        assert db.locks.locks_held(txn.txn_id)
        clock.now = 2.0  # the deadline passes mid-transaction
        with pytest.raises(DeadlineExceededError):
            db.execute("UPDATE kv SET V = ? WHERE K = ?", [222, 2], txn=txn)
        # rolled back *before* raising: no locks, no dirty state
        assert not txn.is_active
        assert db.locks.locks_held(txn.txn_id) == set()
        assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 10
        assert db.deadline_cancellations == 1

    def test_expired_waiter_never_joins_the_lock_queue(self):
        clock = ManualClock()
        db = fresh_db()
        holder = db.begin()
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [111, 1], txn=holder)
        doomed = db.begin(deadline=Deadline(1.0, clock))
        clock.now = 2.0
        with pytest.raises(DeadlineExceededError):
            db.execute("UPDATE kv SET V = ? WHERE K = ?", [222, 1], txn=doomed)
        # the doomed txn is not queued behind the holder
        assert db.locks.queued(("KV", 1)) == []
        holder.commit()
        assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 111

    def test_snapshot_write_intents_are_rolled_back(self):
        clock = ManualClock()
        db = fresh_db(default_isolation=IsolationLevel.SNAPSHOT)
        baseline_versions = db.live_versions()
        txn = db.begin(deadline=Deadline(1.0, clock))
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [111, 1], txn=txn)
        clock.now = 2.0
        with pytest.raises(DeadlineExceededError):
            db.execute("UPDATE kv SET V = ? WHERE K = ?", [222, 2], txn=txn)
        assert not txn.is_active
        # the aborted write intent is gone: a later snapshot writer to the
        # same key neither conflicts nor sees the cancelled value
        later = db.begin()
        assert db.execute(
            "SELECT V FROM kv WHERE K = ?", [1], txn=later
        ).scalar() == 10
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [333, 1], txn=later)
        later.commit()
        assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 333
        db.vacuum()
        assert db.live_versions() <= baseline_versions + 1

    def test_statement_deadline_on_autocommit(self):
        clock = ManualClock()
        db = fresh_db()
        expired = Deadline(0.5, clock)
        clock.now = 1.0
        with pytest.raises(DeadlineExceededError):
            db.execute("UPDATE kv SET V = ? WHERE K = ?", [1, 1], deadline=expired)
        assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 10
        assert not db.txns.active

    def test_alive_deadline_does_not_interfere(self):
        clock = ManualClock()
        db = fresh_db()
        with db.begin(deadline=Deadline(100.0, clock)) as txn:
            db.execute("UPDATE kv SET V = ? WHERE K = ?", [42, 3], txn=txn)
        assert db.query("SELECT V FROM kv WHERE K = ?", [3]).scalar() == 42
        assert db.deadline_cancellations == 0

"""Admission controller: bounded queues, shedding, and AIMD convergence."""

import pytest

from repro.engine.errors import OverloadError
from repro.qos.admission import AdmissionController, AdmissionPolicy, BrownoutPolicy


class FakeDeadline:
    def __init__(self, expires_at_s):
        self.expires_at_s = expires_at_s

    def expired(self, now):
        return now >= self.expires_at_s


def drive_closed_loop(controller, capacity, steps, base_latency_s=0.01, now=0.0):
    """Admit-to-limit against a processor-sharing server; returns (now, limits).

    The same loop as the overload simulation's inner core: each step
    admits as many requests as the limit allows, all of them observe the
    concurrency-degraded latency, and their completions feed the AIMD
    controller.  ``capacity`` is the server's core count -- latency
    starts climbing once the limit exceeds it.
    """
    limits = []
    for _ in range(steps):
        inflight = 0
        while controller.has_capacity():
            controller.try_acquire(now)
            inflight += 1
        latency = base_latency_s * max(1.0, inflight / capacity)
        for _ in range(inflight):
            now += latency / max(1, inflight)
            controller.release(now, latency)
        limits.append(controller.limit)
    return now, limits


# -- policy validation --------------------------------------------------------


class TestPolicies:
    def test_admission_policy_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(initial_limit=0.5, min_limit=1.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(initial_limit=300.0, max_limit=256.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(decrease=1.5)
        with pytest.raises(ValueError):
            AdmissionPolicy(latency_threshold=1.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(priorities=0)

    def test_brownout_policy_validation(self):
        BrownoutPolicy()  # defaults are valid
        with pytest.raises(ValueError):
            BrownoutPolicy(overcommit_threshold=-0.1)
        with pytest.raises(ValueError):
            BrownoutPolicy(min_share=1.5)


# -- gate mode: admit or shed -------------------------------------------------


class TestGateMode:
    def test_sheds_past_the_limit(self):
        controller = AdmissionController(
            AdmissionPolicy(initial_limit=2.0, min_limit=1.0)
        )
        controller.try_acquire(0.0)
        controller.try_acquire(0.0)
        with pytest.raises(OverloadError) as excinfo:
            controller.try_acquire(0.0)
        assert excinfo.value.retryable
        assert controller.shed == 1
        assert controller.admitted == 2

    def test_release_frees_a_slot(self):
        controller = AdmissionController(
            AdmissionPolicy(initial_limit=1.0, min_limit=1.0)
        )
        controller.try_acquire(0.0)
        controller.release(0.1, latency_s=0.1)
        controller.try_acquire(0.2)  # no raise
        assert controller.admitted == 2

    def test_failed_completion_is_a_congestion_signal(self):
        controller = AdmissionController(
            AdmissionPolicy(initial_limit=8.0, min_limit=1.0)
        )
        before = controller.limit
        controller.try_acquire(0.0)
        controller.release(1.0, latency_s=1.0, ok=False)
        assert controller.limit < before
        assert controller.congestion_signals == 1


# -- queue mode ---------------------------------------------------------------


class TestQueueMode:
    def test_bounded_queue_sheds_when_full(self):
        controller = AdmissionController(
            AdmissionPolicy(max_queue=2, initial_limit=1.0, min_limit=1.0)
        )
        controller.try_acquire(0.0)  # occupy the single slot
        controller.enqueue("a", 0.0)
        controller.enqueue("b", 0.0)
        with pytest.raises(OverloadError):
            controller.enqueue("c", 0.0)
        assert controller.queue_depth == 2
        assert controller.peak_queue_depth == 2
        assert controller.shed == 1

    def test_shed_hints_a_drain_time_once_calibrated(self):
        controller = AdmissionController(
            AdmissionPolicy(max_queue=1, initial_limit=1.0, min_limit=1.0)
        )
        controller.try_acquire(0.0)
        controller.release(0.2, latency_s=0.2)  # establishes the baseline
        controller.try_acquire(0.3)
        controller.enqueue("a", 0.3)
        with pytest.raises(OverloadError) as excinfo:
            controller.enqueue("b", 0.3)
        assert excinfo.value.retry_after_s > 0.0

    def test_dequeue_respects_priority_then_fifo(self):
        controller = AdmissionController(
            AdmissionPolicy(initial_limit=8.0, min_limit=1.0, priorities=3)
        )
        controller.enqueue("low-1", 0.0, priority=2)
        controller.enqueue("high", 0.0, priority=0)
        controller.enqueue("low-2", 0.0, priority=2)
        order = [controller.next_ready(0.0).item for _ in range(3)]
        assert order == ["high", "low-1", "low-2"]
        assert controller.next_ready(0.0) is None

    def test_expired_entries_dropped_at_dequeue(self):
        controller = AdmissionController(
            AdmissionPolicy(initial_limit=8.0, min_limit=1.0)
        )
        controller.enqueue("dead", 0.0, deadline=FakeDeadline(1.0))
        controller.enqueue("alive", 0.0, deadline=FakeDeadline(10.0))
        ticket = controller.next_ready(2.0)  # past the first deadline
        assert ticket.item == "alive"
        assert controller.expired == 1
        assert controller.queue_depth == 0

    def test_next_ready_honours_the_limit(self):
        controller = AdmissionController(
            AdmissionPolicy(initial_limit=1.0, min_limit=1.0)
        )
        controller.enqueue("a", 0.0)
        controller.enqueue("b", 0.0)
        assert controller.next_ready(0.0).item == "a"
        assert controller.next_ready(0.0) is None  # limit reached
        controller.release(0.1, latency_s=0.1)
        assert controller.next_ready(0.1).item == "b"


# -- AIMD convergence (the property the evaluator leans on) -------------------


class TestConvergence:
    @pytest.mark.parametrize("capacity", [4, 8, 16])
    def test_limit_converges_to_a_bounded_band(self, capacity):
        """The limit must find the server's capacity region, not a rail.

        A correct latency-driven limit settles a small multiple above
        the core count (queueing begins there); railing at ``max_limit``
        means the baseline crept (the bug this PR's min-latency anchor
        fixes) and railing at ``min_limit`` means it never grows.
        """
        policy = AdmissionPolicy(
            initial_limit=4.0, min_limit=1.0, max_limit=256.0
        )
        controller = AdmissionController(policy)
        _, limits = drive_closed_loop(controller, capacity, steps=2000)
        tail = limits[-500:]
        assert min(tail) > policy.min_limit
        assert max(tail) < policy.max_limit
        assert 1.2 * capacity <= sum(tail) / len(tail) <= 4.5 * capacity

    def test_limit_reconverges_after_a_step_load_change(self):
        """Halving the capacity mid-run must pull the limit back down."""
        policy = AdmissionPolicy(
            initial_limit=4.0, min_limit=1.0, max_limit=256.0
        )
        controller = AdmissionController(policy)
        now, limits_before = drive_closed_loop(controller, 16, steps=2000)
        fat_tail = limits_before[-500:]
        _, limits_after = drive_closed_loop(
            controller, 4, steps=2000, now=now
        )
        thin_tail = limits_after[-500:]
        mean_before = sum(fat_tail) / len(fat_tail)
        mean_after = sum(thin_tail) / len(thin_tail)
        assert mean_after < 0.5 * mean_before
        assert 1.2 * 4 <= mean_after <= 4.5 * 4

    def test_baseline_is_anchored_to_the_best_latency(self):
        """Feeding ever-slower 'good' samples must not drag the baseline
        above the anchor -- the creep that railed the limit at max."""
        controller = AdmissionController(AdmissionPolicy())
        controller.try_acquire(0.0)
        controller.release(0.0, latency_s=0.010)
        latency = 0.010
        for step in range(1, 500):
            # each sample is slightly slower but under the 2x threshold
            latency = min(latency * 1.01, 0.019)
            controller.try_acquire(float(step))
            controller.release(float(step), latency_s=latency)
        assert controller.latency_baseline_s <= 1.5 * 0.010 + 1e-12

"""Histogram percentiles under extreme skew, and merging worker snapshots.

The perf harness leans on two histogram properties the basic tests do
not stress: percentile estimates must stay honest when the whole
distribution collapses into one bucket (a uniform service time, a
single sample, a bimodal knee), and folding per-worker / per-shard
registries into one must give the same answer regardless of merge
order -- otherwise two runs of the same benchmark could report
different tails purely from aggregation order.
"""

import random

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


def hist_of(values, bounds=None):
    hist = Histogram("h", bounds=bounds)
    for value in values:
        hist.observe(value)
    return hist


# -- extreme skew --------------------------------------------------------------


class TestExtremeSkew:
    def test_single_sample_is_every_percentile(self):
        hist = hist_of([0.0042])
        for pct in (0.1, 50.0, 99.0, 99.9, 100.0):
            assert hist.percentile(pct) == pytest.approx(0.0042)

    def test_identical_values_collapse_to_one_bucket(self):
        # 10k observations of the same value: interpolation inside the
        # winning bucket must clamp to the observed value, not smear
        # across the bucket's width.
        hist = hist_of([0.003] * 10_000)
        assert sum(1 for c in hist.bucket_counts if c) == 1
        for pct in (50.0, 99.0, 99.9):
            assert hist.percentile(pct) == pytest.approx(0.003)

    def test_bimodal_tail_lands_in_the_high_mode(self):
        # 99% fast-path at ~1ms, 1% stalls at ~2s: the knee shape an
        # open-loop run produces around a failover.  p50 must sit in
        # the low mode and p999 in the high mode -- a mid-range answer
        # would mean the estimator invented latencies nobody observed.
        values = [0.001] * 9900 + [2.0] * 100
        hist = hist_of(values)
        assert hist.percentile(50.0) == pytest.approx(0.001)
        assert hist.percentile(99.9) == pytest.approx(2.0, rel=0.5)
        assert hist.percentile(99.9) >= 1.0

    def test_overflow_bucket_clamps_to_observed_max(self):
        hist = hist_of([0.5, 5.0, 500.0], bounds=(1.0, 10.0))
        assert hist.percentile(100.0) == 500.0
        assert hist.percentile(99.0) <= 500.0

    def test_all_mass_below_first_bound(self):
        hist = hist_of([1e-9] * 100, bounds=(1.0, 2.0))
        assert hist.percentile(50.0) == pytest.approx(1e-9)

    def test_skewed_percentiles_track_exact_oracle(self):
        # Pareto-ish skew: most samples tiny, a long tail.  Bucketed
        # estimates cannot be exact, but each percentile must land
        # within one bucket of the exact order statistic.
        rng = random.Random(11)
        values = [0.0005 * (1.0 / max(rng.random(), 1e-4)) for _ in range(5000)]
        hist = hist_of(values)
        exact = sorted(values)
        for pct in (50.0, 90.0, 99.0):
            oracle = exact[min(len(exact) - 1, int(pct / 100.0 * len(exact)))]
            estimate = hist.percentile(pct)
            index = next(
                i for i, b in enumerate(hist.bounds + (float("inf"),))
                if oracle <= b
            )
            low = hist.bounds[index - 1] if index > 0 else 0.0
            high = (
                hist.bounds[index] if index < len(hist.bounds) else hist.max
            )
            assert low <= estimate <= high


# -- merging worker / shard snapshots -----------------------------------------


class TestWorkerSnapshotMerge:
    def make_workers(self):
        """Three 'workers' with very different latency profiles, as the
        shard driver produces: one fast shard, one slow shard, one that
        saw a stall."""
        fast = MetricsRegistry()
        slow = MetricsRegistry()
        stalled = MetricsRegistry()
        for _ in range(1000):
            fast.histogram("txn.latency_s").observe(0.001)
            slow.histogram("txn.latency_s").observe(0.050)
        for _ in range(10):
            stalled.histogram("txn.latency_s").observe(3.0)
        for registry, n in ((fast, 1000), (slow, 1000), (stalled, 10)):
            registry.counter("txn.commit").inc(n)
        return fast, slow, stalled

    def merged(self, order):
        total = MetricsRegistry()
        for registry in order:
            total.merge(registry)
        return total

    def test_merge_order_is_irrelevant(self):
        fast, slow, stalled = self.make_workers()
        a = self.merged((fast, slow, stalled))
        b = self.merged((stalled, fast, slow))
        c = self.merged((slow, stalled, fast))
        ha = a.histogram("txn.latency_s")
        for other in (b, c):
            ho = other.histogram("txn.latency_s")
            assert ha.bucket_counts == ho.bucket_counts
            assert ha.count == ho.count
            assert ha.sum == pytest.approx(ho.sum)
            assert ha.min == ho.min and ha.max == ho.max
            for pct in (50.0, 99.0, 99.9):
                assert ha.percentile(pct) == ho.percentile(pct)
            assert a.counter("txn.commit").value == other.counter(
                "txn.commit"
            ).value

    def test_merged_tail_reflects_the_stalled_worker(self):
        fast, slow, stalled = self.make_workers()
        total = self.merged((fast, slow, stalled))
        hist = total.histogram("txn.latency_s")
        assert hist.count == 2010
        # the 10 stalls are ~0.5% of mass: invisible at p99 of the
        # merged view, unmistakable at p999
        assert hist.percentile(99.0) < 1.0
        assert hist.percentile(99.9) >= 1.0
        assert hist.max == 3.0

    def test_merge_into_empty_equals_copy(self):
        fast, _slow, _stalled = self.make_workers()
        total = MetricsRegistry()
        total.merge(fast)
        assert (
            total.histogram("txn.latency_s").bucket_counts
            == fast.histogram("txn.latency_s").bucket_counts
        )

"""The observer threaded through engine, cloud DES, chaos and client
layers emits the typed events the timeline and dashboards rely on."""

import pytest

from repro.chaos.availability import AvailabilityEvaluator
from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.cloud.architectures import get as get_architecture
from repro.core.resilience import ResilientSession
from repro.engine.database import Database
from repro.engine.errors import NodeUnavailableError
from repro.engine.types import Column, ColumnType, Schema
from repro.obs import NULL_OBSERVER, Observer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_db(obs=None):
    db = Database("obs-test", buffer_size_bytes=1 << 22, observer=obs)
    db.create_table(Schema(
        "ACCOUNTS",
        (
            Column("A_ID", ColumnType.INT, nullable=False),
            Column("BALANCE", ColumnType.DECIMAL, nullable=False, default=0.0),
        ),
        primary_key="A_ID",
    ))
    for a_id in range(1, 6):
        db.execute("INSERT INTO accounts VALUES (?, ?)", [a_id, 100.0])
    return db


# -- engine ------------------------------------------------------------------


def test_database_defaults_to_null_observer():
    db = make_db()
    assert db.obs is NULL_OBSERVER
    assert len(db.obs.tracer) == 0


def test_commit_and_abort_emit_counters_and_spans():
    clock = FakeClock()
    obs = Observer(clock=clock)
    db = make_db(obs)
    counters = obs.metrics.counters

    clock.now = 10.0
    txn = db.begin()
    db.execute("UPDATE accounts SET BALANCE = ? WHERE A_ID = ?", [1.0, 1], txn=txn)
    clock.now = 10.5
    txn.commit()
    assert counters["engine.txn.commit"].value >= 1
    spans = obs.tracer.find(name="txn", category="engine")
    committed = [s for s in spans if s.attrs["outcome"] == "commit"][-1]
    assert committed.start_s == 10.0 and committed.end_s == 10.5
    assert committed.attrs["writes"] == 1

    txn = db.begin()
    db.execute("UPDATE accounts SET BALANCE = ? WHERE A_ID = ?", [2.0, 2], txn=txn)
    txn.rollback()
    assert counters["engine.txn.abort"].value == 1
    aborted = obs.tracer.find(name="txn", category="engine")[-1]
    assert aborted.attrs["outcome"] == "abort"

    hist = obs.metrics.histograms["engine.txn.duration_s"]
    assert hist.count == counters["engine.txn.begin"].value


def test_wal_buffer_and_lock_metrics():
    obs = Observer(clock=FakeClock())
    db = make_db(obs)
    db.execute("UPDATE accounts SET BALANCE = ? WHERE A_ID = ?", [7.0, 3])
    db.query("SELECT BALANCE FROM accounts WHERE A_ID = ?", [3])
    counters = obs.metrics.counters
    assert counters["engine.wal.append"].value > 0
    assert counters["engine.wal.bytes"].value > 0
    assert counters["engine.wal.fsync"].value > 0     # one per commit record
    assert counters["engine.lock.granted"].value > 0
    assert counters["engine.buffer.hit"].value + counters.get(
        "engine.buffer.miss", obs.metrics.counter("engine.buffer.miss")
    ).value > 0
    # released locks record their hold durations
    assert obs.metrics.histograms["engine.lock.hold_s"].count > 0


def test_crash_and_recovery_spans():
    obs = Observer(clock=FakeClock())
    db = make_db(obs)
    db.execute("UPDATE accounts SET BALANCE = ? WHERE A_ID = ?", [5.0, 1])
    db.crash()
    report = db.recover()
    assert report is not None
    counters = obs.metrics.counters
    assert counters["engine.crash"].value == 1
    assert counters["engine.recovery.runs"].value == 1
    root = obs.tracer.find(name="recovery", category="engine")
    assert len(root) == 1
    for phase in ("recovery.analysis", "recovery.redo", "recovery.undo"):
        (span,) = obs.tracer.find(name=phase)
        assert span.parent_id == root[0].span_id
    assert obs.tracer.find(name="db.crash")[0].kind == "instant"


# -- chaos -------------------------------------------------------------------


def test_injector_emits_fault_windows_and_bite_markers():
    obs = Observer(clock=FakeClock())
    plan = FaultPlan([
        FaultSpec(FaultKind.PARTITION, "replica:0", start_s=5.0, duration_s=10.0),
    ], seed=1, name="t")
    injector = ChaosInjector(plan, observer=obs)
    (window,) = obs.tracer.find(category="chaos")
    assert window.name == "partition"
    assert window.start_s == 5.0 and window.end_s == 15.0
    assert obs.metrics.counters["chaos.fault.partition"].value == 1

    assert injector.partitioned("replica:0", 6.0)
    assert injector.partitioned("replica:0", 7.0)  # bites once in the trace
    bites = obs.tracer.find(name="fault.bite")
    assert len(bites) == 1
    assert bites[0].attrs == {"kind": "partition", "target": "replica:0"}


# -- client ------------------------------------------------------------------


def test_resilient_session_observability():
    clock = FakeClock()
    obs = Observer(clock=clock)
    session = ResilientSession(
        ["replica:0", "primary"], clock=clock, observer=obs,
    )
    attempts = {"n": 0}

    def flaky(endpoint):
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise NodeUnavailableError("down")
        return "ok"

    outcome = session.call(flaky)
    assert outcome.ok and outcome.attempts == 2
    counters = obs.metrics.counters
    assert counters["client.calls"].value == 1
    assert counters["client.retries"].value == 1
    assert counters["client.backoff"].value == 1
    assert obs.metrics.histograms["client.call_s"].count == 1
    (span,) = obs.tracer.find(name="call", category="client")
    assert span.attrs["ok"] is True and span.attrs["attempts"] == 2


def test_breaker_transitions_traced():
    clock = FakeClock()
    obs = Observer(clock=clock)
    session = ResilientSession(
        ["primary"], clock=clock, observer=obs,
        breaker_threshold=2, breaker_reset_s=0.5,
    )

    def down(endpoint):
        raise NodeUnavailableError("gone")

    session.call(down, timeout_budget_s=5.0)
    assert obs.metrics.counters["client.breaker.open"].value >= 1
    assert obs.tracer.find(name="breaker.open")


# -- end to end --------------------------------------------------------------


def test_availability_run_produces_all_layer_spans():
    obs = Observer()
    plan = FaultPlan((), seed=3, name="healthy")
    evaluator = AvailabilityEvaluator(
        get_architecture("cdb1"), plan,
        n_clients=2, n_replicas=1, duration_s=3.0,
        row_scale=0.001, observer=obs,
    )
    score = evaluator.run()
    assert score.requests > 0
    categories = {span.category for span in obs.tracer.spans()}
    assert {"engine", "replication", "client"} <= categories
    assert obs.metrics.histograms["repl.lag_s"].count > 0
    # every span carries virtual-time stamps inside the run window
    for span in obs.tracer.spans():
        assert 0.0 <= span.start_s <= span.end_s <= score.duration_s + 10.0

"""Exporter formats: Chrome trace_event, JSONL, Prometheus text."""

import io
import json

from repro.obs.export import (
    TRACE_PID,
    chrome_trace,
    metrics_to_prometheus,
    observer_to_jsonl,
    spans_to_jsonl,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.observer import Observer


def make_observer():
    obs = Observer(clock=lambda: 0.0)
    obs.complete("txn", "engine", 1.0, 1.5, track="engine",
                 attrs={"txn_id": 7, "outcome": "commit"})
    parent = obs.complete("ship", "replication", 1.5, 1.6, track="replica:0")
    obs.complete("replay", "replication", 1.6, 1.7, track="replica:0",
                 parent=parent)
    obs.event("breaker.open", "client", ts=2.0, track="client")
    obs.count("engine.txn.commit")
    obs.observe("repl.lag_s", 0.2)
    obs.gauge("vcores", 4.0)
    return obs


def test_chrome_trace_structure():
    doc = chrome_trace(make_observer())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in meta} == {"engine", "replica:0", "client"}
    assert all(m["name"] == "thread_name" for m in meta)

    complete = [e for e in events if e["ph"] == "X"]
    txn = next(e for e in complete if e["name"] == "txn")
    assert txn["ts"] == 1.0 * 1e6          # seconds -> microseconds
    assert txn["dur"] == 0.5 * 1e6
    assert txn["pid"] == TRACE_PID
    assert txn["args"]["outcome"] == "commit"

    replay = next(e for e in complete if e["name"] == "replay")
    ship = next(e for e in complete if e["name"] == "ship")
    assert replay["args"]["parent_span"]   # child carries parent link
    assert replay["tid"] == ship["tid"]    # same track, same thread row

    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["s"] == "t"
    assert "dur" not in instants[0]


def test_write_chrome_trace_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(make_observer(), str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == count
    assert count == 3 + 4  # 3 track metadata + 4 span events


def test_jsonl_roundtrip():
    obs = make_observer()
    buffer = io.StringIO()
    lines_written = spans_to_jsonl(obs.tracer, buffer)
    lines = buffer.getvalue().splitlines()
    assert len(lines) == lines_written == 4
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["name"] == "txn"
    assert parsed[0]["cat"] == "engine"
    assert parsed[2]["parent"] == parsed[1]["id"]

    buffer = io.StringIO()
    total = observer_to_jsonl(obs, buffer)
    lines = buffer.getvalue().splitlines()
    assert total == len(lines) == 5
    trailer = json.loads(lines[-1])
    assert trailer["kind"] == "metrics"
    assert trailer["counters"]["engine.txn.commit"] == 1.0


def test_prometheus_text_format():
    obs = make_observer()
    text = metrics_to_prometheus(obs.metrics)
    assert "# TYPE engine_txn_commit_total counter" in text
    assert "engine_txn_commit_total 1.0" in text
    assert "# TYPE vcores gauge" in text
    assert "vcores 4.0" in text
    assert "# TYPE repl_lag_s histogram" in text
    assert 'repl_lag_s_bucket{le="+Inf"} 1' in text
    assert "repl_lag_s_sum 0.2" in text
    assert "repl_lag_s_count 1" in text

    # bucket counts are cumulative and end at the total count
    bucket_lines = [
        line for line in text.splitlines() if line.startswith("repl_lag_s_bucket")
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
    assert counts == sorted(counts)
    assert counts[-1] == 1


def test_write_prometheus_accepts_registry_or_observer(tmp_path):
    obs = make_observer()
    path_a = tmp_path / "a.prom"
    path_b = tmp_path / "b.prom"
    text_a = write_prometheus(obs, str(path_a))
    text_b = write_prometheus(obs.metrics, str(path_b))
    assert text_a == path_a.read_text()
    assert text_b == path_b.read_text()
    # The observer path adds the tracer's own accounting on top of the
    # identical registry snapshot; a bare registry has no tracer.
    assert text_a.endswith(text_b)
    assert "tracer_spans_recorded_total" in text_a
    assert "tracer_spans_recorded_total" not in text_b

"""Schema checks for the CLI's observability exports.

Usage (CI smoke job)::

    python tests/obs/check_trace.py /tmp/t.json [/tmp/m.prom]

Validates that the Chrome ``trace_event`` file is structurally sound
(metadata rows, microsecond timestamps, well-formed phases) and covers
all three instrumented layers, and that the Prometheus snapshot parses
with cumulative histogram buckets.  Exits non-zero with a message on
the first violation, so it doubles as a pytest helper and a CLI gate.
"""

from __future__ import annotations

import json
import sys

#: every one-run timeline must show all three instrumented layers
REQUIRED_CATEGORIES = {"engine", "replication", "client"}


def check_chrome_trace(path: str) -> dict:
    """Validate the trace file; returns {category: event count}."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise AssertionError("trace document must be a dict with 'traceEvents'")
    events = document["traceEvents"]
    if not events:
        raise AssertionError("trace contains no events")

    thread_names = set()
    categories: dict = {}
    for event in events:
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                raise AssertionError(f"event missing {key!r}: {event}")
        phase = event["ph"]
        if phase == "M":
            if event["name"] == "thread_name":
                thread_names.add(event["args"]["name"])
            continue
        if phase not in ("X", "i"):
            raise AssertionError(f"unexpected phase {phase!r}")
        if "ts" not in event or event["ts"] < 0:
            raise AssertionError(f"event needs a non-negative ts: {event}")
        if phase == "X" and event.get("dur", -1.0) < 0:
            raise AssertionError(f"complete event needs dur >= 0: {event}")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            raise AssertionError(f"instant event needs a scope: {event}")
        categories[event["cat"]] = categories.get(event["cat"], 0) + 1

    if not thread_names:
        raise AssertionError("no thread_name metadata (tracks) in trace")
    missing = REQUIRED_CATEGORIES - set(categories)
    if missing:
        raise AssertionError(
            f"trace covers {sorted(categories)} but lacks {sorted(missing)}"
        )
    return categories


def check_prometheus(path: str) -> int:
    """Validate the text snapshot; returns the number of sample lines."""
    with open(path) as handle:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    if not lines:
        raise AssertionError("prometheus snapshot is empty")
    samples = 0
    bucket_state: dict = {}
    for line in lines:
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                raise AssertionError(f"malformed TYPE line: {line}")
            continue
        if line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise AssertionError(f"malformed sample line: {line}")
        if value not in ("+Inf", "-Inf"):
            float(value)  # raises on malformed numbers
        samples += 1
        if "_bucket{" in name:
            metric = name.split("_bucket{", 1)[0]
            count = float(value)
            if count < bucket_state.get(metric, 0.0):
                raise AssertionError(f"non-cumulative buckets for {metric}")
            bucket_state[metric] = count
    if samples == 0:
        raise AssertionError("prometheus snapshot has no samples")
    return samples


def main(argv) -> int:
    if not argv:
        print("usage: check_trace.py TRACE_JSON [METRICS_PROM]", file=sys.stderr)
        return 2
    try:
        categories = check_chrome_trace(argv[0])
        print(f"trace ok: {sum(categories.values())} events, "
              f"categories {dict(sorted(categories.items()))}")
        if len(argv) > 1:
            samples = check_prometheus(argv[1])
            print(f"metrics ok: {samples} samples")
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Metrics registry correctness: counters, gauges, histograms.

The histogram percentile tests compare against an exact nearest-rank
oracle over the sorted samples; the fixed-bucket estimate must land
within one bucket of the truth (the bucket ratio is ~1.78).
"""

import math
import random

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: consecutive default bounds are a factor ~1.78 apart, so a bucketed
#: percentile can be off by at most that ratio on either side
BUCKET_RATIO = 1.79


def exact_percentile(samples, pct):
    """Nearest-rank percentile on the raw samples (the oracle)."""
    ordered = sorted(samples)
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[max(0, min(len(ordered) - 1, rank - 1))]


def test_counter_monotonic():
    counter = Counter("x")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_last_write_wins():
    gauge = Gauge("g")
    gauge.set(10.0)
    gauge.inc(5.0)
    gauge.dec(2.0)
    assert gauge.value == 13.0


def test_histogram_basic_stats():
    hist = Histogram("h")
    for value in (0.001, 0.002, 0.004):
        hist.observe(value)
    assert hist.count == 3
    assert hist.min == 0.001
    assert hist.max == 0.004
    assert hist.mean == pytest.approx(0.007 / 3)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 1.0))


def test_percentile_bounds_checked():
    hist = Histogram("h")
    with pytest.raises(ValueError):
        hist.percentile(0.0)
    with pytest.raises(ValueError):
        hist.percentile(101.0)
    assert hist.percentile(99.0) == 0.0  # empty histogram is all zeros


def test_percentiles_track_exact_oracle_on_seeded_samples():
    rng = random.Random(20260806)
    # log-uniform latencies across four decades, like real tail data
    samples = [10.0 ** rng.uniform(-5.0, -1.0) for _ in range(5000)]
    hist = Histogram("lat")
    for value in samples:
        hist.observe(value)
    for pct in (50.0, 90.0, 99.0, 99.9):
        oracle = exact_percentile(samples, pct)
        estimate = hist.percentile(pct)
        assert oracle / BUCKET_RATIO <= estimate <= oracle * BUCKET_RATIO, (
            f"p{pct}: estimate {estimate} vs oracle {oracle}"
        )


def test_percentile_clamps_to_observed_range():
    hist = Histogram("h")
    for _ in range(100):
        hist.observe(0.0042)  # all mass in one bucket
    assert hist.percentile(50.0) == pytest.approx(0.0042)
    assert hist.percentile(99.9) == pytest.approx(0.0042)


def test_percentile_overflow_bucket():
    hist = Histogram("h", bounds=(1.0, 2.0))
    hist.observe(50.0)
    hist.observe(60.0)
    estimate = hist.percentile(99.0)
    assert 2.0 <= estimate <= 60.0


def test_merge_is_associative():
    rng = random.Random(7)
    chunks = [
        [10.0 ** rng.uniform(-6.0, 0.0) for _ in range(400)] for _ in range(3)
    ]

    def hist_of(values):
        hist = Histogram("h")
        for value in values:
            hist.observe(value)
        return hist

    # (a + b) + c
    left = hist_of(chunks[0])
    left.merge(hist_of(chunks[1]))
    left.merge(hist_of(chunks[2]))
    # a + (b + c)
    tail = hist_of(chunks[1])
    tail.merge(hist_of(chunks[2]))
    right = hist_of(chunks[0])
    right.merge(tail)
    # and the single-pass reference
    flat = hist_of([value for chunk in chunks for value in chunk])

    for other in (right, flat):
        assert left.bucket_counts == other.bucket_counts
        assert left.count == other.count
        assert left.sum == pytest.approx(other.sum)
        assert left.min == other.min
        assert left.max == other.max
        for pct in (50.0, 90.0, 99.0):
            assert left.percentile(pct) == pytest.approx(other.percentile(pct))


def test_merge_requires_identical_bounds():
    a = Histogram("a", bounds=(1.0, 2.0))
    b = Histogram("b", bounds=(1.0, 3.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_registry_get_or_create_and_merge():
    registry = MetricsRegistry()
    registry.counter("c").inc(3.0)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(0.01)
    assert registry.counter("c") is registry.counter("c")

    other = MetricsRegistry()
    other.counter("c").inc(2.0)
    other.gauge("g").set(9.0)
    other.histogram("h").observe(0.02)
    registry.merge(other)
    assert registry.counter("c").value == 5.0
    assert registry.gauge("g").value == 9.0
    assert registry.histogram("h").count == 2


def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("txn.commit").inc(7.0)
    registry.histogram("lat").observe(0.005)
    snap = registry.snapshot()
    assert snap["counters"]["txn.commit"] == 7.0
    lat = snap["histograms"]["lat"]
    assert lat["count"] == 1.0
    for key in ("mean", "min", "max", "p50", "p90", "p99", "p999"):
        assert key in lat
    # empty histograms report count/mean only, no bogus min/max
    registry.histogram("empty")
    snap = registry.snapshot()
    assert snap["histograms"]["empty"] == {"count": 0.0, "mean": 0.0}


def test_default_bounds_are_sane():
    assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)
    assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-6)
    assert DEFAULT_LATENCY_BOUNDS[-1] > 100.0

"""The CI schema checker accepts real exports and rejects broken ones."""

import json

import pytest

from repro.obs import Observer, write_chrome_trace, write_prometheus
from tests.obs.check_trace import check_chrome_trace, check_prometheus, main


def full_observer():
    obs = Observer(clock=lambda: 0.0)
    obs.complete("txn", "engine", 0.0, 0.5, track="engine")
    obs.complete("ship", "replication", 0.5, 0.6, track="replica:0")
    obs.complete("call", "client", 0.0, 0.7, track="client")
    obs.event("fault.bite", "chaos", ts=0.2, track="chaos")
    obs.count("engine.txn.commit")
    obs.observe("repl.lag_s", 0.1)
    obs.observe("repl.lag_s", 0.3)
    return obs


def test_checker_accepts_valid_exports(tmp_path, capsys):
    obs = full_observer()
    trace = tmp_path / "t.json"
    prom = tmp_path / "m.prom"
    write_chrome_trace(obs, str(trace))
    write_prometheus(obs, str(prom))

    categories = check_chrome_trace(str(trace))
    assert categories["engine"] == 1 and categories["chaos"] == 1
    assert check_prometheus(str(prom)) > 0
    assert main([str(trace), str(prom)]) == 0
    assert "trace ok" in capsys.readouterr().out


def test_checker_rejects_missing_layer(tmp_path):
    obs = Observer(clock=lambda: 0.0)
    obs.complete("txn", "engine", 0.0, 0.5)  # engine only
    trace = tmp_path / "t.json"
    write_chrome_trace(obs, str(trace))
    with pytest.raises(AssertionError, match="lacks"):
        check_chrome_trace(str(trace))


def test_checker_rejects_malformed_documents(tmp_path):
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"traceEvents": []}))
    with pytest.raises(AssertionError, match="no events"):
        check_chrome_trace(str(empty))

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    with pytest.raises(AssertionError, match="missing"):
        check_chrome_trace(str(bad))

    prom = tmp_path / "bad.prom"
    prom.write_text("# TYPE weird summary\n")
    with pytest.raises(AssertionError, match="malformed TYPE"):
        check_prometheus(str(prom))


def test_checker_cli_exit_codes(tmp_path, capsys):
    assert main([]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": []}))
    assert main([str(bad)]) == 1
    assert "FAIL" in capsys.readouterr().err

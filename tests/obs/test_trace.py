"""Tracer semantics: nesting, ring buffer, clocks, no-op fast path."""

import pytest

from repro.obs.observer import NULL_OBSERVER, Observer, _NullObserver
from repro.obs.trace import NOOP_SPAN, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_nested_spans_link_parents():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("outer", "engine") as outer:
        clock.now = 1.0
        with tracer.span("inner", "engine"):
            clock.now = 2.0
        clock.now = 3.0
    spans = list(tracer.spans())
    assert [span.name for span in spans] == ["inner", "outer"]
    inner, outer_span = spans
    assert inner.parent_id == outer.span_id
    assert outer_span.parent_id is None
    assert inner.start_s == 1.0 and inner.end_s == 2.0
    assert outer_span.duration_s == 3.0


def test_span_records_error_attr():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("boom", "engine"):
            raise RuntimeError("nope")
    (span,) = tracer.spans()
    assert span.attrs["error"] == "RuntimeError"


def test_explicit_timestamps_and_parents():
    tracer = Tracer(clock=FakeClock())
    parent = tracer.add_complete("ship", "replication", 1.0, 2.0, track="replica:0")
    child = tracer.add_complete(
        "replay", "replication", 2.0, 3.0, parent=parent, track="replica:0"
    )
    assert child != parent
    replay = tracer.find(name="replay")[0]
    assert replay.parent_id == parent
    assert replay.track == "replica:0"


def test_instant_events():
    tracer = Tracer(clock=FakeClock())
    tracer.instant("fault.bite", "chaos", ts=5.0, attrs={"kind": "partition"})
    (span,) = tracer.spans()
    assert span.kind == "instant"
    assert span.start_s == span.end_s == 5.0
    assert span.track == "chaos"  # track defaults to category


def test_ring_buffer_drops_oldest():
    tracer = Tracer(clock=FakeClock(), capacity=3)
    for index in range(5):
        tracer.add_complete(f"s{index}", "x", float(index), float(index))
    assert len(tracer) == 3
    assert tracer.recorded == 5
    assert tracer.dropped == 2
    assert [span.name for span in tracer.spans()] == ["s2", "s3", "s4"]


def test_disabled_tracer_is_noop():
    tracer = Tracer(clock=FakeClock(), enabled=False)
    assert tracer.span("a", "b") is NOOP_SPAN
    with tracer.span("a", "b") as span:
        span.set("k", "v")
    assert tracer.add_complete("a", "b", 0.0, 1.0) == 0
    assert tracer.instant("a", "b") == 0
    assert len(tracer) == 0 and tracer.recorded == 0


def test_observer_clock_rebinding():
    obs = Observer(clock=lambda: 1.0)
    assert obs.now() == 1.0
    obs.bind_clock(lambda: 42.0)
    assert obs.now() == 42.0
    obs.complete("x", "engine", obs.now(), obs.now())
    (span,) = obs.tracer.spans()
    assert span.start_s == 42.0


def test_null_observer_is_inert():
    assert isinstance(NULL_OBSERVER, _NullObserver)
    assert not NULL_OBSERVER.enabled
    NULL_OBSERVER.count("x")
    NULL_OBSERVER.gauge("x", 1.0)
    NULL_OBSERVER.observe("x", 1.0)
    assert NULL_OBSERVER.span("x", "y") is NOOP_SPAN
    assert NULL_OBSERVER.complete("x", "y", 0.0, 1.0) == 0
    assert NULL_OBSERVER.event("x", "y") == 0
    assert NULL_OBSERVER.now() == 0.0
    assert NULL_OBSERVER.metrics.counters == {}
    assert len(NULL_OBSERVER.tracer) == 0


def test_observer_snapshot():
    obs = Observer(clock=lambda: 0.0)
    obs.count("c", 2.0)
    obs.observe("h", 0.5)
    obs.complete("x", "engine", 0.0, 1.0)
    snap = obs.snapshot()
    assert snap["enabled"] is True
    assert snap["metrics"]["counters"]["c"] == 2.0
    assert snap["trace"] == {"spans": 1, "recorded": 1, "dropped": 0}


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)

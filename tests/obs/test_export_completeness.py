"""Every registered signal reaches every exporter.

The regression these tests pin: a metric that exists in the registry
but never shows up in an export is invisible to dashboards, and a
tracer that silently dropped spans looks identical to a quiet run.
The contract is *completeness* -- the Prometheus snapshot and the JSONL
dump each carry every counter, gauge and histogram in the registry plus
the tracer's own recorded/dropped accounting -- and *eagerness*: hot
components register their series at construction, so a zero-traffic run
still exports the series (at zero) instead of omitting them.
"""

import io
import json

from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema
from repro.obs.export import (
    metrics_to_prometheus,
    observer_to_jsonl,
    write_prometheus,
)
from repro.obs.export import _prom_name
from repro.obs.observer import Observer
from repro.qos.admission import AdmissionController, AdmissionPolicy
from repro.shard.coordinator import TxnCoordinator


def busy_observer():
    obs = Observer(clock=lambda: 0.0, trace_capacity=4)
    obs.count("engine.txn.commit", 3)
    obs.gauge("qos.limit", 8.0)
    obs.observe("repl.lag_s", 0.25)
    for index in range(9):  # capacity 4: forces drops
        obs.event(f"tick.{index}", "test", ts=float(index), track="test")
    return obs


# -- registry -> exporter diff ------------------------------------------------


class TestExportCompleteness:
    def test_prometheus_carries_every_registered_metric(self):
        obs = busy_observer()
        text = metrics_to_prometheus(obs.metrics, tracer=obs.tracer)
        exported = {
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE")
        }
        registry = obs.metrics
        expected = (
            {_prom_name(name) + "_total" for name in registry.counters}
            | {_prom_name(name) for name in registry.gauges}
            | {_prom_name(name) for name in registry.histograms}
        )
        missing = expected - exported
        assert not missing, f"registered but not exported: {sorted(missing)}"

    def test_jsonl_trailer_carries_every_registered_metric(self):
        obs = busy_observer()
        out = io.StringIO()
        observer_to_jsonl(obs, out)
        trailer = json.loads(out.getvalue().splitlines()[-1])
        assert trailer["kind"] == "metrics"
        assert set(trailer["counters"]) == set(obs.metrics.counters)
        assert set(trailer["gauges"]) == set(obs.metrics.gauges)
        assert set(trailer["histograms"]) == set(obs.metrics.histograms)


# -- tracer self-accounting ----------------------------------------------------


class TestTracerAccounting:
    def test_prometheus_exposes_recorded_and_dropped(self):
        obs = busy_observer()
        assert obs.tracer.dropped > 0  # the premise: the buffer overflowed
        text = metrics_to_prometheus(obs.metrics, tracer=obs.tracer)
        lines = dict(
            line.split() for line in text.splitlines()
            if not line.startswith("#") and "{" not in line
        )
        assert float(lines["tracer_spans_recorded_total"]) == obs.tracer.recorded
        assert float(lines["tracer_spans_dropped_total"]) == obs.tracer.dropped

    def test_registry_only_snapshot_omits_tracer_series(self):
        obs = busy_observer()
        text = metrics_to_prometheus(obs.metrics)
        assert "tracer_spans" not in text

    def test_write_prometheus_includes_tracer_for_observers(self, tmp_path):
        obs = busy_observer()
        text = write_prometheus(obs, str(tmp_path / "metrics.prom"))
        assert "tracer_spans_dropped_total" in text

    def test_jsonl_trailer_reports_drops(self):
        obs = busy_observer()
        out = io.StringIO()
        observer_to_jsonl(obs, out)
        trailer = json.loads(out.getvalue().splitlines()[-1])
        assert trailer["trace"]["recorded"] == obs.tracer.recorded
        assert trailer["trace"]["dropped"] == obs.tracer.dropped
        assert trailer["trace"]["capacity"] == 4


# -- eager registration: series exist before any traffic ----------------------


class TestEagerRegistration:
    def test_plan_cache_counters_exist_before_first_prepare(self):
        obs = Observer(clock=lambda: 0.0)
        Database("db", observer=obs)
        for event in ("hit", "miss", "evict"):
            name = f"engine.sql.plan_cache.{event}"
            assert name in obs.metrics.counters
            assert obs.metrics.counters[name].value == 0.0

    def test_admission_depth_gauges_exist_per_priority(self):
        obs = Observer(clock=lambda: 0.0)
        AdmissionController(
            AdmissionPolicy(priorities=3), observer=obs
        )
        for priority in range(3):
            assert f"qos.queue_depth.p{priority}" in obs.metrics.gauges

    def test_2pc_counters_exist_before_first_commit(self):
        obs = Observer(clock=lambda: 0.0)
        TxnCoordinator([Database("s0", observer=obs)], observer=obs)
        for event in ("prepare", "cross_shard", "abort", "dangling"):
            assert f"shard.2pc.{event}" in obs.metrics.counters

    def test_null_observer_registers_nothing(self):
        db = Database("db")
        db.create_table(Schema(
            "T", (Column("ID", ColumnType.INT, nullable=False),),
            primary_key="ID",
        ))
        db.prepare("SELECT * FROM t WHERE ID = ?")
        assert db._c_plan is None
        assert db.plan_cache_misses > 0  # plain attributes still count


# -- per-priority depth gauges track the queues --------------------------------


class TestPriorityDepthGauges:
    def test_gauges_follow_enqueue_and_pop(self):
        obs = Observer(clock=lambda: 0.0)
        controller = AdmissionController(
            AdmissionPolicy(priorities=2, initial_limit=1.0, min_limit=1.0),
            observer=obs,
        )
        controller.try_acquire(now=0.0)  # saturate the limit
        controller.enqueue("a", now=0.0, priority=0)
        controller.enqueue("b", now=0.0, priority=1)
        controller.enqueue("c", now=0.0, priority=1)
        gauges = obs.metrics.gauges
        assert gauges["qos.queue_depth.p0"].value == 1.0
        assert gauges["qos.queue_depth.p1"].value == 2.0
        assert gauges["qos.queue_depth"].value == 3.0
        controller.release(now=0.1, latency_s=0.1)
        assert controller.next_ready(now=0.1).item == "a"
        assert gauges["qos.queue_depth.p0"].value == 0.0
        assert gauges["qos.queue_depth.p1"].value == 2.0

"""Statements against a dead shard surface as retryable
``ShardUnavailableError``, never as the engine's ``SimulatedCrash``."""

import pytest

from repro.engine.errors import (
    NodeUnavailableError,
    ShardUnavailableError,
    SimulatedCrash,
)

from tests.shard.test_2pc import load_keys
from tests.shard.test_router import kv_fleet


def dead_fleet(n_shards=3, victim=1):
    fleet = kv_fleet(n_shards)
    by_shard = load_keys(fleet)
    fleet.shards[victim].wal.kill()
    return fleet, by_shard


class TestSingleShardStatements:
    def test_routed_write_raises_retryable(self):
        fleet, by_shard = dead_fleet()
        with pytest.raises(ShardUnavailableError) as exc:
            fleet.execute("UPDATE kv SET V = ? WHERE K = ?", [1, by_shard[1][0]])
        assert exc.value.retryable
        assert exc.value.shard_id == 1
        # the engine internal is chained, not leaked
        assert isinstance(exc.value.__cause__, SimulatedCrash)

    def test_routed_read_raises_retryable(self):
        fleet, by_shard = dead_fleet()
        with pytest.raises(ShardUnavailableError):
            fleet.execute("SELECT V FROM kv WHERE K = ?", [by_shard[1][0]])

    def test_healthy_shards_keep_serving(self):
        fleet, by_shard = dead_fleet()
        for shard_id in (0, 2):
            result = fleet.execute(
                "SELECT V FROM kv WHERE K = ?", [by_shard[shard_id][0]]
            )
            assert result.rows[0][0] == 0


class TestFanOut:
    def test_fanout_read_raises_retryable(self):
        """The regression: a scatter SELECT touching the dead shard used
        to leak ``SimulatedCrash`` out of the fan-out loop."""
        fleet, _by_shard = dead_fleet()
        with pytest.raises(ShardUnavailableError) as exc:
            fleet.execute("SELECT V FROM kv WHERE V = ?", [0])
        assert exc.value.retryable

    def test_fanout_write_raises_retryable(self):
        fleet, _by_shard = dead_fleet()
        with pytest.raises(ShardUnavailableError):
            fleet.execute("UPDATE kv SET V = ? WHERE V = ?", [1, 0])

    def test_classifies_for_the_breaker(self):
        # ShardUnavailableError must count as a node-health error so the
        # resilience stack's circuit breakers trip on it
        fleet, by_shard = dead_fleet()
        with pytest.raises(NodeUnavailableError):
            fleet.execute("SELECT V FROM kv WHERE K = ?", [by_shard[1][0]])


class TestInsideGlobalTransactions:
    def test_statement_on_dead_shard_mid_gtxn(self):
        fleet, by_shard = dead_fleet()
        gtxn = fleet.begin()
        fleet.execute(
            "UPDATE kv SET V = ? WHERE K = ?", [1, by_shard[0][0]], gtxn=gtxn
        )
        with pytest.raises(ShardUnavailableError):
            fleet.execute(
                "UPDATE kv SET V = ? WHERE K = ?", [1, by_shard[1][0]], gtxn=gtxn
            )
        gtxn.rollback()

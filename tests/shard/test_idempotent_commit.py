"""Retried commits are idempotent by gtid.

The regression: a client whose first commit lost its ack to a
coordinator crash replays the transaction under the same gtid.  The
writes are arithmetic (``V = V + 10``), so re-applying them is visible
-- without the DECISION-union check in ``commit_many`` the retry would
double-apply on every shard.
"""

import pytest

from repro.engine.errors import SimulatedCrash
from repro.shard import CoordinatorCrash

from tests.shard.test_2pc import load_keys, value_of
from tests.shard.test_router import kv_fleet

INCREMENT = "UPDATE kv SET V = V + ? WHERE K = ?"


def crashed_commit(fleet, by_shard, phase):
    """Drive one increment on every shard into a coordinator crash at
    ``phase``; returns the gtid the client would retry with."""
    fleet.coordinator.arm_crash(phase)
    gtxn = fleet.begin()
    for keys in by_shard:
        fleet.execute(INCREMENT, [10, keys[0]], gtxn=gtxn)
    with pytest.raises(SimulatedCrash):
        gtxn.commit()
    return gtxn.gtid


def retry(fleet, by_shard, gtid):
    """The client's replay: same writes, same gtid, fresh branches."""
    gtxn = fleet.begin(gtid=gtid)
    assert gtxn.is_retry
    for keys in by_shard:
        fleet.execute(INCREMENT, [10, keys[0]], gtxn=gtxn)
    gtxn.commit()
    return gtxn


class TestIdempotentCommit:
    def test_retry_after_decided_crash_does_not_double_apply(self):
        """The crash landed after the decision was durable: recovery
        commits the original, so the retry must be absorbed -- this is
        the case that double-applied before the gtid check."""
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        gtid = crashed_commit(fleet, by_shard, "after_decision")
        fleet.crash()
        fleet.recover()
        assert all(value_of(fleet, keys[0]) == 10 for keys in by_shard)
        retry(fleet, by_shard, gtid)
        # exactly once: 10, not 20
        assert all(value_of(fleet, keys[0]) == 10 for keys in by_shard)
        assert fleet.coordinator.idempotent_commits == 1

    def test_retry_after_undecided_crash_applies_once(self):
        """No durable decision: recovery presumed abort, so the retry is
        the first (and only) application."""
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        gtid = crashed_commit(fleet, by_shard, "after_prepare")
        fleet.crash()
        fleet.recover()
        assert all(value_of(fleet, keys[0]) == 0 for keys in by_shard)
        retry(fleet, by_shard, gtid)
        assert all(value_of(fleet, keys[0]) == 10 for keys in by_shard)
        assert fleet.coordinator.idempotent_commits == 0

    def test_double_retry_is_still_once(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        gtid = crashed_commit(fleet, by_shard, "after_decision")
        fleet.crash()
        fleet.recover()
        retry(fleet, by_shard, gtid)
        retry(fleet, by_shard, gtid)
        assert all(value_of(fleet, keys[0]) == 10 for keys in by_shard)
        assert fleet.coordinator.idempotent_commits == 2

    def test_fresh_gtids_are_not_absorbed(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        for _ in range(2):
            gtxn = fleet.begin()
            for keys in by_shard:
                fleet.execute(INCREMENT, [10, keys[0]], gtxn=gtxn)
            gtxn.commit()
        assert all(value_of(fleet, keys[0]) == 20 for keys in by_shard)
        assert fleet.coordinator.idempotent_commits == 0

    def test_crash_exception_is_a_simulated_crash(self):
        # the coordinator's own death surfaces as CoordinatorCrash, a
        # SimulatedCrash subtype: "outcome unknown", not "aborted"
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        fleet.coordinator.arm_crash("mid_commit")
        gtxn = fleet.begin()
        for keys in by_shard:
            fleet.execute(INCREMENT, [10, keys[0]], gtxn=gtxn)
        with pytest.raises(CoordinatorCrash):
            gtxn.commit()

"""Two-phase commit: atomicity, the fast path, and fsync accounting."""

import pytest

from repro.engine.errors import LockTimeoutError, TransactionAborted
from repro.engine.txn import TxnState
from repro.engine.wal import LogKind

from tests.shard.test_router import keys_on, kv_fleet


def load_keys(fleet, per_shard=4):
    """Insert ``per_shard`` rows owned by each shard; returns keys by shard."""
    by_shard = [
        keys_on(fleet, shard_id, per_shard) for shard_id in range(fleet.n_shards)
    ]
    for keys in by_shard:
        for key in keys:
            fleet.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, 0])
    return by_shard


def value_of(fleet, key):
    return fleet.query("SELECT V FROM kv WHERE K = ?", [key]).scalar()


class TestCrossShardCommit:
    def test_commit_applies_on_all_participants(self):
        fleet = kv_fleet(3)
        by_shard = load_keys(fleet)
        with fleet.begin() as gtxn:
            for keys in by_shard:
                fleet.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [7, keys[0]], gtxn=gtxn
                )
            assert gtxn.is_cross_shard
            assert gtxn.participants == [0, 1, 2]
        assert gtxn.state is TxnState.COMMITTED
        assert all(value_of(fleet, keys[0]) == 7 for keys in by_shard)
        assert fleet.coordinator.cross_commits == 1

    def test_rollback_undoes_all_participants(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        gtxn = fleet.begin()
        for keys in by_shard:
            fleet.execute("UPDATE kv SET V = ? WHERE K = ?", [9, keys[0]], gtxn=gtxn)
        gtxn.rollback()
        assert gtxn.state is TxnState.ABORTED
        assert all(value_of(fleet, keys[0]) == 0 for keys in by_shard)

    def test_exception_in_context_manager_rolls_back(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        with pytest.raises(RuntimeError):
            with fleet.begin() as gtxn:
                for keys in by_shard:
                    fleet.execute(
                        "UPDATE kv SET V = ? WHERE K = ?", [9, keys[0]], gtxn=gtxn
                    )
                raise RuntimeError("application error")
        assert all(value_of(fleet, keys[0]) == 0 for keys in by_shard)

    def test_finished_global_txn_cannot_commit_again(self):
        fleet = kv_fleet(2)
        load_keys(fleet)
        gtxn = fleet.begin()
        gtxn.rollback()
        with pytest.raises(TransactionAborted):
            gtxn.commit()

    def test_prepare_failure_aborts_every_branch(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        blocker = fleet.begin()
        fleet.execute(
            "UPDATE kv SET V = ? WHERE K = ?", [1, by_shard[1][0]], gtxn=blocker
        )
        victim = fleet.begin()
        fleet.execute(
            "UPDATE kv SET V = ? WHERE K = ?", [2, by_shard[0][0]], gtxn=victim
        )
        with pytest.raises(LockTimeoutError):
            # second branch hits the blocker's X lock (no-wait policy)
            fleet.execute(
                "UPDATE kv SET V = ? WHERE K = ?", [2, by_shard[1][0]], gtxn=victim
            )
        victim.rollback()
        blocker.rollback()
        assert all(value_of(fleet, keys[0]) == 0 for keys in by_shard)
        assert fleet.coordinator.aborts >= 1

    def test_gtids_stay_unique_across_coordinator_restart(self):
        fleet = kv_fleet(2)
        load_keys(fleet)
        first = fleet.begin().gtid
        fleet.crash()
        fleet.recover()
        second = fleet.begin().gtid
        assert first != second


class TestFastPathAndFsyncs:
    def test_single_shard_txn_skips_prepare(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        with fleet.begin() as gtxn:
            fleet.execute(
                "UPDATE kv SET V = ? WHERE K = ?", [5, by_shard[0][0]], gtxn=gtxn
            )
            fleet.execute(
                "UPDATE kv SET V = ? WHERE K = ?", [5, by_shard[0][1]], gtxn=gtxn
            )
            assert not gtxn.is_cross_shard
        assert fleet.coordinator.single_commits == 1
        assert fleet.coordinator.cross_commits == 0
        kinds = [record.kind for record in fleet.shards[0].wal._records]
        assert LogKind.PREPARE not in kinds
        assert LogKind.DECISION not in kinds

    def test_single_shard_commit_costs_one_fsync(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        before = fleet.fsyncs
        with fleet.begin() as gtxn:
            fleet.execute(
                "UPDATE kv SET V = ? WHERE K = ?", [5, by_shard[0][0]], gtxn=gtxn
            )
        assert fleet.fsyncs - before == 1

    def test_cross_shard_commit_fsync_cost(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        before = fleet.fsyncs
        with fleet.begin() as gtxn:
            for keys in by_shard:
                fleet.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [5, keys[0]], gtxn=gtxn
                )
        # per participant: PREPARE + DECISION + COMMIT = 3 fsyncs
        assert fleet.fsyncs - before == 6

    def test_group_commit_amortizes_decision_fsyncs(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet, per_shard=6)
        batch = []
        for index in range(4):
            gtxn = fleet.begin()
            for keys in by_shard:
                fleet.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [index, keys[index]],
                    gtxn=gtxn,
                )
            batch.append(gtxn)
        before = fleet.fsyncs
        fleet.coordinator.commit_many(batch)
        assert all(gtxn.state is TxnState.COMMITTED for gtxn in batch)
        # 4 txns x 2 participants: 8 PREPAREs + 8 COMMITs, but the 8
        # DECISION records collapse to one group fsync per shard (2).
        assert fleet.fsyncs - before == 8 + 8 + 2

    def test_commit_many_mixes_fast_path_and_2pc(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        single = fleet.begin()
        fleet.execute(
            "UPDATE kv SET V = ? WHERE K = ?", [1, by_shard[0][0]], gtxn=single
        )
        cross = fleet.begin()
        for keys in by_shard:
            fleet.execute(
                "UPDATE kv SET V = ? WHERE K = ?", [2, keys[1]], gtxn=cross
            )
        fleet.coordinator.commit_many([single, cross])
        assert fleet.coordinator.single_commits == 1
        assert fleet.coordinator.cross_commits == 1
        assert value_of(fleet, by_shard[0][0]) == 1
        assert all(value_of(fleet, keys[1]) == 2 for keys in by_shard)

"""Routing and the fleet's SQL surface (fast path + scatter-gather)."""

import pytest

from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema
from repro.shard import ShardedDatabase, ShardError, ShardRouter, stable_hash


def kv_schema():
    return Schema(
        "KV",
        (
            Column("K", ColumnType.INT, nullable=False),
            Column("V", ColumnType.INT, default=0),
            Column("W", ColumnType.INT),
        ),
        primary_key="K",
    )


def kv_fleet(n_shards=2, **kwargs):
    fleet = ShardedDatabase(n_shards, **kwargs)
    fleet.create_table(kv_schema())
    return fleet


def keys_on(fleet, shard_id, count, start=0):
    """The first ``count`` integer keys owned by ``shard_id``."""
    found, key = [], start
    while len(found) < count:
        if fleet.router.shard_for("KV", key) == shard_id:
            found.append(key)
        key += 1
    return found


class TestStableHash:
    def test_deterministic_per_value(self):
        assert stable_hash(42) == stable_hash(42)
        assert stable_hash("abc") == stable_hash("abc")

    def test_distinguishes_values(self):
        hashes = {stable_hash(k) for k in range(100)}
        assert len(hashes) == 100

    def test_spreads_keys_over_shards(self):
        router = ShardRouter(4)
        router.register("KV", "K")
        owners = [router.shard_for("KV", k) for k in range(400)]
        for shard in range(4):
            assert owners.count(shard) > 50  # no starved shard


class TestShardRouter:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ShardError):
            ShardRouter(0)

    def test_unregistered_table_raises(self):
        router = ShardRouter(2)
        with pytest.raises(ShardError):
            router.shard_for("KV", 1)

    def test_shard_for_row_uses_partition_column(self):
        router = ShardRouter(3)
        router.register("KV", "W")  # partition by a non-pk column
        schema = kv_schema()
        row = (1, 2, 77)
        assert router.shard_for_row(schema, row) == router.shard_for("KV", 77)

    def test_routes_pk_equality_select(self):
        fleet = kv_fleet(4)
        prepared = fleet.shards[0].prepare("SELECT * FROM kv WHERE K = ?")
        shard = fleet.router.route_statement(
            prepared.statement, [17], prepared.table.schema
        )
        assert shard == fleet.router.shard_for("KV", 17)

    def test_non_partition_predicates_fan_out(self):
        fleet = kv_fleet(4)
        for sql, params in (
            ("SELECT * FROM kv", []),
            ("SELECT * FROM kv WHERE V = ?", [1]),
            ("SELECT * FROM kv WHERE K > ?", [1]),  # range, not equality
            ("UPDATE kv SET V = ? WHERE V = ?", [1, 2]),
            ("DELETE FROM kv WHERE W = ?", [3]),
        ):
            prepared = fleet.shards[0].prepare(sql)
            assert fleet.router.route_statement(
                prepared.statement, params, prepared.table.schema
            ) is None

    def test_insert_routes_by_partition_value(self):
        fleet = kv_fleet(4)
        for sql, params in (
            ("INSERT INTO kv (K, V) VALUES (?, ?)", [9, 1]),
            ("INSERT INTO kv VALUES (9, 1, 2)", []),
        ):
            prepared = fleet.shards[0].prepare(sql)
            assert fleet.router.route_statement(
                prepared.statement, params, prepared.table.schema
            ) == fleet.router.shard_for("KV", 9)

    def test_insert_without_partition_value_raises(self):
        fleet = kv_fleet(4)
        prepared = fleet.shards[0].prepare("INSERT INTO kv (V, W) VALUES (?, ?)")
        with pytest.raises(ShardError):
            fleet.router.route_statement(
                prepared.statement, [1, 2], prepared.table.schema
            )


class TestFleetSql:
    def load(self, n_shards=3, rows=30):
        fleet = kv_fleet(n_shards)
        reference = Database("ref")
        reference.create_table(kv_schema())
        for k in range(rows):
            w = None if k % 5 == 0 else k * 10
            fleet.execute("INSERT INTO kv VALUES (?, ?, ?)", [k, k % 7, w])
            reference.execute("INSERT INTO kv VALUES (?, ?, ?)", [k, k % 7, w])
        return fleet, reference

    def test_rows_are_spread_and_complete(self):
        fleet, reference = self.load()
        assert fleet.total_rows() == reference.total_rows()
        assert all(shard.total_rows() > 0 for shard in fleet.shards)
        assert fleet.all_rows("KV") == sorted(
            row for _rid, row in reference.table("KV").scan()
        )

    def test_point_read_matches_reference(self):
        fleet, reference = self.load()
        for k in (0, 7, 29):
            assert (
                fleet.query("SELECT V FROM kv WHERE K = ?", [k]).rows
                == reference.query("SELECT V FROM kv WHERE K = ?", [k]).rows
            )

    def test_fanout_aggregates_merge(self):
        fleet, reference = self.load()
        for sql in (
            "SELECT COUNT(*) FROM kv",
            "SELECT SUM(V) FROM kv",
            "SELECT MIN(V), MAX(V) FROM kv",
            "SELECT COUNT(*), SUM(K) FROM kv WHERE V = 3",
        ):
            assert fleet.query(sql).rows == reference.query(sql).rows

    def test_fanout_order_by_limit_nulls_last(self):
        fleet, reference = self.load()
        sql = "SELECT K, W FROM kv ORDER BY W DESC LIMIT 7"
        assert fleet.query(sql).rows == reference.query(sql).rows
        sql = "SELECT K, W FROM kv ORDER BY W"
        got = fleet.query(sql).rows
        want = reference.query(sql).rows
        # NULL ties carry no defined order; compare the tail as a set
        assert got[:-6] == want[:-6]
        assert set(got[-6:]) == set(want[-6:])
        assert all(row[1] is None for row in got[-6:])  # NULLS LAST

    def test_fanout_group_by_raises(self):
        fleet, _ = self.load()
        with pytest.raises(ShardError):
            fleet.query("SELECT V, COUNT(*) FROM kv GROUP BY V")

    def test_fanout_order_by_unprojected_column_raises(self):
        fleet, _ = self.load()
        with pytest.raises(ShardError):
            fleet.query("SELECT K FROM kv ORDER BY W")

    def test_count_distinct_is_not_decomposable(self):
        fleet, _ = self.load()
        with pytest.raises(ShardError):
            fleet.query("SELECT COUNT(DISTINCT V) FROM kv")

    def test_query_rejects_writes(self):
        fleet, _ = self.load()
        with pytest.raises(ShardError):
            fleet.query("DELETE FROM kv WHERE K = 1")

    def test_fanout_update_applies_everywhere(self):
        fleet, reference = self.load()
        fleet.execute("UPDATE kv SET V = V + ? WHERE V = ?", [100, 3])
        reference.execute("UPDATE kv SET V = V + ? WHERE V = ?", [100, 3])
        assert fleet.all_rows("KV") == sorted(
            row for _rid, row in reference.table("KV").scan()
        )

    def test_fanout_delete_applies_everywhere(self):
        fleet, reference = self.load()
        assert (
            fleet.execute("DELETE FROM kv WHERE V = ?", [2]).rowcount
            == reference.execute("DELETE FROM kv WHERE V = ?", [2]).rowcount
        )
        assert fleet.total_rows() == reference.total_rows()

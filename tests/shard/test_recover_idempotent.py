"""``fleet.recover()`` converges no matter how often or when it runs."""

import pytest

from repro.engine.errors import ShardUnavailableError, SimulatedCrash

from tests.shard.test_2pc import load_keys, value_of
from tests.shard.test_router import kv_fleet


def crash_mid_protocol(fleet, by_shard, phase="mid_decision"):
    fleet.coordinator.arm_crash(phase)
    gtxn = fleet.begin()
    for keys in by_shard:
        fleet.execute("UPDATE kv SET V = ? WHERE K = ?", [99, keys[0]], gtxn=gtxn)
    with pytest.raises(SimulatedCrash):
        gtxn.commit()


class TestRecoverIdempotence:
    def test_recover_twice_converges(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        crash_mid_protocol(fleet, by_shard)
        fleet.crash()
        first = fleet.recover()
        values_first = [value_of(fleet, keys[0]) for keys in by_shard]
        second = fleet.recover()
        values_second = [value_of(fleet, keys[0]) for keys in by_shard]
        assert values_first == values_second == [99, 99]
        assert first.decided_gtids == second.decided_gtids
        # branches resolved by the first pass are winners to the second
        assert second.resolved_commit == 0

    def test_recover_healthy_fleet_is_harmless(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        with fleet.begin() as gtxn:
            for keys in by_shard:
                fleet.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [7, keys[0]], gtxn=gtxn
                )
        fleet.recover()
        assert [value_of(fleet, keys[0]) for keys in by_shard] == [7, 7]

    def test_recover_disarms_pending_wal_crash_point(self):
        """A fault armed but unfired must not detonate inside recovery
        -- and must stay disarmed for the traffic that follows."""
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        fleet.shards[0].wal.arm_crash(
            fleet.shards[0].wal.last_lsn + 3, mode="before"
        )
        fleet.crash()
        fleet.recover()
        fleet.execute("UPDATE kv SET V = ? WHERE K = ?", [5, by_shard[0][0]])
        assert value_of(fleet, by_shard[0][0]) == 5

    def test_recover_after_participant_death_and_retry(self):
        """The full outage loop: participant dies mid-statement, the
        client sees a retryable error, recovery revives the shard, the
        retried statement lands -- and a second recover changes nothing."""
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        fleet.shards[0].wal.kill()
        with pytest.raises(ShardUnavailableError):
            fleet.execute("UPDATE kv SET V = ? WHERE K = ?", [3, by_shard[0][0]])
        fleet.recover()
        fleet.execute("UPDATE kv SET V = ? WHERE K = ?", [3, by_shard[0][0]])
        fleet.recover()
        assert value_of(fleet, by_shard[0][0]) == 3

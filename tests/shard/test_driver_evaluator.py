"""Load drivers and the ``scaleout-real`` evaluator wiring."""

import pytest

from repro.core.config import BenchConfig
from repro.core.evalapi import get_evaluator
from repro.core.runner import CloudyBench
from repro.shard import ShardError, run_inline, run_multiprocess


class TestInlineDriver:
    def test_deterministic_for_a_seed(self):
        first = run_inline(2, 40, cross_ratio=0.3, seed=11)
        second = run_inline(2, 40, cross_ratio=0.3, seed=11)
        assert first.committed == second.committed
        assert first.aborted == second.aborted
        assert first.cross_committed == second.cross_committed
        assert first.fsyncs == second.fsyncs

    def test_cross_ratio_zero_never_runs_2pc(self):
        result = run_inline(3, 40, cross_ratio=0.0, seed=11)
        assert result.cross_committed == 0
        assert result.committed == 40

    def test_cross_ratio_one_always_runs_2pc(self):
        result = run_inline(3, 40, cross_ratio=1.0, seed=11)
        assert result.cross_committed == result.committed == 40

    def test_cross_shard_costs_more_fsyncs(self):
        local = run_inline(2, 40, cross_ratio=0.0, seed=11)
        distributed = run_inline(2, 40, cross_ratio=1.0, seed=11)
        assert distributed.fsyncs > local.fsyncs

    def test_single_shard_fleet_accepts_any_cross_ratio(self):
        # with one shard there is no "other" shard: all txns are local
        result = run_inline(1, 20, cross_ratio=1.0, seed=11)
        assert result.cross_committed == 0
        assert result.committed == 20


class TestMultiprocessDriver:
    def test_rejects_cross_shard(self):
        with pytest.raises(ShardError):
            run_multiprocess(2, 10, cross_ratio=0.5)

    def test_splits_transactions_across_shards(self):
        result = run_multiprocess(3, 50, seed=11)
        assert result.committed == 50
        assert [entry["transactions"] for entry in result.per_shard] == [17, 17, 16]
        assert sum(entry["committed"] for entry in result.per_shard) == 50

    def test_worker_results_identical_with_and_without_processes(self):
        forked = run_multiprocess(2, 30, seed=11, processes=True)
        sequential = run_multiprocess(2, 30, seed=11, processes=False)
        for key in ("committed", "aborted", "fsyncs", "loaded_rows"):
            assert getattr(forked, key) == getattr(sequential, key)
        assert [e["committed"] for e in forked.per_shard] == [
            e["committed"] for e in sequential.per_shard
        ]

    def test_node_time_is_max_worker_cpu(self):
        result = run_multiprocess(2, 30, seed=11, processes=False)
        assert result.node_s == max(e["cpu_s"] for e in result.per_shard)
        assert result.tps_node > 0


class TestScaleoutEvaluator:
    def make_bench(self):
        config = BenchConfig.quick()
        config.shard_txns = 40
        return CloudyBench(config)

    def test_registered_with_options(self):
        spec = get_evaluator("scaleout-real")
        assert {option.name for option in spec.options} == {
            "shards", "cross", "txns", "driver", "arrival", "transport"
        }

    def test_outcome_shape_and_scores(self):
        bench = self.make_bench()
        outcome = bench.run("scaleout-real")
        assert [row[0] for row in outcome.rows] == [1, 2]
        assert outcome.scores["scaleout.speedup@1"] == 1.0
        assert "scaleout.tps@2" in outcome.scores
        # the modelled E2-curve column rides along for comparison
        assert outcome.headers.index("modelled") >= 0

    def test_option_coercion_and_caching(self):
        bench = self.make_bench()
        first = bench.run("scaleout-real", shards="1,2", cross="0.0", txns="30")
        second = bench.run("scaleout-real", shards=[1, 2], cross=0.0, txns=30)
        assert first.payload is second.payload  # same cache entry

    def test_unknown_option_rejected(self):
        bench = self.make_bench()
        with pytest.raises(TypeError):
            bench.run("scaleout-real", bogus=1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BenchConfig(shard_counts=[])
        with pytest.raises(ValueError):
            BenchConfig(shard_cross_ratio=1.5)
        with pytest.raises(ValueError):
            BenchConfig(shard_driver="threads")

"""Coordinator crashes at every 2PC phase boundary: recovery must leave
no shard divergent -- every global transaction is all-or-nothing."""

import pytest

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.engine.errors import EngineError, SimulatedCrash
from repro.shard import PHASES, ShardSalesWorkload, load_sales_fleet

from tests.shard.test_2pc import load_keys, value_of
from tests.shard.test_router import kv_fleet

#: phases where the commit decision is already durable somewhere
_DECIDED_PHASES = ("mid_decision", "after_decision", "mid_commit", "after_commit")


def run_to_crash(fleet, by_shard, phase):
    """Arm ``phase``, drive one cross-shard write, expect the crash."""
    fleet.coordinator.arm_crash(phase)
    gtxn = fleet.begin()
    for keys in by_shard:
        fleet.execute("UPDATE kv SET V = ? WHERE K = ?", [99, keys[0]], gtxn=gtxn)
    with pytest.raises(SimulatedCrash):
        gtxn.commit()


class TestCrashAtEveryPhase:
    @pytest.mark.parametrize("phase", PHASES)
    def test_no_shard_diverges(self, phase):
        fleet = kv_fleet(3)
        by_shard = load_keys(fleet)
        run_to_crash(fleet, by_shard, phase)
        fleet.crash()
        report = fleet.recover()
        values = [value_of(fleet, keys[0]) for keys in by_shard]
        # all-or-nothing: every branch applied, or none
        assert values == [99, 99, 99] or values == [0, 0, 0]
        # presumed abort without a durable decision; commit with one
        if phase in _DECIDED_PHASES:
            assert values == [99, 99, 99]
        else:
            assert values == [0, 0, 0]
            assert report.resolved_commit == 0
        assert report.resolved_abort + report.resolved_commit == report.in_doubt

    def test_in_doubt_branches_resolve_commit_from_peer_decision(self):
        """mid_decision: shard 0 holds the DECISION, the others are in
        doubt -- recovery must commit them off shard 0's record."""
        fleet = kv_fleet(3)
        by_shard = load_keys(fleet)
        run_to_crash(fleet, by_shard, "mid_decision")
        fleet.crash()
        report = fleet.recover()
        assert report.resolved_commit == 2  # shards 1 and 2 were in doubt
        assert report.resolved_abort == 0
        assert len(report.decided_gtids) == 1

    def test_presumed_abort_reports_no_decisions(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        run_to_crash(fleet, by_shard, "after_prepare")
        fleet.crash()
        report = fleet.recover()
        assert report.decided_gtids == set()
        assert report.resolved_abort == 2

    def test_fleet_usable_after_recovery(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        run_to_crash(fleet, by_shard, "after_prepare")
        fleet.crash()
        fleet.recover()
        with fleet.begin() as gtxn:
            for keys in by_shard:
                fleet.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [5, keys[0]], gtxn=gtxn
                )
        assert all(value_of(fleet, keys[0]) == 5 for keys in by_shard)

    def test_prepared_branch_blocks_checkpoint(self):
        """A prepared branch is still active: quiesced checkpoints must
        refuse, or the in-doubt records would vanish behind the image."""
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        run_to_crash(fleet, by_shard, "after_prepare")
        with pytest.raises(EngineError):
            fleet.shards[0].checkpoint()

    def test_arm_crash_rejects_unknown_phase(self):
        fleet = kv_fleet(2)
        with pytest.raises(ValueError):
            fleet.coordinator.arm_crash("between_things")


class TestChaosDrivenCoordinatorCrash:
    def make_fleet(self, phase):
        plan = FaultPlan(
            [FaultSpec(FaultKind.COORD_CRASH, phase, 0.0, 1.0)],
            seed=7, name="coord-crash",
        )
        chaos = ChaosInjector(plan)
        fleet = kv_fleet(3, chaos=chaos)
        return fleet, chaos

    def test_chaos_plan_fires_once_and_recovery_converges(self):
        fleet, chaos = self.make_fleet("after_prepare")
        by_shard = load_keys(fleet)
        gtxn = fleet.begin()
        for keys in by_shard:
            fleet.execute(
                "UPDATE kv SET V = ? WHERE K = ?", [42, keys[0]], gtxn=gtxn
            )
        with pytest.raises(SimulatedCrash):
            gtxn.commit()
        assert chaos.observed.get("coord_crash") == 1
        fleet.crash()
        fleet.recover()
        assert all(value_of(fleet, keys[0]) == 0 for keys in by_shard)
        # one-shot: the replacement coordinator (same injector) is clean
        with fleet.begin() as retry:
            for keys in by_shard:
                fleet.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [42, keys[0]], gtxn=retry
                )
        assert all(value_of(fleet, keys[0]) == 42 for keys in by_shard)

    def test_sales_fleet_survives_chaos_coordinator_crash(self):
        """End-to-end: the payment workload on real sales data, a chaos
        coordinator crash mid-run, whole-fleet crash, recovery, resume."""
        plan = FaultPlan(
            [FaultSpec(FaultKind.COORD_CRASH, "mid_commit", 0.0, 1.0)],
            seed=3, name="coord-crash",
        )
        chaos = ChaosInjector(plan)
        fleet, _data = load_sales_fleet(2, seed=3, chaos=chaos)
        workload = ShardSalesWorkload(fleet, cross_ratio=1.0, seed=3)
        with pytest.raises(SimulatedCrash):
            for _ in range(50):
                workload.run_one()
        fleet.crash()
        report = fleet.recover()
        # mid_commit: decision durable everywhere, so in-doubt commits
        assert report.resolved_abort == 0
        # the fleet serves transactions again
        resumed = ShardSalesWorkload(fleet, cross_ratio=1.0, seed=5)
        for _ in range(10):
            resumed.run_one()
        assert resumed.committed == 10

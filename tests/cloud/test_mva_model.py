"""Tests for the analytical throughput model and its paper-shaped effects."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.architectures import all_architectures, aws_rds, cdb1, cdb2, cdb3, cdb4
from repro.cloud.mva_model import (
    cache_breakdown,
    estimate_throughput,
    hit_ratio,
    required_vcores,
)
from repro.cloud.specs import ComputeAllocation
from repro.core.workload import THROUGHPUT_PATTERNS

GIB = 2**30


def mix(mode="RW", sf=1, distribution="uniform"):
    return THROUGHPUT_PATTERNS[mode].to_workload_mix(sf, distribution=distribution)


class TestHitRatio:
    def test_uniform_linear(self):
        assert hit_ratio(50, 100) == pytest.approx(0.5)
        assert hit_ratio(200, 100) == 1.0
        assert hit_ratio(0, 100) == 0.0

    def test_empty_working_set_always_hits(self):
        assert hit_ratio(1, 0) == 1.0

    def test_hot_set_cached_first(self):
        # cache covers exactly the hot set: hot accesses all hit
        value = hit_ratio(10, 100, hot_fraction=0.9, hot_set_bytes=10)
        assert value == pytest.approx(0.9)

    def test_skew_beats_uniform(self):
        uniform = hit_ratio(10, 100)
        skewed = hit_ratio(10, 100, hot_fraction=0.9, hot_set_bytes=10)
        assert skewed > uniform

    @settings(max_examples=50, deadline=None)
    @given(
        cache=st.floats(min_value=0, max_value=1e9),
        ws=st.floats(min_value=1, max_value=1e9),
        hot_fraction=st.floats(min_value=0, max_value=1),
        hot_share=st.floats(min_value=0.01, max_value=1),
    )
    def test_property_bounds_and_monotonicity(self, cache, ws, hot_fraction, hot_share):
        hot_bytes = ws * hot_share
        value = hit_ratio(cache, ws, hot_fraction, hot_bytes)
        assert 0.0 <= value <= 1.0
        bigger = hit_ratio(cache * 2 + 1, ws, hot_fraction, hot_bytes)
        assert bigger >= value - 1e-12


class TestCacheBreakdown:
    def test_fractions_sum_to_one(self):
        for arch in all_architectures():
            for sf in (1, 10, 100):
                cb = cache_breakdown(arch, mix("RW", sf), arch.instance.max_allocation)
                total = cb.local + cb.second + cb.remote + cb.storage
                assert total == pytest.approx(1.0)

    def test_cdb4_remote_buffer_absorbs_sf100(self):
        arch = cdb4()
        cb = cache_breakdown(arch, mix("RO", 100), arch.instance.max_allocation)
        assert cb.remote > 0.2          # 24 GB pool matters at 20.8 GB
        assert cb.combined_hit > 0.99   # local+remote covers everything

    def test_small_buffer_misses_at_scale(self):
        arch = cdb2()
        cb = cache_breakdown(arch, mix("RO", 100), arch.instance.max_allocation)
        assert cb.storage > 0.8

    def test_warm_fraction_shrinks_cache(self):
        arch = aws_rds()
        cold = cache_breakdown(arch, mix("RO", 10), arch.instance.max_allocation,
                               warm_local=0.05)
        warm = cache_breakdown(arch, mix("RO", 10), arch.instance.max_allocation)
        assert cold.combined_hit < warm.combined_hit


class TestThroughputShapes:
    """The Figure 5 claims, asserted on the model."""

    def test_cdb4_has_highest_overall_throughput(self):
        averages = {}
        for arch in all_architectures():
            values = [
                estimate_throughput(arch, mix(mode, sf), con).tps
                for mode in ("RO", "RW", "WO")
                for sf in (1, 10, 100)
                for con in (50, 100, 150, 200)
            ]
            averages[arch.name] = sum(values) / len(values)
        assert max(averages, key=averages.get) == "cdb4"

    def test_rds_wins_rw_at_sf1_low_concurrency(self):
        rds = estimate_throughput(aws_rds(), mix("RW", 1), 100).tps
        for factory in (cdb1, cdb2, cdb3):
            assert rds > estimate_throughput(factory(), mix("RW", 1), 100).tps

    def test_rds_degrades_at_sf100_high_concurrency(self):
        rds = aws_rds()
        at_150 = estimate_throughput(rds, mix("RW", 100), 150).tps
        at_300 = estimate_throughput(rds, mix("RW", 100), 300).tps
        assert at_300 < at_150  # dirty-page flushing bites

    def test_cdb3_comparable_to_rds_at_sf100_high_concurrency(self):
        ratio = (
            estimate_throughput(cdb3(), mix("RW", 100), 200).tps
            / estimate_throughput(aws_rds(), mix("RW", 100), 200).tps
        )
        assert 0.6 < ratio < 1.2

    def test_cdb2_throughput_is_bounded(self):
        arch = cdb2()
        tps = [estimate_throughput(arch, mix("RO", 1), con).tps
               for con in (50, 100, 200, 400)]
        assert max(tps) < 12_500  # paper: no more than 11863 on RO
        assert tps[-1] <= tps[-2] * 1.05  # plateau

    def test_cdb3_beats_cdb1_on_average(self):
        def avg(arch):
            return sum(
                estimate_throughput(arch, mix(mode, sf), 150).tps
                for mode in ("RO", "RW", "WO") for sf in (1, 10, 100)
            ) / 9
        assert avg(cdb3()) > avg(cdb1())

    def test_throughput_monotone_until_saturation(self):
        arch = aws_rds()
        tps_50 = estimate_throughput(arch, mix("RO", 1), 50).tps
        tps_100 = estimate_throughput(arch, mix("RO", 1), 100).tps
        assert tps_100 >= tps_50

    def test_zero_concurrency_and_paused(self):
        arch = cdb3()
        assert estimate_throughput(arch, mix("RW", 1), 0).tps == 0.0
        paused = estimate_throughput(
            arch, mix("RW", 1), 50, ComputeAllocation(0, 0)
        )
        assert paused.tps == 0.0

    def test_negative_concurrency_rejected(self):
        with pytest.raises(ValueError):
            estimate_throughput(aws_rds(), mix(), -1)

    def test_skewed_access_raises_hit_ratio(self):
        arch = cdb1()
        uniform = estimate_throughput(arch, mix("RO", 100), 150)
        skewed = estimate_throughput(
            arch, mix("RO", 100, distribution="latest-10"), 150
        )
        assert skewed.cache.combined_hit > uniform.cache.combined_hit

    def test_buffer_override_moves_throughput(self):
        """The Figure 8 effect: growing CDB1's buffer raises its TPS."""
        arch = cdb1()
        small = estimate_throughput(arch, mix("RW", 10), 150,
                                    buffer_bytes=128 * 2**20).tps
        large = estimate_throughput(arch, mix("RW", 10), 150,
                                    buffer_bytes=10 * GIB).tps
        assert large > small * 1.1

    def test_consumed_resources_populated(self):
        estimate = estimate_throughput(cdb1(), mix("RW", 10), 100)
        consumed = estimate.consumed
        assert consumed.cpu_cores > 0
        assert consumed.iops > 0
        assert consumed.network_gbps > 0  # disaggregated: wire traffic

    def test_local_storage_has_no_network_consumption(self):
        estimate = estimate_throughput(aws_rds(), mix("RW", 1), 100)
        assert estimate.consumed.network_gbps == 0.0

    def test_more_vcores_more_throughput(self):
        arch = cdb3()
        small = estimate_throughput(arch, mix("RO", 1), 200, ComputeAllocation(1, 4)).tps
        large = estimate_throughput(arch, mix("RO", 1), 200, ComputeAllocation(4, 16)).tps
        assert large > small


class TestRequiredVcores:
    def test_zero_demand_needs_nothing(self):
        assert required_vcores(cdb3(), mix(), 0) == 0.0

    def test_small_demand_needs_minimum(self):
        arch = cdb3()
        assert required_vcores(arch, mix(), 1) == arch.instance.min_allocation.vcores

    def test_large_demand_hits_ceiling(self):
        arch = cdb3()
        assert required_vcores(arch, mix(), 10_000) == arch.instance.max_allocation.vcores

    def test_monotone_in_demand(self):
        arch = cdb2()
        previous = 0.0
        for demand in (1, 10, 30, 60, 120):
            current = required_vcores(arch, mix(), demand)
            assert current >= previous
            previous = current

    def test_pool_ceiling_override(self):
        arch = cdb2()
        capped = required_vcores(arch, mix(), 5000)
        pooled = required_vcores(arch, mix(), 5000, max_vcores=12.0)
        assert capped == 4.0
        assert pooled > capped

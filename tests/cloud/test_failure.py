"""Tests for the fail-over simulator (Table VIII / Figure 7 shapes)."""

import pytest

from repro.cloud.architectures import all_architectures, aws_rds, cdb1, cdb4
from repro.cloud.failure import FailoverSimulator
from repro.core.workload import READ_WRITE


def mix():
    return READ_WRITE.to_workload_mix(1)


def simulator(factory, **kwargs):
    return FailoverSimulator(factory(), mix(), concurrency=150, **kwargs)


def test_steady_tps_positive():
    assert simulator(aws_rds).steady_tps > 1000


def test_rw_failure_drops_tps_to_zero():
    result = simulator(aws_rds).run(node="rw")
    outage = [tps for t, tps in result.timeline
              if result.inject_s < t < result.service_restored_s]
    assert outage and max(outage) == 0.0


def test_ro_failure_keeps_partial_service():
    result = simulator(aws_rds).run(node="ro")
    outage = [tps for t, tps in result.timeline
              if result.inject_s < t < result.service_restored_s]
    assert outage and min(outage) > 0.0
    assert min(outage) < result.steady_tps


def test_tps_recovers_to_threshold():
    result = simulator(cdb1).run(node="rw")
    final = result.timeline[-1][1]
    assert final >= 0.95 * result.steady_tps
    assert result.tps_recovered_s > result.service_restored_s


def test_phase_log_is_contiguous():
    for arch in all_architectures():
        result = FailoverSimulator(arch, mix(), 150).run(node="rw")
        starts = [phase.start_s for phase in result.phases]
        ends = [phase.end_s for phase in result.phases]
        assert starts[0] == result.inject_s
        for end, nxt in zip(ends, starts[1:]):
            assert nxt == pytest.approx(end)


def test_cdb4_phase_names_match_figure7():
    result = simulator(cdb4).run(node="rw")
    names = [phase.name for phase in result.phases]
    assert names == ["detect", "prepare", "switch_over", "undo"]
    # Figure 7: ~1 s prepare, ~2 s switch over, ~3 s undo
    durations = {phase.name: phase.duration_s for phase in result.phases}
    assert durations["prepare"] == pytest.approx(1.0)
    assert durations["switch_over"] == pytest.approx(2.0)
    assert durations["undo"] == pytest.approx(3.0)


def test_cdb4_serves_during_background_undo():
    """With a surviving remote buffer, service restores at switch-over."""
    result = simulator(cdb4).run(node="rw")
    undo = [phase for phase in result.phases if phase.name == "undo"][0]
    assert result.service_restored_s == pytest.approx(undo.start_s)


def test_rds_pipeline_includes_aries_restart_and_redo():
    result = simulator(aws_rds).run(node="rw")
    names = [phase.name for phase in result.phases]
    assert "restart" in names
    assert "redo" in names
    assert "switch_over" not in names


def test_cdb1_promotes_instead_of_restarting():
    result = simulator(cdb1).run(node="rw")
    names = [phase.name for phase in result.phases]
    assert "switch_over" in names
    assert "redo" not in names  # redo pushdown: nothing to replay


def test_total_recovery_rank_matches_table_viii():
    """cdb4 < cdb1 < cdb3 < cdb2 < rds on F+R totals."""
    totals = {}
    for arch in all_architectures():
        sim = FailoverSimulator(arch, mix(), 150)
        rw = sim.run(node="rw")
        ro = sim.run(node="ro")
        totals[arch.name] = (
            rw.f_score_s + ro.f_score_s + rw.r_score_s + ro.r_score_s
        )
    order = sorted(totals, key=totals.get)
    assert order == ["cdb4", "cdb1", "cdb3", "cdb2", "aws_rds"]


def test_invalid_node_rejected():
    with pytest.raises(ValueError):
        simulator(aws_rds).run(node="primary")


def test_higher_write_rate_grows_rds_redo_phase():
    from repro.core.workload import WRITE_ONLY

    rw = FailoverSimulator(aws_rds(), mix(), 150).run("rw")
    wo = FailoverSimulator(
        aws_rds(), WRITE_ONLY.to_workload_mix(1), 150
    ).run("rw")

    def redo_s(result):
        return next(p.duration_s for p in result.phases if p.name == "redo")

    assert redo_s(wo) > redo_s(rw)

"""Chaos wired into the cloud DES: replication under faults, dirty
fail-over timelines."""

import pytest

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.cloud.architectures import cdb1, cdb3
from repro.cloud.failure import FailoverSimulator
from repro.cloud.replication import ReplicationPipeline
from repro.core.workload import READ_WRITE
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema
from repro.sim.events import Environment


def primary_db():
    db = Database("primary")
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def chaotic_pipeline(*specs, arch_factory=cdb3):
    env = Environment()
    primary = primary_db()
    injector = ChaosInjector(FaultPlan(specs))
    pipeline = ReplicationPipeline(env, arch_factory(), primary, chaos=injector)
    return env, primary, pipeline


def visible(pipeline, key):
    return pipeline.visible_on_replica(0, "SELECT K FROM kv WHERE K = ?", [key])


# -- replication under chaos ---------------------------------------------------


def test_partition_holds_delivery_until_heal():
    env, primary, pipeline = chaotic_pipeline(
        FaultSpec(FaultKind.PARTITION, "replica:0", start_s=0.0, duration_s=5.0),
    )
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    env.run(until=4.9)
    assert not visible(pipeline, 1)       # severed link: nothing arrives
    env.run(until=6.0)
    assert visible(pipeline, 1)           # heals at 5.0, then ships + replays


def test_commits_during_partition_all_arrive_after_heal():
    env, primary, pipeline = chaotic_pipeline(
        FaultSpec(FaultKind.PARTITION, "replica:0", start_s=0.0, duration_s=3.0),
    )
    for key in range(1, 6):
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, key])
    env.run(until=10.0)
    assert pipeline.converged()
    assert all(visible(pipeline, key) for key in range(1, 6))


def test_delay_spike_stretches_visibility():
    def first_visible_at(specs):
        env, primary, pipeline = chaotic_pipeline(*specs, arch_factory=cdb1)
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        step = 0.001
        t = step
        while t < 20.0:
            env.run(until=t)
            if visible(pipeline, 1):
                return t
            t += step
        return t

    clean = first_visible_at([])
    delayed = first_visible_at([
        FaultSpec(FaultKind.DELAY, "replica:0", start_s=0.0, duration_s=10.0,
                  intensity=1.0),
    ])
    assert delayed >= clean


def test_stall_parks_the_replayer():
    env, primary, pipeline = chaotic_pipeline(
        FaultSpec(FaultKind.STALL, "replica:0", start_s=0.0, duration_s=4.0),
    )
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    env.run(until=3.9)
    assert not visible(pipeline, 1)       # batch arrived but replay is parked
    env.run(until=6.0)
    assert visible(pipeline, 1)


def test_gray_replica_replays_slower_but_converges():
    env, primary, pipeline = chaotic_pipeline(
        FaultSpec(FaultKind.GRAY, "replica:0", start_s=0.0, duration_s=30.0,
                  intensity=1.0),
    )
    for key in range(1, 20):
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, key])
    env.run(until=60.0)
    assert pipeline.converged()


# -- dirty fail-over timelines -------------------------------------------------


def simulator():
    return FailoverSimulator(cdb1(), READ_WRITE.to_workload_mix(1), concurrency=50)


def test_gray_fault_never_kills_service():
    sim = simulator()
    spec = FaultSpec(FaultKind.GRAY, "rw", start_s=10.0, duration_s=20.0,
                     intensity=0.8)
    result = sim.run_fault(spec)
    assert result.f_score_s == 0.0       # goodput never hit zero
    floor = min(tps for _t, tps in result.timeline)
    assert 0.0 < floor < sim.steady_tps
    assert result.tps_recovered_s > spec.end_s


def test_ro_partition_owes_catchup():
    sim = simulator()
    short = sim.run_fault(FaultSpec(
        FaultKind.PARTITION, "ro", start_s=10.0, duration_s=5.0))
    long = sim.run_fault(FaultSpec(
        FaultKind.PARTITION, "ro", start_s=10.0, duration_s=30.0))
    assert any(phase.name == "catchup" for phase in short.phases)
    # a longer partition accumulates a bigger backlog -> later recovery
    short_catchup = next(p for p in short.phases if p.name == "catchup")
    long_catchup = next(p for p in long.phases if p.name == "catchup")
    assert long_catchup.duration_s > short_catchup.duration_s
    # reads kept flowing through the primary the whole time
    assert min(tps for _t, tps in short.timeline) > 0.0


def test_rw_partition_is_a_full_outage_until_heal():
    sim = simulator()
    spec = FaultSpec(FaultKind.PARTITION, "rw", start_s=10.0, duration_s=8.0)
    result = sim.run_fault(spec)
    assert result.service_restored_s == spec.end_s
    assert result.f_score_s == pytest.approx(spec.duration_s)
    assert min(tps for _t, tps in result.timeline) == 0.0


def test_flap_alternates_outage_and_service():
    sim = simulator()
    spec = FaultSpec(FaultKind.FLAP, "rw", start_s=10.0, duration_s=8.0,
                     period_s=2.0)
    result = sim.run_fault(spec, tick_s=0.5)
    window = [tps for t, tps in result.timeline if 10.0 <= t < 18.0]
    assert min(window) == 0.0            # down half-periods
    assert max(window) == sim.steady_tps  # up half-periods


def test_crash_spec_delegates_to_restart_model():
    sim = simulator()
    spec = FaultSpec(FaultKind.CRASH, "rw", start_s=30.0, duration_s=0.0)
    via_fault = sim.run_fault(spec)
    via_run = sim.run(node="rw", inject_at_s=30.0)
    assert via_fault.service_restored_s == via_run.service_restored_s
    assert [phase.name for phase in via_fault.phases] == [
        phase.name for phase in via_run.phases
    ]


def test_wal_level_faults_are_rejected():
    sim = simulator()
    with pytest.raises(ValueError):
        sim.run_fault(FaultSpec(FaultKind.TORN_WRITE, "rw", start_s=0.0, duration_s=0.0))
    with pytest.raises(ValueError):
        sim.run_fault(FaultSpec(FaultKind.BIT_FLIP, "rw", start_s=0.0, duration_s=0.0))

"""Property tests: autoscaler invariants under arbitrary demand traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.architectures import cdb1, cdb2, cdb3
from repro.cloud.autoscaler import Autoscaler
from repro.core.workload import READ_WRITE


def mix():
    return READ_WRITE.to_workload_mix(1)


demand_trace = st.lists(
    st.tuples(
        st.integers(min_value=10, max_value=120),   # segment duration (s)
        st.integers(min_value=0, max_value=200),    # demand
    ),
    min_size=1, max_size=8,
)


def drive(arch_factory, trace):
    scaler = Autoscaler(arch_factory(), mix())
    allocations = []
    t = 0.0
    for duration, demand in trace:
        end = t + duration
        while t < end:
            allocation = scaler.step(t, demand)
            allocations.append((t, demand, allocation))
            t += 1.0
    return scaler, allocations


@pytest.mark.parametrize("factory", [cdb1, cdb2, cdb3])
@settings(max_examples=25, deadline=None)
@given(trace=demand_trace)
def test_property_allocation_within_instance_bounds(factory, trace):
    scaler, allocations = drive(factory, trace)
    spec = factory().instance
    for _t, _demand, allocation in allocations:
        assert allocation.vcores <= spec.max_allocation.vcores + 1e-9
        assert allocation.memory_gb <= spec.max_allocation.memory_gb + 1e-9
        # below the minimum only when paused (scale-to-zero)
        if allocation.vcores > 0:
            assert allocation.vcores >= min(spec.min_allocation.vcores, 0.25) - 1e-9


@pytest.mark.parametrize("factory", [cdb1, cdb2, cdb3])
@settings(max_examples=25, deadline=None)
@given(trace=demand_trace)
def test_property_event_log_matches_allocation_timeline(factory, trace):
    scaler, allocations = drive(factory, trace)
    # replaying the event log reconstructs the final allocation
    spec = factory().instance
    vcores = spec.max_allocation.vcores if not spec.serverless else spec.min_allocation.vcores
    for event in scaler.events:
        assert event.from_vcores == pytest.approx(vcores)
        vcores = event.to_vcores
    assert scaler.allocation.vcores == pytest.approx(vcores)


@settings(max_examples=25, deadline=None)
@given(trace=demand_trace)
def test_property_cdb1_never_scales_down_abruptly(trace):
    scaler, _ = drive(cdb1, trace)
    step = max(cdb1().instance.vcore_step, 1.0)
    for event in scaler.events:
        if event.trigger == "scale_down":
            assert event.from_vcores - event.to_vcores <= step + 1e-9


@settings(max_examples=25, deadline=None)
@given(trace=demand_trace)
def test_property_cdb3_pause_only_after_idle(trace):
    scaler, allocations = drive(cdb3, trace)
    pauses = [event for event in scaler.events if event.trigger == "pause"]
    for pause in pauses:
        # every recorded demand in the pause_after window before the
        # pause must have been zero
        window = [
            demand for t, demand, _a in allocations
            if pause.time_s - cdb3().scaling.pause_after_s <= t < pause.time_s
        ]
        assert all(demand == 0 for demand in window)


@settings(max_examples=20, deadline=None)
@given(trace=demand_trace)
def test_property_deterministic(trace):
    _s1, a1 = drive(cdb2, trace)
    _s2, a2 = drive(cdb2, trace)
    assert [(t, alloc.vcores) for t, _d, alloc in a1] == \
        [(t, alloc.vcores) for t, _d, alloc in a2]

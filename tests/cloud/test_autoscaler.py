"""Tests for the four autoscaling policies."""

import pytest

from repro.cloud.architectures import aws_rds, cdb1, cdb2, cdb3, cdb4
from repro.cloud.autoscaler import Autoscaler
from repro.core.workload import READ_WRITE


def mix():
    return READ_WRITE.to_workload_mix(1)


def drive(autoscaler, schedule, tick=1.0):
    """Run (duration, demand) segments; returns [(t, vcores)] samples."""
    samples = []
    t = 0.0
    for duration, demand in schedule:
        end = t + duration
        while t < end:
            allocation = autoscaler.step(t, demand)
            samples.append((t, allocation.vcores))
            t += tick
    return samples


class TestFixed:
    def test_never_moves(self):
        for factory in (aws_rds, cdb4):
            arch = factory()
            scaler = Autoscaler(arch, mix())
            samples = drive(scaler, [(60, 0), (60, 200), (60, 0)])
            assert {v for _t, v in samples} == {arch.instance.max_allocation.vcores}
            assert scaler.events == []


class TestThresholdGradual:
    def test_scales_up_quickly(self):
        arch = cdb1()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(60, 110)])
        ups = [e for e in scaler.events if e.trigger == "scale_up"]
        assert ups
        # reacts within ~reaction_s of the demand change
        assert ups[0].time_s <= arch.scaling.reaction_s + 2
        assert ups[0].to_vcores == arch.instance.max_allocation.vcores

    def test_scales_down_gradually(self):
        arch = cdb1()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(60, 110), (600, 0)])
        downs = [e for e in scaler.events if e.trigger == "scale_down"]
        assert len(downs) >= 2  # stepwise, not a jump
        gaps = [b.time_s - a.time_s for a, b in zip(downs, downs[1:])]
        assert min(gaps) >= arch.scaling.gradual_step_s - 1
        # paper: 479-536 s to fully scale down
        assert downs[-1].time_s - 60 > 200

    def test_never_pauses(self):
        arch = cdb1()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(60, 110), (1200, 0)])
        assert scaler.allocation.vcores >= arch.instance.min_allocation.vcores


class TestOnDemand:
    def test_scales_both_directions_on_cadence(self):
        arch = cdb2()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(90, 110), (90, 5)])
        triggers = [e.trigger for e in scaler.events]
        assert "scale_up" in triggers
        assert "scale_down" in triggers

    def test_respects_half_core_floor(self):
        arch = cdb2()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(60, 110), (300, 0)])
        assert scaler.allocation.vcores == arch.instance.min_allocation.vcores == 0.5

    def test_control_cadence_limits_changes(self):
        arch = cdb2()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(120, 110)])
        times = [e.time_s for e in scaler.events]
        assert all(b - a >= arch.scaling.reaction_s - 1 for a, b in zip(times, times[1:]))


class TestCuPauseResume:
    def test_pauses_after_sustained_idle(self):
        arch = cdb3()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(30, 60), (120, 0)])
        assert scaler.is_paused
        assert any(e.trigger == "pause" for e in scaler.events)

    def test_resumes_on_demand_with_delay(self):
        arch = cdb3()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(30, 60), (120, 0)])
        assert scaler.is_paused
        drive_start = 150.0
        t = drive_start
        while scaler.is_paused and t < drive_start + 60:
            scaler.step(t, 60)
            t += 1.0
        assert not scaler.is_paused
        resume = [e for e in scaler.events if e.trigger == "resume"][0]
        assert resume.time_s - drive_start >= arch.scaling.resume_s - 1

    def test_ignores_short_valley(self):
        """The paper's Single Valley observation: no scale-down for a
        60-second dip (stabilisation window is longer)."""
        arch = cdb3()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(60, 110), (60, 20), (60, 110)])
        assert not any(e.trigger == "scale_down" for e in scaler.events)

    def test_scales_down_after_stabilisation(self):
        arch = cdb3()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(60, 110), (400, 8)])
        assert any(e.trigger == "scale_down" for e in scaler.events)

    def test_cu_step_granularity(self):
        arch = cdb3()
        scaler = Autoscaler(arch, mix())
        drive(scaler, [(120, 30)])
        for event in scaler.events:
            assert event.to_vcores % arch.instance.vcore_step == pytest.approx(0.0)


def test_memory_tracks_vcores_proportionally():
    arch = cdb1()
    scaler = Autoscaler(arch, mix())
    drive(scaler, [(60, 110)])
    allocation = scaler.allocation
    ratio = arch.instance.max_allocation.memory_gb / arch.instance.max_allocation.vcores
    assert allocation.memory_gb == pytest.approx(allocation.vcores * ratio)


class TestOverloadDetection:
    def test_saturation_past_max_allocation_is_flagged(self):
        arch = cdb2()
        scaler = Autoscaler(arch, mix())
        assert not scaler.is_overloaded
        drive(scaler, [(30, 10)])
        assert not scaler.is_overloaded
        assert scaler.overload_windows == 0
        # demand far past anything the instance can serve
        drive(scaler, [(30, 100_000)])
        assert scaler.is_overloaded
        assert scaler.overload_windows == 1

    def test_overload_clears_when_demand_recedes(self):
        scaler = Autoscaler(cdb2(), mix())
        drive(scaler, [(30, 100_000), (30, 10)])
        assert not scaler.is_overloaded
        assert scaler.overload_windows == 1

    def test_counts_rising_edges_not_windows(self):
        scaler = Autoscaler(cdb2(), mix())
        drive(scaler, [(30, 100_000), (10, 5), (30, 100_000)])
        assert scaler.overload_windows == 2

    def test_fixed_policy_still_detects_overload(self):
        # FIXED never scales, but overload detection must still fire so
        # the qos layer knows shedding is the only remaining move
        scaler = Autoscaler(aws_rds(), mix())
        drive(scaler, [(10, 100_000)])
        assert scaler.is_overloaded
        assert scaler.events == []

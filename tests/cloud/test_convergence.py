"""Replication convergence via content hashing."""

from hypothesis import given, settings, strategies as st

from repro.cloud.architectures import cdb3, cdb4
from repro.cloud.replication import ReplicationPipeline
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema
from repro.sim.events import Environment


def fresh(name="primary"):
    db = Database(name)
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


class TestContentHash:
    def test_identical_content_same_hash(self):
        a, b = fresh("a"), fresh("b")
        for db in (a, b):
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 20])
        assert a.content_hash() == b.content_hash()
        assert a.same_content(b)

    def test_hash_is_placement_independent(self):
        a, b = fresh("a"), fresh("b")
        a.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
        a.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 20])
        # b reaches the same logical state via a different physical path
        b.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 20])
        b.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [9, 9])
        b.execute("DELETE FROM kv WHERE K = ?", [9])
        b.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
        assert a.same_content(b)

    def test_different_content_different_hash(self):
        a, b = fresh("a"), fresh("b")
        a.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
        b.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 11])
        assert not a.same_content(b)

    def test_per_table_hash(self):
        a = fresh("a")
        a.create_table(Schema(
            "OTHER", (Column("O_ID", ColumnType.INT, nullable=False),),
            primary_key="O_ID",
        ))
        a.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
        before = a.content_hash("KV")
        a.execute("INSERT INTO other (O_ID) VALUES (?)", [1])
        assert a.content_hash("KV") == before   # other table is irrelevant
        assert a.content_hash() != before        # the whole-db hash moved

    @settings(max_examples=30, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(1, 10), st.integers(-50, 50)),
            max_size=20, unique_by=lambda p: p[0],
        )
    )
    def test_property_hash_invariant_under_insert_order(self, pairs):
        a, b = fresh("a"), fresh("b")
        for k, v in pairs:
            a.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, v])
        for k, v in reversed(pairs):
            b.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, v])
        assert a.same_content(b)


class TestPipelineConvergence:
    def test_pipeline_converges_after_replay(self):
        env = Environment()
        primary = fresh()
        pipeline = ReplicationPipeline(env, cdb3(), primary, n_replicas=2)
        for k in range(1, 8):
            primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
        primary.execute("UPDATE kv SET V = ? WHERE K = ?", [99, 3])
        primary.execute("DELETE FROM kv WHERE K = ?", [5])
        assert not pipeline.converged()   # replay still pending
        env.run(until=10.0)
        assert pipeline.converged()

    def test_convergence_detects_lag(self):
        env = Environment()
        primary = fresh()
        pipeline = ReplicationPipeline(env, cdb4(), primary, n_replicas=1)
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        env.run(until=5.0)
        assert pipeline.converged()
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
        assert not pipeline.converged()   # not yet shipped
        env.run(until=10.0)
        assert pipeline.converged()

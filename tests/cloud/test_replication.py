"""Tests for the engine-backed replication pipeline."""

import pytest

from repro.cloud.architectures import cdb1, cdb2, cdb3, cdb4
from repro.cloud.replication import ReplicationPipeline
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema
from repro.sim.events import Environment


def primary_db():
    db = Database("primary")
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
    return db


def make_pipeline(arch_factory, n_replicas=1):
    env = Environment()
    primary = primary_db()
    pipeline = ReplicationPipeline(env, arch_factory(), primary, n_replicas)
    return env, primary, pipeline


def test_replica_starts_as_full_copy():
    _env, _primary, pipeline = make_pipeline(cdb3)
    assert pipeline.replicas[0].query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 10


def test_insert_becomes_visible_after_replay():
    env, primary, pipeline = make_pipeline(cdb3)
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 20])
    assert not pipeline.visible_on_replica(0, "SELECT K FROM kv WHERE K = ?", [2])
    env.run(until=5.0)
    assert pipeline.visible_on_replica(0, "SELECT K FROM kv WHERE K = ?", [2])


def test_update_and_delete_replicate():
    env, primary, pipeline = make_pipeline(cdb4)
    primary.execute("UPDATE kv SET V = ? WHERE K = ?", [99, 1])
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
    primary.execute("DELETE FROM kv WHERE K = ?", [2])
    env.run(until=2.0)
    replica = pipeline.replicas[0]
    assert replica.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 99
    assert replica.query("SELECT K FROM kv WHERE K = ?", [2]).rows == []


def test_visibility_latency_orders_by_architecture():
    """cdb4 replicates faster than cdb1, which beats cdb2."""
    lags = {}
    for factory in (cdb1, cdb2, cdb4):
        env, primary, pipeline = make_pipeline(factory)
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [7, 7])
        committed_at = env.now
        step = 0.0005
        t = step
        while t < 10.0:
            env.run(until=t)
            if pipeline.visible_on_replica(0, "SELECT K FROM kv WHERE K = ?", [7]):
                break
            t += step
        lags[factory().name] = t - committed_at
    assert lags["cdb4"] < lags["cdb1"] < lags["cdb2"]


def test_multiple_replicas_all_converge():
    env, primary, pipeline = make_pipeline(cdb3, n_replicas=3)
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [5, 50])
    env.run(until=5.0)
    for index in range(3):
        assert pipeline.visible_on_replica(0, "SELECT K FROM kv WHERE K = ?", [5])
        assert pipeline.replicas[index].query(
            "SELECT V FROM kv WHERE K = ?", [5]
        ).scalar() == 50


def test_rolled_back_transaction_never_ships():
    env, primary, pipeline = make_pipeline(cdb3)
    txn = primary.begin()
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [9, 9], txn=txn)
    txn.rollback()
    env.run(until=5.0)
    assert pipeline.stats[0].batches_shipped == 0
    assert not pipeline.visible_on_replica(0, "SELECT K FROM kv WHERE K = ?", [9])


def test_stats_track_applied_records():
    env, primary, pipeline = make_pipeline(cdb3)
    for k in range(2, 6):
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
    env.run(until=5.0)
    stats = pipeline.stats[0]
    assert stats.batches_shipped == 4
    assert stats.records_applied == 4
    assert len(stats.applied_at) == 4


def test_replica_lag_records_drains():
    env, primary, pipeline = make_pipeline(cdb3)
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
    assert pipeline.replica_lag_records(0) > 0
    env.run(until=5.0)
    # only the commit record itself may remain unaccounted
    assert pipeline.replica_lag_records(0) <= 1


def test_sequential_replay_batches_coalesce():
    """A slow-cadence replayer applies many commits in one batch window."""
    env, primary, pipeline = make_pipeline(cdb2)
    for k in range(2, 12):
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
    env.run(until=0.5)  # less than one batch interval: nothing applied yet
    assert pipeline.stats[0].records_applied == 0
    env.run(until=5.0)
    assert pipeline.stats[0].records_applied == 10


def test_zero_replicas_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        ReplicationPipeline(env, cdb3(), primary_db(), n_replicas=0)

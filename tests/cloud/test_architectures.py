"""Tests for the SUT registry and architecture invariants."""

import pytest

from repro.cloud.architectures import (
    all_architectures,
    aws_rds,
    cdb1,
    cdb2,
    cdb3,
    cdb4,
    get,
    register,
)
from repro.cloud.specs import (
    ComputeAllocation,
    NetworkKind,
    ScalingKind,
    StorageKind,
    TenancyKind,
)


def test_registry_has_all_five_suts():
    names = [arch.name for arch in all_architectures()]
    assert names[:5] == ["aws_rds", "cdb1", "cdb2", "cdb3", "cdb4"]


def test_get_unknown_raises():
    with pytest.raises(KeyError):
        get("not-a-db")


def test_register_new_architecture():
    custom = aws_rds()
    register("custom_test", lambda: custom)
    try:
        assert get("custom_test") is custom
        assert any(arch.name == "aws_rds" for arch in all_architectures())
    finally:
        from repro.cloud.architectures import _REGISTRY
        _REGISTRY.pop("custom_test", None)


def test_table_iv_configurations():
    """Spot-check the paper's Table IV rows."""
    rds = aws_rds()
    assert rds.engine == "PostgreSQL 15"
    assert rds.buffer_bytes == 128 * 2**20
    assert not rds.instance.serverless
    assert rds.storage.kind is StorageKind.LOCAL

    c2 = cdb2()
    assert c2.engine == "SQL Server 12"
    assert c2.buffer_bytes == 44 * 2**20
    assert c2.instance.min_allocation.vcores == 0.5
    assert c2.storage.kind is StorageKind.LOG_PAGE

    c3 = cdb3()
    assert c3.instance.min_allocation.vcores == 0.25  # 0.25 CU
    assert c3.scaling.kind is ScalingKind.CU_PAUSE_RESUME
    assert c3.storage.replay_parallelism > 1

    c4 = cdb4()
    assert c4.engine == "MySQL 8"
    assert c4.buffer_bytes == 10 * 2**30
    assert c4.remote_buffer_bytes == 24 * 2**30
    assert c4.network.kind is NetworkKind.RDMA
    assert not c4.instance.serverless


def test_architectural_narrative_flags():
    assert cdb1().storage.redo_pushdown            # Aurora: redo at storage
    assert cdb1().storage.replication_factor == 6  # six-way replication
    assert aws_rds().flush_coeff > 0               # ARIES flushing
    assert cdb1().flush_coeff == 0                 # no dirty flushing
    assert cdb4().recovery.remote_buffer_survives
    assert aws_rds().recovery.flush_before_restart
    assert cdb2().tenancy.kind is TenancyKind.ELASTIC_POOL
    assert cdb3().tenancy.kind is TenancyKind.BRANCH
    assert aws_rds().tenancy.kind is TenancyKind.ISOLATED


def test_scaling_policies_match_paper():
    assert aws_rds().scaling.kind is ScalingKind.FIXED
    assert cdb4().scaling.kind is ScalingKind.FIXED
    assert cdb1().scaling.kind is ScalingKind.THRESHOLD_GRADUAL
    assert cdb2().scaling.kind is ScalingKind.ON_DEMAND


def test_buffer_scales_with_serverless_memory():
    arch = cdb1()
    full = arch.buffer_bytes_at(arch.instance.max_allocation)
    half = arch.buffer_bytes_at(ComputeAllocation(2, arch.instance.max_allocation.memory_gb / 2))
    assert full == arch.buffer_bytes
    assert 0 < half < full


def test_fixed_instance_buffer_does_not_scale():
    arch = aws_rds()
    small = arch.buffer_bytes_at(ComputeAllocation(1, 1))
    assert small == arch.buffer_bytes


def test_with_buffer_override():
    arch = aws_rds().with_buffer(10 * 2**30)
    assert arch.buffer_bytes == 10 * 2**30
    assert arch.name == "aws_rds"


def test_provisioned_packages_match_table_v():
    expect = {
        "aws_rds": (4, 16, 42, 1000, 10),
        "cdb1": (4, 32, 126, 1000, 10),
        "cdb2": (4, 20, 63, 327_680, 10),
        "cdb3": (4, 16, 63, 1000, 10),
        "cdb4": (4, 40, 63, 84_000, 10),
    }
    for arch in all_architectures():
        package = arch.provisioned
        assert (
            package.vcores, package.memory_gb, package.storage_gb,
            package.iops, package.network_gbps,
        ) == expect[arch.name]


def test_instance_clamp():
    spec = cdb2().instance
    low = spec.clamp(ComputeAllocation(0.1, 0.1))
    assert low.vcores == 0.5
    high = spec.clamp(ComputeAllocation(100, 100))
    assert high.vcores == 4

"""Tests for the proactive (forecast-driven) autoscaling policy."""

import dataclasses


from repro.cloud.architectures import cdb2
from repro.cloud.autoscaler import Autoscaler
from repro.cloud.specs import ScalingKind
from repro.core.elasticity import ELASTIC_PATTERNS, ElasticityEvaluator
from repro.core.workload import READ_WRITE


def proactive_cdb2(lead_s: float = 20.0):
    base = cdb2()
    return dataclasses.replace(
        base,
        scaling=dataclasses.replace(
            base.scaling,
            kind=ScalingKind.PROACTIVE,
            reaction_s=10.0,
            lead_s=lead_s,
            scaling_warm_tau_s=base.scaling.scaling_warm_tau_s,
        ),
    )


def mix():
    return READ_WRITE.to_workload_mix(1)


def drive(scaler, schedule, tick=1.0):
    t = 0.0
    samples = []
    for duration, demand in schedule:
        end = t + duration
        while t < end:
            samples.append((t, scaler.step(t, demand).vcores))
            t += tick
    return samples


def test_prescales_before_the_spike():
    arch = proactive_cdb2(lead_s=20.0)
    forecast = [(0.0, 0), (60.0, 110), (120.0, 0)]
    scaler = Autoscaler(arch, mix(), forecast=forecast)
    samples = drive(scaler, [(60, 0), (60, 110), (60, 0)])
    vcores_at = dict(samples)
    # already at (or near) full size before the demand arrives at t=60
    assert vcores_at[55.0] == 4.0
    # and back down after the spike's forecast ends
    assert vcores_at[175.0] <= 1.0


def test_reactive_fallback_on_misprediction():
    arch = proactive_cdb2()
    # forecast says idle forever, but real demand shows up
    scaler = Autoscaler(arch, mix(), forecast=[(0.0, 0)])
    drive(scaler, [(90, 110)])
    assert scaler.allocation.vcores == 4.0  # reacted anyway


def test_without_forecast_behaves_reactively():
    arch = proactive_cdb2()
    scaler = Autoscaler(arch, mix(), forecast=None)
    drive(scaler, [(90, 110)])
    assert scaler.allocation.vcores == 4.0


def test_what_if_proactive_cdb2_beats_reactive_on_spikes():
    """The paper's observation inverted: give CDB2 the proactive
    scaling it lacks, and its spike throughput improves at similar or
    lower elastic cost."""
    pattern = ELASTIC_PATTERNS["large_spike"]
    reactive = ElasticityEvaluator(cdb2(), mix(), measure_window_s=600.0).run(
        pattern, 110
    )
    proactive = ElasticityEvaluator(
        proactive_cdb2(), mix(), measure_window_s=600.0
    ).run(pattern, 110)
    assert proactive.avg_tps > reactive.avg_tps
    assert proactive.elastic_cost < reactive.elastic_cost * 1.3


def test_forecast_step_semantics():
    arch = proactive_cdb2()
    scaler = Autoscaler(arch, mix(), forecast=[(0.0, 10), (100.0, 50)])
    assert scaler._forecast_demand(0.0) == 10
    assert scaler._forecast_demand(99.0) == 10
    assert scaler._forecast_demand(100.0) == 50
    assert scaler._forecast_demand(500.0) == 50

"""Tests for the three multi-tenant scheduling models."""

import math

import pytest

from repro.cloud.architectures import aws_rds, cdb1, cdb2, cdb3
from repro.cloud.tenancy import TenantScheduler, _cold_slot_fraction
from repro.core.workload import READ_WRITE


def mix():
    return READ_WRITE.to_workload_mix(1)


class TestIsolated:
    def test_tenants_do_not_interfere(self):
        scheduler = TenantScheduler(cdb1(), mix(), n_tenants=3)
        result = scheduler.schedule_slot([200, 10, 10])
        light_alone = TenantScheduler(cdb1(), mix(), 1).schedule_slot([10])
        # light tenants get the same TPS as if deployed alone
        assert result.tenants[1].tps == pytest.approx(
            light_alone.tenants[0].tps, rel=1e-6
        )

    def test_heavy_tenant_capped_at_instance_capacity(self):
        scheduler = TenantScheduler(cdb1(), mix(), n_tenants=2)
        result = scheduler.schedule_slot([400, 400])
        single = result.tenants[0].tps
        assert result.total_tps == pytest.approx(2 * single, rel=1e-6)

    def test_idle_tenant_produces_zero(self):
        scheduler = TenantScheduler(aws_rds(), mix(), n_tenants=3)
        result = scheduler.schedule_slot([0, 0, 50])
        assert result.tenants[0].tps == 0.0
        assert result.tenants[2].tps > 0


class TestElasticPool:
    def test_single_active_tenant_borrows_whole_pool(self):
        pool = TenantScheduler(cdb2(), mix(), n_tenants=3)
        result = pool.schedule_slot([300, 0, 0])
        assert result.tenants[0].allocation.vcores == pytest.approx(12.0)

    def test_pool_beats_isolated_on_staggered_load(self):
        demand = [300, 0, 0]
        pool_tps = TenantScheduler(cdb2(), mix(), 3).schedule_slot(demand).total_tps
        iso_arch = cdb2()
        # same architecture but isolated scheduling for comparison
        object.__setattr__(iso_arch.tenancy, "kind", iso_arch.tenancy.kind)
        solo = TenantScheduler(cdb2(), mix(), 1)
        single_instance = solo._isolated([300])[0].tps
        assert pool_tps > single_instance * 1.5

    def test_overcommit_applies_penalty(self):
        pool = TenantScheduler(cdb2(), mix(), n_tenants=3)
        contended = pool.schedule_slot([300, 300, 300])
        assert all(t.efficiency < 1.0 for t in contended.tenants)

    def test_contention_free_has_no_penalty(self):
        pool = TenantScheduler(cdb2(), mix(), n_tenants=3)
        relaxed = pool.schedule_slot([5, 5, 5])
        assert all(t.efficiency == 1.0 for t in relaxed.tenants)

    def test_shares_proportional_to_desire(self):
        pool = TenantScheduler(cdb2(), mix(), n_tenants=2)
        result = pool.schedule_slot([400, 20])
        assert result.tenants[0].allocation.vcores > result.tenants[1].allocation.vcores
        total = sum(t.allocation.vcores for t in result.tenants)
        assert total == pytest.approx(8.0)  # 2 tenants x 4 vCores pool


class TestBranches:
    def test_idle_branch_pauses_with_zero_allocation(self):
        scheduler = TenantScheduler(cdb3(), mix(), n_tenants=2)
        result = scheduler.schedule_slot([0, 50])
        assert result.tenants[0].allocation.vcores == 0.0
        assert result.tenants[1].tps > 0

    def test_branch_resumes_cold(self):
        scheduler = TenantScheduler(cdb3(), mix(), n_tenants=1, slot_seconds=60)
        scheduler.schedule_slot([0])            # pauses
        resumed = scheduler.schedule_slot([50])  # resumes cold
        warm = scheduler.schedule_slot([50])     # stays warm
        assert resumed.tenants[0].resumed_cold
        assert not warm.tenants[0].resumed_cold
        assert resumed.tenants[0].tps < warm.tenants[0].tps

    def test_branches_cannot_borrow(self):
        scheduler = TenantScheduler(cdb3(), mix(), n_tenants=3)
        result = scheduler.schedule_slot([500, 0, 0])
        max_vcores = cdb3().instance.max_allocation.vcores
        assert result.tenants[0].allocation.vcores == max_vcores


class TestSchedulerGeneral:
    def test_run_slots_matrix(self):
        scheduler = TenantScheduler(aws_rds(), mix(), n_tenants=2)
        results = scheduler.run_slots([[10, 0], [0, 10]])
        assert len(results) == 2
        assert results[0].tenants[0].tps > 0
        assert results[0].tenants[1].tps == 0

    def test_ragged_matrix_rejected(self):
        scheduler = TenantScheduler(aws_rds(), mix(), n_tenants=2)
        with pytest.raises(ValueError):
            scheduler.run_slots([[10, 0], [0]])

    def test_wrong_demand_count_rejected(self):
        scheduler = TenantScheduler(aws_rds(), mix(), n_tenants=2)
        with pytest.raises(ValueError):
            scheduler.schedule_slot([1, 2, 3])

    def test_zero_tenants_rejected(self):
        with pytest.raises(ValueError):
            TenantScheduler(aws_rds(), mix(), n_tenants=0)


def test_cold_slot_fraction_bounds():
    assert _cold_slot_fraction(0.0, 60.0) == 1.0
    assert 0.0 < _cold_slot_fraction(20.0, 60.0) < 1.0
    # longer slots absorb the cold start better
    assert _cold_slot_fraction(10.0, 120.0) > _cold_slot_fraction(10.0, 30.0)


class TestBrownout:
    def brownout_pool(self, **kwargs):
        from repro.qos.admission import BrownoutPolicy

        return TenantScheduler(
            cdb2(), mix(), n_tenants=3,
            brownout=BrownoutPolicy(**kwargs),
        )

    def test_throttles_only_past_the_threshold(self):
        pool = self.brownout_pool(overcommit_threshold=0.25)
        relaxed = pool.schedule_slot([5, 5, 5])
        assert relaxed.total_shed == 0
        assert all(t.admitted == t.demand for t in relaxed.tenants)
        contended = pool.schedule_slot([300, 300, 300])
        assert contended.total_shed > 0

    def test_brownout_caps_the_contention_penalty(self):
        demand = [300, 300, 300]
        collapsed = TenantScheduler(cdb2(), mix(), 3).schedule_slot(demand)
        degraded = self.brownout_pool(overcommit_threshold=0.25).schedule_slot(
            demand
        )
        # shedding holds efficiency near the threshold's penalty instead
        # of riding the overcommit down
        assert all(
            t.efficiency > collapsed.tenants[i].efficiency
            for i, t in enumerate(degraded.tenants)
        )
        # and the tenants that stay admitted get more useful work done
        assert degraded.total_tps > collapsed.total_tps

    def test_min_share_floor_protects_every_tenant(self):
        pool = self.brownout_pool(overcommit_threshold=0.0, min_share=0.3)
        result = pool.schedule_slot([400, 40, 400])
        for tenant in result.tenants:
            assert tenant.admitted >= math.ceil(0.3 * tenant.demand)
            assert tenant.tps > 0

    def test_idle_tenants_are_not_charged_shed(self):
        result = self.brownout_pool().schedule_slot([500, 0, 500])
        assert result.tenants[1].shed == 0
        assert result.tenants[1].admitted == 0

    def test_isolated_and_branch_kinds_unaffected(self):
        from repro.qos.admission import BrownoutPolicy

        demand = [300, 300, 300]
        for factory in (cdb1, cdb3):
            plain = TenantScheduler(factory(), mix(), 3).schedule_slot(demand)
            browned = TenantScheduler(
                factory(), mix(), 3, brownout=BrownoutPolicy()
            ).schedule_slot(demand)
            assert browned.total_shed == 0
            assert browned.total_tps == pytest.approx(plain.total_tps)

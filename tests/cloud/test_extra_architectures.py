"""The optional multi-primary SUT flows through every evaluator."""

import pytest

from repro.cloud.architectures import _REGISTRY, get
from repro.cloud.extra_architectures import multi_primary, register_extras
from repro.cloud.failure import FailoverSimulator
from repro.cloud.mva_model import estimate_throughput
from repro.cloud.tenancy import TenantScheduler
from repro.core.workload import READ_WRITE


@pytest.fixture
def registered():
    register_extras()
    yield get("multi_primary")
    _REGISTRY.pop("multi_primary", None)


def mix(sf=1):
    return READ_WRITE.to_workload_mix(sf)


def test_not_registered_by_default():
    """The paper benches must keep their exact five-SUT tables."""
    assert "multi_primary" not in _REGISTRY


def test_registration_is_idempotent(registered):
    register_extras()
    assert get("multi_primary").name == "multi_primary"


def test_throughput_estimation(registered):
    estimate = estimate_throughput(registered, mix(), 150)
    assert estimate.tps > 0
    # shares CDB4's cache-rich profile: everything hits at SF1
    assert estimate.cache.combined_hit == pytest.approx(1.0)


def test_failover_has_no_promotion_penalty(registered):
    result = FailoverSimulator(registered, mix(), 150).run("rw")
    # multi-primary: faster end-to-end than the single-writer memory-
    # disaggregated design
    cdb4_result = FailoverSimulator(get("cdb4"), mix(), 150).run("rw")
    assert result.total_s < cdb4_result.total_s


def test_scale_out_beats_single_writer_designs(registered):
    from repro.core.metrics import e2_score

    assert e2_score(registered, mix()) > e2_score(get("cdb4"), mix())


def test_tenancy_scheduling(registered):
    scheduler = TenantScheduler(registered, mix(), n_tenants=3)
    result = scheduler.schedule_slot([50, 50, 50])
    assert result.total_tps > 0


def test_runs_through_the_full_testbed(registered):
    from repro.core import BenchConfig, CloudyBench

    config = BenchConfig.quick()
    config.architectures = ["cdb4", "multi_primary"]
    bench = CloudyBench(config)
    rows = {row.arch_name: row for row in bench.run("pscore").payload}
    assert rows["multi_primary"].p_avg > 0
    # the global-lock write path keeps its RW below CDB4's
    assert rows["multi_primary"].tps_by_mode["RW"] < rows["cdb4"].tps_by_mode["RW"] * 1.2


def test_distributed_cc_costs_more_per_update(registered):
    assert registered.update_overhead_s > get("cdb4").update_overhead_s

"""Tests for the spec dataclasses and the CloudDatabase facade."""

import pytest

from repro.cloud import CloudDatabase
from repro.cloud.architectures import aws_rds, cdb2, cdb3, cdb4
from repro.cloud.specs import (
    ComputeAllocation,
    NetworkKind,
    NetworkSpec,
    ProvisionedPackage,
    RDMA_10G,
    TCP_10G,
)
from repro.cloud.workload_model import TxnClass, WorkloadMix, blend
from repro.core.workload import READ_ONLY, READ_WRITE


class TestNetworkSpec:
    def test_transfer_time_includes_latency_and_serialisation(self):
        spec = NetworkSpec(NetworkKind.TCP, bandwidth_gbps=10.0, latency_s=80e-6)
        small = spec.transfer_time(64)
        page = spec.transfer_time(8192)
        assert small == pytest.approx(80e-6 + 64 * 8 / 1e10)
        assert page > small

    def test_rdma_is_faster_per_message(self):
        assert RDMA_10G.transfer_time(8192) < TCP_10G.transfer_time(8192)


class TestComputeAllocation:
    def test_paused(self):
        assert ComputeAllocation(0, 0).is_paused
        assert not ComputeAllocation(0.25, 0.5).is_paused

    def test_scaled(self):
        assert ComputeAllocation(2, 8).scaled(0.5) == ComputeAllocation(1, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ComputeAllocation(-1, 0)


class TestProvisionedPackage:
    def test_scaled_compute_and_io(self):
        package = ProvisionedPackage(4, 16, 42, 1000, 10, NetworkKind.TCP)
        doubled = package.scaled(compute_factor=2, io_factor=3)
        assert doubled.vcores == 8
        assert doubled.memory_gb == 32
        assert doubled.iops == 3000
        assert doubled.network_gbps == 30
        assert doubled.storage_gb == 42  # storage untouched


class TestWorkloadMixMath:
    def make(self, name, cpu, writes):
        cls = TxnClass(name, cpu_s=cpu, page_reads=1, page_writes=writes,
                       log_bytes=100 * writes)
        return WorkloadMix(name, ((cls, 1.0),), working_set_bytes=1e6)

    def test_blend_weighted_average(self):
        light = self.make("light", 1e-4, 0)
        heavy = self.make("heavy", 9e-4, 1)
        blended = blend("b", [(light, 3.0), (heavy, 1.0)])
        assert blended.cpu_s == pytest.approx(3e-4)
        assert blended.write_fraction == pytest.approx(0.25)

    def test_blend_takes_max_working_set(self):
        a = self.make("a", 1e-4, 0)
        big = WorkloadMix("big", a.classes, working_set_bytes=5e6)
        blended = blend("b", [(a, 1.0), (big, 1.0)])
        assert blended.working_set_bytes == 5e6

    def test_blend_validation(self):
        with pytest.raises(ValueError):
            blend("empty", [])
        a = self.make("a", 1e-4, 0)
        with pytest.raises(ValueError):
            blend("zero", [(a, 0.0)])

    def test_mix_validation(self):
        cls = TxnClass("t", cpu_s=1e-4, page_reads=1, page_writes=0, log_bytes=0)
        with pytest.raises(ValueError):
            WorkloadMix("m", (), working_set_bytes=1.0)
        with pytest.raises(ValueError):
            WorkloadMix("m", ((cls, 1.0),), working_set_bytes=1.0,
                        hot_fraction=0.5, hot_set_bytes=0.0)
        with pytest.raises(ValueError):
            TxnClass("bad", cpu_s=-1e-4, page_reads=1, page_writes=0, log_bytes=0)


class TestCloudDatabaseFacade:
    def test_accepts_name_or_architecture(self):
        by_name = CloudDatabase("cdb3")
        by_arch = CloudDatabase(cdb3())
        assert by_name.arch.name == by_arch.arch.name == "cdb3"
        assert by_name.display_name == "CDB3"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            CloudDatabase("not-a-db")

    def test_negative_replicas_rejected(self):
        with pytest.raises(ValueError):
            CloudDatabase("cdb3", n_replicas=-1)

    def test_estimate_uses_current_allocation(self):
        db = CloudDatabase("cdb3", allocation=ComputeAllocation(1, 4))
        small = db.estimate(READ_ONLY.to_workload_mix(1), 200)
        db_full = CloudDatabase("cdb3")
        full = db_full.estimate(READ_ONLY.to_workload_mix(1), 200)
        assert small.tps < full.tps

    def test_provisioned_package_data_override(self):
        db = CloudDatabase("cdb3")
        package = db.provisioned_package(data_gb=10.0)
        assert package.storage_gb == 10.0 * db.arch.storage.replication_factor

    def test_provisioned_package_isolated_tenants_triple_io(self):
        db = CloudDatabase("aws_rds")
        package = db.provisioned_package(tenants=3)
        base = aws_rds().provisioned
        assert package.iops == 3 * base.iops
        assert package.network_gbps == 3 * base.network_gbps

    def test_provisioned_package_shared_tenants_keep_io(self):
        db = CloudDatabase("cdb2")
        package = db.provisioned_package(tenants=3)
        base = cdb2().provisioned
        assert package.iops == base.iops
        assert package.vcores == 3 * base.vcores

    def test_factories(self):
        db = CloudDatabase("cdb4")
        mix = READ_WRITE.to_workload_mix(1)
        assert db.autoscaler(mix).arch.name == "cdb4"
        assert db.failover_simulator(mix).steady_tps > 0
        assert db.tenant_scheduler(mix, 3).n_tenants == 3

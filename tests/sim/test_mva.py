"""Tests for the exact MVA solver, including classical identities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.mva import Center, ClosedNetwork


def test_single_queue_single_customer():
    # One customer, one queueing centre: X = 1 / D.
    network = ClosedNetwork([Center("cpu", 0.1)])
    solution = network.solve(1)
    assert solution.throughput == pytest.approx(10.0)
    assert solution.response_time == pytest.approx(0.1)


def test_saturation_bound():
    # Throughput can never exceed 1 / max demand.
    network = ClosedNetwork([Center("cpu", 0.05), Center("disk", 0.1)])
    for population in (1, 5, 50, 500):
        assert network.solve(population).throughput <= 1 / 0.1 + 1e-9


def test_light_load_asymptote():
    network = ClosedNetwork([Center("cpu", 0.02), Center("disk", 0.03)])
    solution = network.solve(1)
    assert solution.throughput == pytest.approx(1 / 0.05)


def test_think_time_reduces_throughput_at_small_population():
    no_think = ClosedNetwork([Center("cpu", 0.01)])
    with_think = ClosedNetwork([Center("cpu", 0.01)], think_time=0.09)
    assert with_think.solve(1).throughput == pytest.approx(10.0)
    assert no_think.solve(1).throughput == pytest.approx(100.0)


def test_delay_center_does_not_bound_throughput():
    network = ClosedNetwork([
        Center("cpu", 0.001),
        Center("latency", 0.1, kind="delay"),
    ])
    assert network.solve(500).throughput == pytest.approx(1000.0, rel=0.01)


def test_multiserver_capacity_scales():
    single = ClosedNetwork([Center("cpu", 0.01, servers=1)])
    quad = ClosedNetwork([Center("cpu", 0.01, servers=4)])
    assert quad.solve(400).throughput == pytest.approx(
        4 * single.solve(400).throughput, rel=0.05
    )


def test_fractional_servers_halve_capacity():
    half = ClosedNetwork([Center("cpu", 0.01, servers=0.5)])
    assert half.solve(100).throughput == pytest.approx(50.0, rel=0.02)


def test_population_zero():
    network = ClosedNetwork([Center("cpu", 0.1)])
    solution = network.solve(0)
    assert solution.throughput == 0.0
    assert solution.response_time == 0.0


def test_utilization_law():
    # U_k = X * D_k for single-server queueing centres.
    network = ClosedNetwork([Center("cpu", 0.02), Center("disk", 0.05)])
    solution = network.solve(10)
    assert solution.utilizations["disk"] == pytest.approx(
        min(1.0, solution.throughput * 0.05), rel=1e-6
    )
    assert solution.bottleneck() == "disk"


def test_littles_law_holds():
    # Sum of queue lengths equals N (no think time).
    network = ClosedNetwork(
        [Center("cpu", 0.01), Center("disk", 0.02), Center("net", 0.005, kind="delay")]
    )
    for population in (1, 4, 16):
        solution = network.solve(population)
        assert sum(solution.queue_lengths.values()) == pytest.approx(
            population, rel=1e-6
        )


def test_duplicate_center_names_rejected():
    with pytest.raises(ValueError):
        ClosedNetwork([Center("cpu", 0.1), Center("cpu", 0.2)])


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        Center("x", -0.1)
    with pytest.raises(ValueError):
        Center("x", 0.1, kind="magic")
    with pytest.raises(ValueError):
        Center("x", 0.1, servers=0)
    with pytest.raises(ValueError):
        ClosedNetwork([Center("x", 0.1)], think_time=-1.0)
    with pytest.raises(ValueError):
        ClosedNetwork([])
    with pytest.raises(ValueError):
        ClosedNetwork([Center("x", 0.1)]).solve(-1)


def test_bounds_helpers():
    network = ClosedNetwork([Center("cpu", 0.05), Center("disk", 0.1)])
    assert network.max_throughput() == pytest.approx(10.0)
    assert network.light_load_throughput(3) == pytest.approx(3 / 0.15)
    assert network.saturation_population() == pytest.approx(1.5)


@settings(max_examples=60, deadline=None)
@given(
    demands=st.lists(st.floats(min_value=1e-4, max_value=0.5), min_size=1, max_size=5),
    population=st.integers(min_value=1, max_value=60),
    think=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_throughput_within_classical_bounds(demands, population, think):
    centers = [Center(f"c{i}", d) for i, d in enumerate(demands)]
    network = ClosedNetwork(centers, think_time=think)
    solution = network.solve(population)
    upper_capacity = 1.0 / max(demands)
    upper_light = population / (think + sum(demands))
    assert solution.throughput <= min(upper_capacity, upper_light) + 1e-9
    assert solution.throughput > 0
    # response time can never be below the total service demand
    assert solution.response_time >= sum(demands) - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    demand=st.floats(min_value=1e-4, max_value=0.2),
    population=st.integers(min_value=1, max_value=40),
)
def test_property_throughput_monotone_in_population(demand, population):
    network = ClosedNetwork([Center("cpu", demand), Center("io", demand / 2)])
    x_n = network.solve(population).throughput
    x_n1 = network.solve(population + 1).throughput
    assert x_n1 >= x_n - 1e-12

"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.events import Environment, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def process():
        yield env.timeout(5.0)
        seen.append(env.now)
        yield env.timeout(2.5)
        seen.append(env.now)

    env.process(process())
    env.run()
    assert seen == [5.0, 7.5]


def test_timeout_value_is_delivered():
    env = Environment()
    got = []

    def process():
        value = yield env.timeout(1.0, value="payload")
        got.append(value)

    env.process(process())
    env.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value_becomes_event_value():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return 42

    def parent():
        result = yield env.process(child())
        assert result == 42
        return result * 2

    parent_process = env.process(parent())
    env.run()
    assert parent_process.value == 84


def test_events_at_same_instant_run_in_scheduling_order():
    env = Environment()
    order = []

    def make(name):
        def process():
            yield env.timeout(1.0)
            order.append(name)
        return process

    for name in ("a", "b", "c"):
        env.process(make(name)())
    env.run()
    assert order == ["a", "b", "c"]


def test_manual_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    woke = []

    def waiter():
        value = yield gate
        woke.append((env.now, value))

    def opener():
        yield env.timeout(4.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert woke == [(4.0, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_failure_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["boom"]


def test_interrupt_is_raised_inside_process():
    env = Environment()
    interrupted = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            interrupted.append((env.now, interrupt.cause))

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt("failure-injection")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert interrupted == [(2.0, "failure-injection")]


def test_interrupting_finished_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    process = env.process(quick())
    env.run()
    process.interrupt("too late")  # must not raise
    env.run()


def test_run_until_stops_the_clock():
    env = Environment()
    ticks = []

    def ticker():
        while True:
            yield env.timeout(1.0)
            ticks.append(env.now)

    env.process(ticker())
    env.run(until=5.5)
    assert env.now == 5.5
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_run_backwards_rejected():
    env = Environment()
    env.process(iter_timeout(env, 10.0))
    env.run(until=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def iter_timeout(env, delay):
    yield env.timeout(delay)


def test_all_of_collects_values_in_order():
    env = Environment()

    def child(delay, value):
        yield env.timeout(delay)
        return value

    def parent():
        results = yield env.all_of([
            env.process(child(3.0, "slow")),
            env.process(child(1.0, "fast")),
        ])
        return results

    parent_process = env.process(parent())
    env.run()
    assert parent_process.value == ["slow", "fast"]
    assert env.now == 3.0


def test_all_of_empty_succeeds_immediately():
    env = Environment()

    def parent():
        results = yield env.all_of([])
        return results

    process = env.process(parent())
    env.run()
    assert process.value == []


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()
    env.process(iter_timeout(env, 7.0))
    # Before any execution the bootstrap event is pending at t=0.
    assert env.peek() == pytest.approx(0.0)
    env.run(until=0.0)  # runs the bootstrap, arming the timeout
    assert env.peek() == pytest.approx(7.0)


def test_deterministic_repeated_runs():
    def build():
        env = Environment()
        log = []

        def worker(name, period):
            while env.now < 20:
                yield env.timeout(period)
                log.append((round(env.now, 6), name))

        env.process(worker("a", 1.7))
        env.process(worker("b", 2.3))
        env.run(until=20)
        return log

    assert build() == build()

"""Cross-validation: the MVA solver vs the discrete-event kernel.

The same closed system is evaluated twice -- analytically (exact MVA)
and by simulation (N worker processes over a shared Resource) -- and
the throughputs must agree.  With deterministic service times the
simulated system is a D/D/c closed network, which meets the classical
asymptotes exactly and never falls below the MVA estimate (MVA assumes
exponential service, i.e. more variance, i.e. more queueing).
"""

import pytest

from repro.sim.events import Environment
from repro.sim.mva import Center, ClosedNetwork
from repro.sim.resources import Resource


def simulate_closed_system(
    population: int,
    service_s: float,
    servers: int,
    delay_s: float = 0.0,
    think_s: float = 0.0,
    duration_s: float = 200.0,
) -> float:
    """Throughput of N workers looping think -> queue(service) -> delay."""
    env = Environment()
    cpu = Resource(env, capacity=servers)
    completions = [0]
    # measure after a warm-up third of the run
    warmup = duration_s / 3.0

    def worker():
        while True:
            if think_s > 0:
                yield env.timeout(think_s)
            yield from cpu.use(service_s)
            if delay_s > 0:
                yield env.timeout(delay_s)
            if env.now >= warmup:
                completions[0] += 1

    for _ in range(population):
        env.process(worker())
    env.run(until=duration_s)
    return completions[0] / (duration_s - warmup)


CASES = [
    # population, service, servers, delay, think
    (1, 0.05, 1, 0.0, 0.0),
    (4, 0.05, 1, 0.0, 0.0),      # saturated single server
    (2, 0.02, 4, 0.1, 0.0),      # light load, multi-server
    (32, 0.02, 4, 0.1, 0.0),     # saturated multi-server
    (8, 0.01, 2, 0.05, 0.1),     # think time dominates
    (16, 0.005, 4, 0.02, 0.03),  # mixed
]


@pytest.mark.parametrize("population,service,servers,delay,think", CASES)
def test_des_throughput_matches_mva(population, service, servers, delay, think):
    centers = [Center("cpu", service, "queue", servers=servers)]
    if delay > 0:
        centers.append(Center("net", delay, "delay"))
    network = ClosedNetwork(centers, think_time=think)
    analytic = network.solve(population).throughput
    simulated = simulate_closed_system(population, service, servers, delay, think)

    upper = min(
        network.max_throughput(),
        population / (think + service + delay),
    )
    # deterministic service: at or above the exponential-service MVA
    # estimate, never above the asymptotic bound
    assert simulated >= analytic * 0.97
    assert simulated <= upper * 1.03
    # and within a reasonable band of the analytic value overall
    assert simulated == pytest.approx(analytic, rel=0.30)


def test_saturated_system_hits_capacity_bound_exactly():
    simulated = simulate_closed_system(
        population=32, service_s=0.02, servers=4, duration_s=400.0
    )
    assert simulated == pytest.approx(4 / 0.02, rel=0.02)


def test_light_load_hits_latency_bound_exactly():
    simulated = simulate_closed_system(
        population=2, service_s=0.01, servers=8, delay_s=0.09, duration_s=400.0
    )
    assert simulated == pytest.approx(2 / 0.1, rel=0.02)


def test_throughput_scales_with_population_until_saturation():
    values = [
        simulate_closed_system(n, 0.02, 2, delay_s=0.06, duration_s=300.0)
        for n in (1, 2, 4, 8, 16)
    ]
    assert all(b >= a - 1.0 for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(2 / 0.02, rel=0.05)

"""Tests for the named deterministic RNG registry."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    registry = RngRegistry(7)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(7).stream("workload").random()
    b = RngRegistry(7).stream("workload").random()
    assert a == b


def test_different_names_are_independent():
    registry = RngRegistry(7)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_master_seeds_differ():
    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_adding_stream_does_not_perturb_existing():
    registry1 = RngRegistry(7)
    first = registry1.stream("a")
    draws_before = [first.random() for _ in range(3)]

    registry2 = RngRegistry(7)
    registry2.stream("b")  # interleave creation of another stream
    second = registry2.stream("a")
    draws_after = [second.random() for _ in range(3)]
    assert draws_before == draws_after


def test_fork_is_independent_but_deterministic():
    parent = RngRegistry(7)
    fork1 = parent.fork("child").stream("x").random()
    fork2 = RngRegistry(7).fork("child").stream("x").random()
    assert fork1 == fork2
    assert fork1 != parent.stream("x").random()


def test_reset_recreates_streams():
    registry = RngRegistry(7)
    first = registry.stream("a").random()
    registry.reset()
    assert registry.stream("a").random() == first


def test_derive_seed_stable():
    assert derive_seed(42, "abc") == derive_seed(42, "abc")
    assert derive_seed(42, "abc") != derive_seed(42, "abd")

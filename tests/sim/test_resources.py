"""Tests for Resource, Container and TimeSeries."""

import pytest

from repro.sim.events import Environment, SimulationError
from repro.sim.resources import Container, Resource, TimeSeries


def test_resource_serialises_holders():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def worker(name):
        yield resource.request()
        log.append((env.now, name, "in"))
        yield env.timeout(2.0)
        resource.release()
        log.append((env.now, name, "out"))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert log == [
        (0.0, "a", "in"), (2.0, "a", "out"),
        (2.0, "b", "in"), (4.0, "b", "out"),
    ]


def test_resource_capacity_two_overlaps():
    env = Environment()
    resource = Resource(env, capacity=2)
    finished = []

    def worker(name):
        yield from resource.use(3.0)
        finished.append((env.now, name))

    for name in ("a", "b", "c"):
        env.process(worker(name))
    env.run()
    assert finished == [(3.0, "a"), (3.0, "b"), (6.0, "c")]


def test_resource_fifo_order():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def worker(name, arrival):
        yield env.timeout(arrival)
        yield resource.request()
        order.append(name)
        yield env.timeout(1.0)
        resource.release()

    env.process(worker("late", 0.2))
    env.process(worker("early", 0.1))
    env.run()
    assert order == ["early", "late"]


def test_release_without_request_raises():
    env = Environment()
    resource = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_set_capacity_grows_and_wakes_waiters():
    env = Environment()
    resource = Resource(env, capacity=1)
    entered = []

    def worker(name):
        yield resource.request()
        entered.append((env.now, name))
        yield env.timeout(10.0)
        resource.release()

    def grower():
        yield env.timeout(1.0)
        resource.set_capacity(2)

    env.process(worker("a"))
    env.process(worker("b"))
    env.process(grower())
    env.run()
    assert entered == [(0.0, "a"), (1.0, "b")]


def test_busy_time_accounting():
    env = Environment()
    resource = Resource(env, capacity=2)

    def worker(hold):
        yield from resource.use(hold)

    env.process(worker(4.0))
    env.process(worker(2.0))
    env.run()
    assert resource.busy_time() == pytest.approx(6.0)


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)
    resource = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        resource.set_capacity(0)


class TestContainer:
    def test_put_then_get(self):
        env = Environment()
        container = Container(env, initial=5.0)
        got = []

        def taker():
            amount = yield container.get(3.0)
            got.append((env.now, amount))

        env.process(taker())
        env.run()
        assert got == [(0.0, 3.0)]
        assert container.level == pytest.approx(2.0)

    def test_get_blocks_until_put(self):
        env = Environment()
        container = Container(env)
        got = []

        def taker():
            yield container.get(2.0)
            got.append(env.now)

        def putter():
            yield env.timeout(3.0)
            container.put(1.0)
            yield env.timeout(3.0)
            container.put(1.0)

        env.process(taker())
        env.process(putter())
        env.run()
        assert got == [6.0]

    def test_fifo_getters(self):
        env = Environment()
        container = Container(env)
        order = []

        def taker(name, amount):
            yield container.get(amount)
            order.append(name)

        env.process(taker("big", 5.0))
        env.process(taker("small", 1.0))
        container.put(10.0)
        env.run()
        assert order == ["big", "small"]  # FIFO, not best-fit

    def test_capacity_clamps_level(self):
        env = Environment()
        container = Container(env, capacity=4.0)
        container.put(10.0)
        assert container.level == pytest.approx(4.0)

    def test_try_get(self):
        env = Environment()
        container = Container(env, initial=2.0)
        assert container.try_get(1.5)
        assert not container.try_get(1.0)


class TestTimeSeries:
    def test_integrate_step_function(self):
        series = TimeSeries()
        series.record(0.0, 10.0)
        series.record(5.0, 20.0)
        assert series.integrate(0.0, 10.0) == pytest.approx(10 * 5 + 20 * 5)

    def test_average(self):
        series = TimeSeries()
        series.record(0.0, 4.0)
        series.record(2.0, 8.0)
        assert series.average(0.0, 4.0) == pytest.approx(6.0)

    def test_value_at(self):
        series = TimeSeries()
        series.record(1.0, 1.0)
        series.record(3.0, 3.0)
        assert series.value_at(2.0) == 1.0
        assert series.value_at(3.0) == 3.0
        assert series.value_at(99.0) == 3.0

    def test_out_of_order_rejected(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        with pytest.raises(SimulationError):
            series.record(4.0, 2.0)

    def test_partial_window(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(10.0, 3.0)
        assert series.integrate(5.0, 15.0) == pytest.approx(1 * 5 + 3 * 5)

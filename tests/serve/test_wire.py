"""Wire framing edge cases: partial reads, bad prefixes, truncation."""

import asyncio
import struct

import pytest

from repro.serve.wire import (
    HEADER_BYTES,
    FrameDecoder,
    FrameError,
    decode_body,
    encode_frame,
    read_frame,
)


def _frame(payload):
    return encode_frame(payload)


class TestEncodeFrame:
    def test_roundtrip(self):
        data = _frame({"op": "ping", "n": 1})
        (length,) = struct.unpack(">I", data[:HEADER_BYTES])
        assert length == len(data) - HEADER_BYTES
        assert decode_body(data[HEADER_BYTES:]) == {"op": "ping", "n": 1}

    def test_oversized_payload_raises(self):
        with pytest.raises(FrameError, match="limit"):
            encode_frame({"sql": "x" * (1 << 21)})


class TestFrameDecoder:
    def test_whole_frame(self):
        decoder = FrameDecoder()
        frames = decoder.feed(_frame({"op": "ping"}))
        assert frames == [{"op": "ping"}]
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        """Partial reads are normal: single-byte feeds still decode."""
        decoder = FrameDecoder()
        data = _frame({"op": "execute", "sql": "SELECT 1", "params": []})
        frames = []
        for index in range(len(data)):
            got = decoder.feed(data[index:index + 1])
            if index < len(data) - 1:
                assert got == []
            frames.extend(got)
        assert frames == [{"op": "execute", "sql": "SELECT 1", "params": []}]

    def test_many_frames_in_one_chunk(self):
        decoder = FrameDecoder()
        chunk = b"".join(_frame({"i": i}) for i in range(5))
        assert decoder.feed(chunk) == [{"i": i} for i in range(5)]

    def test_chunk_spanning_a_frame_boundary(self):
        decoder = FrameDecoder()
        data = _frame({"a": 1}) + _frame({"b": 2})
        cut = len(_frame({"a": 1})) + 2  # two bytes into frame 2's header
        assert decoder.feed(data[:cut]) == [{"a": 1}]
        assert decoder.pending_bytes == 2
        assert decoder.feed(data[cut:]) == [{"b": 2}]

    def test_zero_length_prefix_poisons_the_stream(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError, match="zero-length"):
            decoder.feed(b"\x00\x00\x00\x00")

    def test_oversized_prefix_poisons_the_stream(self):
        decoder = FrameDecoder(max_frame=256)
        with pytest.raises(FrameError, match="exceeds"):
            decoder.feed(struct.pack(">I", 257))

    def test_malformed_json_body(self):
        decoder = FrameDecoder()
        body = b"{not json"
        with pytest.raises(FrameError, match="not valid JSON"):
            decoder.feed(struct.pack(">I", len(body)) + body)

    def test_non_object_json_body(self):
        decoder = FrameDecoder()
        body = b"[1,2,3]"
        with pytest.raises(FrameError, match="must be an object"):
            decoder.feed(struct.pack(">I", len(body)) + body)

    def test_max_frame_validation(self):
        with pytest.raises(ValueError):
            FrameDecoder(max_frame=0)


def _reader_with(data, eof=True):
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


class TestReadFrame:
    def test_one_frame(self):
        async def scenario():
            reader = _reader_with(_frame({"op": "ping"}))
            assert await read_frame(reader) == {"op": "ping"}
            assert await read_frame(reader) is None  # clean EOF after

        asyncio.run(scenario())

    def test_clean_eof_at_boundary_is_none(self):
        async def scenario():
            return await read_frame(_reader_with(b""))

        assert asyncio.run(scenario()) is None

    def test_truncated_header(self):
        async def scenario():
            with pytest.raises(FrameError, match="inside a frame header"):
                await read_frame(_reader_with(b"\x00\x00"))

        asyncio.run(scenario())

    def test_truncated_body(self):
        async def scenario():
            data = _frame({"op": "ping"})
            with pytest.raises(FrameError, match="inside a frame body"):
                await read_frame(_reader_with(data[:-2]))

        asyncio.run(scenario())

    def test_oversized_prefix(self):
        async def scenario():
            with pytest.raises(FrameError, match="exceeds"):
                await read_frame(
                    _reader_with(struct.pack(">I", 512) + b"x" * 512),
                    max_frame=256,
                )

        asyncio.run(scenario())

"""The load generator, the serve driver, and the ``serve`` evaluator."""

import json
from pathlib import Path

import pytest

from repro.core.config import BenchConfig
from repro.core.runner import CloudyBench
from repro.perf.trajectory import validate_bench
from repro.serve.bench import (
    BENCH_CONNECTIONS,
    BENCH_TXNS_PER_CONN,
    bench_record,
)
from repro.serve.driver import run_serve, run_sweep
from repro.serve.loadgen import make_persona

BASELINE = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "baselines" / "BENCH_serve.json"
)

KEYS = {"orders": [1, 2, 3], "customers": [4, 5, 6]}


class TestPersonas:
    def test_registry(self):
        for name in ("payment", "reader", "mixed"):
            assert make_persona(name, KEYS).name == name
        with pytest.raises(ValueError, match="unknown persona"):
            make_persona("bulk-loader", KEYS)

    def test_empty_key_space_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            make_persona("payment", {"orders": [], "customers": [4]})

    def test_frames_are_deterministic_per_stream(self):
        import random

        frames_a = [
            make_persona("mixed", KEYS).frame(random.Random(9))
            for _ in range(1)
        ]
        frames_b = [
            make_persona("mixed", KEYS).frame(random.Random(9))
            for _ in range(1)
        ]
        assert frames_a == frames_b


class TestRunServe:
    def test_closed_loop_smoke(self):
        result = run_serve(
            4, 4, n_shards=2, workers=0, qos=False,
            persona="payment", arrival="closed",
            seed=42, row_scale=0.001,
        )
        assert result.driver == "async"
        assert result.offered == 16
        assert result.committed == 16
        assert result.aborted == 0
        assert result.errors == 0
        assert result.fsyncs > 0
        assert result.tps > 0
        assert set(result.latency_ms) == {"p50", "p95", "p99", "p999"}
        assert result.server["accepted"] == 4
        assert result.server["abrupt_disconnects"] == 0

    def test_closed_loop_is_deterministic(self):
        runs = [
            run_serve(
                2, 6, n_shards=2, workers=0, qos=False,
                persona="payment", arrival="closed",
                seed=7, row_scale=0.001,
            )
            for _ in range(2)
        ]
        assert runs[0].committed == runs[1].committed == 12
        assert runs[0].aborted == runs[1].aborted
        assert runs[0].fsyncs == runs[1].fsyncs

    def test_reader_persona_commits_reads(self):
        result = run_serve(
            2, 4, n_shards=2, workers=0, qos=False,
            persona="reader", arrival="closed",
            seed=42, row_scale=0.001,
        )
        assert result.committed == 8

    def test_sweep_runs_every_count(self):
        results = run_sweep(
            [1, 2], 3, n_shards=2, workers=0, qos=False,
            seed=42, row_scale=0.001,
        )
        assert [r.connections for r in results] == [1, 2]
        assert all(r.committed == r.connections * 3 for r in results)


class TestServeEvaluator:
    def test_outcome_shape_and_scores(self):
        config = BenchConfig.quick()
        config.row_scale = 0.001
        bench = CloudyBench(config)
        outcome = bench.run(
            "serve", connections=[2], txns=3, qos=False
        )
        assert outcome.name == "serve"
        assert len(outcome.rows) == 1
        row = dict(zip(outcome.headers, outcome.rows[0]))
        assert row["conns"] == 2
        assert row["qos"] == "off"
        assert row["committed"] == 6
        assert "serve.tps@2" in outcome.scores
        assert "serve.goodput@2" in outcome.scores
        assert "serve.p99_ms@2" in outcome.scores
        # the sweep result is cached: a second run reuses it
        assert bench.run("serve", connections=[2], txns=3, qos=False)

    def test_config_knobs_validate(self):
        with pytest.raises(ValueError, match="serve_connections"):
            BenchConfig(serve_connections=[0])
        with pytest.raises(ValueError, match="serve_persona"):
            BenchConfig(serve_persona="bulk-loader")
        with pytest.raises(ValueError, match="serve_max_connections"):
            BenchConfig(serve_max_queue=0)


class TestBenchRecord:
    def test_record_is_valid_and_pinned(self):
        record = bench_record(seed=42)
        assert validate_bench(record.to_doc()) == []
        params = record.workload["params"]
        assert params["connections"] == BENCH_CONNECTIONS
        assert params["txns_per_conn"] == BENCH_TXNS_PER_CONN
        assert params["qos"] is False
        assert params["workers"] == 0
        metrics = record.metrics
        assert metrics["txns"] == BENCH_CONNECTIONS * BENCH_TXNS_PER_CONN
        assert metrics["committed"] == metrics["txns"]
        assert metrics["fsyncs"] > 0
        self._check_against_committed_baseline(record)

    def _check_against_committed_baseline(self, record):
        """The committed baseline must stay comparable: same workload
        fingerprint and identical exact counters at the default seed."""
        baseline = json.loads(BASELINE.read_text())
        assert (
            baseline["workload"]["fingerprint"]
            == record.workload["fingerprint"]
        )
        for counter in ("txns", "committed", "aborted", "fsyncs"):
            assert baseline["metrics"][counter] == record.metrics[counter]

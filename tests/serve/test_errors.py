"""The wire error taxonomy: one mapping, exact round-trips.

The regression that matters most (the ISSUE's acceptance criterion):
``ShardUnavailableError`` and ``OverloadError`` must cross a real
socket and come back as the *same class* with ``retryable`` intact --
that is what keeps the client resilience stack honest over the wire.
"""

import pytest

from repro.engine.errors import (
    DeadlineExceededError,
    EngineError,
    NodeUnavailableError,
    OverloadError,
    ShardUnavailableError,
    SimulatedCrash,
    SqlError,
)
from repro.serve.driver import BackgroundServer
from repro.serve.client import SocketClient
from repro.serve.errors import (
    WIRE_CODES,
    RemoteError,
    from_wire,
    to_wire,
    wire_code,
)


class TestTaxonomy:
    def test_every_registered_class_round_trips(self):
        for cls, code in WIRE_CODES.items():
            if cls is ShardUnavailableError:
                error = cls("boom", shard_id=3)
            else:
                error = cls("boom")
            payload = to_wire(error)
            assert payload["code"] == code
            rebuilt = from_wire(payload)
            assert type(rebuilt) is cls
            assert rebuilt.retryable == error.retryable

    def test_most_derived_class_wins(self):
        # ShardUnavailableError subclasses NodeUnavailableError; the
        # wire must say "shard_unavailable", not the base code
        assert wire_code(ShardUnavailableError("x")) == "shard_unavailable"
        assert wire_code(NodeUnavailableError("x")) == "node_unavailable"

    def test_overload_keeps_retry_after(self):
        rebuilt = from_wire(to_wire(OverloadError("busy", retry_after_s=0.25)))
        assert isinstance(rebuilt, OverloadError)
        assert rebuilt.retryable is True
        assert rebuilt.retry_after_s == 0.25

    def test_shard_unavailable_keeps_shard_id_and_lineage(self):
        rebuilt = from_wire(to_wire(ShardUnavailableError("down", shard_id=1)))
        assert isinstance(rebuilt, ShardUnavailableError)
        assert isinstance(rebuilt, NodeUnavailableError)  # breakers count it
        assert rebuilt.retryable is True
        assert rebuilt.shard_id == 1

    def test_unknown_code_degrades_to_remote_error(self):
        rebuilt = from_wire(
            {"code": "from_the_future", "message": "??", "retryable": True}
        )
        assert isinstance(rebuilt, RemoteError)
        assert rebuilt.retryable is True  # wire flag, not class attribute
        assert from_wire({"code": "from_the_future"}).retryable is False

    def test_plain_engine_error_keeps_wire_retryable(self):
        error = EngineError("odd")
        error.retryable = True
        rebuilt = from_wire(to_wire(error))
        assert type(rebuilt) is EngineError
        assert rebuilt.retryable is True

    def test_non_engine_exception_is_internal(self):
        payload = to_wire(RuntimeError("bug"))
        assert payload["code"] == "internal"
        assert payload["retryable"] is False


class _FailingFleet:
    """A fleet whose every statement raises the configured error."""

    n_shards = 2

    def __init__(self, error):
        self.error = error

    def execute(self, sql, params, gtxn=None):
        raise self.error

    def query(self, sql, params):
        raise self.error

    def begin(self, isolation=None, deadline=None):
        raise self.error


def _raise_over_socket(error):
    """Send one statement through a real socket; return what came back."""
    with BackgroundServer(_FailingFleet(error)) as bg:
        host, port = bg.server.address
        client = SocketClient(host, port, client_name="taxonomy-test")
        client.connect()
        try:
            with pytest.raises(EngineError) as exc_info:
                client.execute("UPDATE CUSTOMER SET C_CREDIT = 1", [])
        finally:
            client.close()
    return exc_info.value


class TestSocketRoundTrip:
    """Retryable semantics must be identical in-process and over TCP."""

    def test_shard_unavailable_is_retryable_over_the_socket(self):
        caught = _raise_over_socket(
            ShardUnavailableError("shard 1 lost its primary", shard_id=1)
        )
        assert type(caught) is ShardUnavailableError
        assert caught.retryable is True
        assert caught.shard_id == 1
        assert isinstance(caught, NodeUnavailableError)

    def test_overload_is_retryable_over_the_socket(self):
        caught = _raise_over_socket(OverloadError("shed", retry_after_s=0.5))
        assert type(caught) is OverloadError
        assert caught.retryable is True
        assert caught.retry_after_s == 0.5

    def test_simulated_crash_is_retryable_over_the_socket(self):
        caught = _raise_over_socket(SimulatedCrash("crash point hit"))
        assert type(caught) is SimulatedCrash
        assert caught.retryable is True

    def test_non_retryable_stays_non_retryable(self):
        caught = _raise_over_socket(SqlError("no such column"))
        assert type(caught) is SqlError
        assert caught.retryable is False
        caught = _raise_over_socket(DeadlineExceededError("too late"))
        assert type(caught) is DeadlineExceededError
        assert caught.retryable is False

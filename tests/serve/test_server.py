"""SQLServer behaviour over real sockets.

Covers the ISSUE's serving-tier edge cases end-to-end: transaction
affinity, pipelining order, connection limits, oversized statements,
malformed length prefixes, partial reads, mid-pipeline connection
drops, and server-side session cleanup after an abrupt disconnect.
"""

import asyncio
import socket
import struct
import time

import pytest

from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.engine.errors import (
    DeadlineExceededError,
    OverloadError,
    SqlError,
)
from repro.qos.admission import AdmissionPolicy
from repro.serve.client import AsyncSQLClient, SocketClient
from repro.serve.driver import BackgroundServer, collect_keys
from repro.serve.server import ServeFaultInjector, ServerConfig, SQLServer
from repro.serve.wire import FrameDecoder
from repro.shard.fleet import load_sales_fleet

READ_CREDIT = "SELECT C_CREDIT FROM CUSTOMER WHERE C_ID = ?"
BUMP_CREDIT = "UPDATE CUSTOMER SET C_CREDIT = C_CREDIT + ? WHERE C_ID = ?"


@pytest.fixture
def fleet():
    db, _data = load_sales_fleet(
        2, row_scale=0.001, seed=42, name="serve-test"
    )
    return db


def _credit(client, cid):
    return client.query(READ_CREDIT, [cid]).rows[0][0]


class TestSessions:
    def test_txn_affinity_commit_and_rollback(self, fleet):
        keys = collect_keys(fleet)
        cid = keys["customers"][0]
        with BackgroundServer(fleet) as bg:
            host, port = bg.server.address
            client = SocketClient(host, port)
            client.connect()
            before = _credit(client, cid)

            client.begin()
            client.execute(BUMP_CREDIT, [5.0, cid])
            # reads inside the transaction see its own writes
            assert _credit(client, cid) == pytest.approx(before + 5.0)
            client.rollback()
            assert _credit(client, cid) == pytest.approx(before)

            client.begin()
            client.execute(BUMP_CREDIT, [5.0, cid])
            client.commit()
            assert _credit(client, cid) == pytest.approx(before + 5.0)
            assert not client.in_txn
            client.close()

    def test_clean_goodbye_is_not_abrupt(self, fleet):
        with BackgroundServer(fleet) as bg:
            host, port = bg.server.address
            client = SocketClient(host, port)
            client.connect()
            assert client.ping()
            client.close()
            time.sleep(0.05)
            assert bg.server.accepted == 1
            assert bg.server.abrupt_disconnects == 0
            assert bg.server.orphan_rollbacks == 0

    def test_unknown_op_is_a_protocol_error(self, fleet):
        with BackgroundServer(fleet) as bg:
            host, port = bg.server.address
            client = SocketClient(host, port)
            client.connect()
            with pytest.raises(SqlError, match="protocol: unknown op"):
                client._request({"op": "transmogrify"})
            client.close()

    def test_abandon_drops_affinity_without_rollback(self, fleet):
        keys = collect_keys(fleet)
        cid = keys["customers"][0]
        with BackgroundServer(fleet) as bg:
            host, port = bg.server.address
            client = SocketClient(host, port)
            client.connect()
            client.begin()
            client.execute(BUMP_CREDIT, [1.0, cid])
            client.abandon()
            assert not client.in_txn
            # the session can begin afresh (fresh gtid, clean commit)
            client.begin()
            first = client.gtid
            client.commit()
            assert first is not None
            client.close()


class TestPipelining:
    def test_responses_come_back_in_request_order(self, fleet):
        keys = collect_keys(fleet)
        cids = keys["customers"][:8]

        async def scenario():
            async with SQLServer(fleet, ServerConfig(qos=False)) as server:
                host, port = server.address
                client = AsyncSQLClient(host, port)
                await client.connect()
                expected = []
                for cid in cids:
                    result = await client.query(READ_CREDIT, [cid])
                    expected.append(result.rows[0][0])
                # now pipeline all eight without awaiting any response
                for cid in cids:
                    client.send_nowait(
                        {"op": "query", "sql": READ_CREDIT, "params": [cid]}
                    )
                await client.drain()
                assert client.pending == len(cids)
                got = []
                for _ in cids:
                    frame = await client.recv_response()
                    got.append(frame["rows"][0][0])
                assert got == expected
                assert client.pending == 0
                await client.close()

        asyncio.run(scenario())

    def test_mid_pipeline_connection_drop(self, fleet):
        """CONN_DROP mid-pipeline: the client sees a dead connection,
        the server counts the abrupt disconnect, the injector fired."""
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CONN_DROP, target="serve",
                       start_s=0.2, duration_s=3600.0, intensity=1.0)],
            seed=7, name="drop-everything",
        )
        injector = ServeFaultInjector(plan, seed=7)

        async def scenario():
            server = SQLServer(
                fleet, ServerConfig(qos=False), fault_injector=injector
            )
            await server.start()
            try:
                client = AsyncSQLClient(host=server.address[0],
                                        port=server.address[1])
                await client.connect()  # before the drop window opens
                await asyncio.sleep(0.25)
                for _ in range(4):
                    client.send_nowait({"op": "ping"})
                await client.drain()
                with pytest.raises(
                    (ConnectionError, OSError, asyncio.IncompleteReadError)
                ):
                    for _ in range(4):
                        await client.recv_response()
                client.abort()
                for _ in range(100):
                    if server.abrupt_disconnects:
                        break
                    await asyncio.sleep(0.01)
            finally:
                await server.stop()
            assert injector.drops >= 1
            assert server.abrupt_disconnects >= 1

        asyncio.run(scenario())


class TestSessionCleanup:
    def test_abrupt_disconnect_rolls_back_the_orphan_txn(self, fleet):
        keys = collect_keys(fleet)
        cid = keys["customers"][0]

        async def scenario():
            async with SQLServer(fleet, ServerConfig(qos=False)) as server:
                host, port = server.address
                probe = AsyncSQLClient(host, port, client_name="probe")
                await probe.connect()
                before = (await probe.query(READ_CREDIT, [cid])).rows[0][0]

                victim = AsyncSQLClient(host, port, client_name="victim")
                await victim.connect()
                await victim.begin()
                await victim.execute(BUMP_CREDIT, [9.0, cid])
                # the client dies mid-write: half a frame, then the
                # connection is gone -- a truncated stream, not a clean
                # EOF at a frame boundary
                victim._writer.write(struct.pack(">I", 64) + b'{"op')
                await victim.drain()
                await asyncio.sleep(0.05)
                victim.abort()

                for _ in range(200):
                    if server.orphan_rollbacks:
                        break
                    await asyncio.sleep(0.01)
                assert server.abrupt_disconnects == 1
                assert server.orphan_rollbacks == 1

                # the write was rolled back and the lock released: a new
                # transaction on the same row commits cleanly
                after = (await probe.query(READ_CREDIT, [cid])).rows[0][0]
                assert after == pytest.approx(before)
                await probe.begin()
                await probe.execute(BUMP_CREDIT, [1.0, cid])
                await probe.commit()
                await probe.close()

        asyncio.run(scenario())


class TestFraming:
    def test_oversized_statement_errors_then_hangs_up(self, fleet):
        config = ServerConfig(qos=False, max_frame=512)
        with BackgroundServer(fleet, config) as bg:
            host, port = bg.server.address
            client = SocketClient(host, port)
            client.connect()
            with pytest.raises(SqlError, match="protocol.*exceeds"):
                client.execute(
                    "SELECT C_CREDIT FROM CUSTOMER WHERE C_ID = ? "
                    + "-- " + "x" * 2000,
                    [1],
                )
            # the stream is poisoned: the server hung up after the
            # error frame, so the next request finds a dead connection
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
            time.sleep(0.05)
            assert bg.server.abrupt_disconnects == 1

    def test_malformed_length_prefix_gets_one_error_frame(self, fleet):
        with BackgroundServer(fleet) as bg:
            host, port = bg.server.address
            raw = socket.create_connection((host, port), timeout=5.0)
            try:
                raw.sendall(b"\x00\x00\x00\x00")  # zero-length prefix
                decoder = FrameDecoder()
                frames = []
                while not frames:
                    data = raw.recv(65536)
                    if not data:
                        break
                    frames.extend(decoder.feed(data))
                assert frames, "expected a final error frame before close"
                assert frames[0]["ok"] is False
                assert "protocol" in frames[0]["error"]["message"]
                assert frames[0]["error"]["retryable"] is False
                # and then the hang-up
                assert raw.recv(65536) == b""
            finally:
                raw.close()

    def test_partial_reads_assemble_into_whole_frames(self, fleet):
        """A frame delivered one byte at a time still gets served."""
        from repro.serve.wire import encode_frame

        with BackgroundServer(fleet) as bg:
            host, port = bg.server.address
            raw = socket.create_connection((host, port), timeout=5.0)
            try:
                hello = encode_frame({"op": "hello", "client": "dribble"})
                for index in range(len(hello)):
                    raw.sendall(hello[index:index + 1])
                decoder = FrameDecoder()
                frames = []
                while not frames:
                    frames.extend(decoder.feed(raw.recv(65536)))
                assert frames[0]["ok"] is True
                assert frames[0]["n_shards"] == 2

                ping = encode_frame({"op": "ping"})
                raw.sendall(ping[:3])
                time.sleep(0.02)
                raw.sendall(ping[3:])
                frames = []
                while not frames:
                    frames.extend(decoder.feed(raw.recv(65536)))
                assert frames[0] == {"ok": True}
            finally:
                raw.close()


class TestAdmission:
    def test_connection_limit_sheds_with_a_retryable_error(self, fleet):
        config = ServerConfig(qos=False, max_connections=1)
        with BackgroundServer(fleet, config) as bg:
            host, port = bg.server.address
            first = SocketClient(host, port, client_name="first")
            first.connect()
            second = SocketClient(host, port, client_name="second")
            with pytest.raises(OverloadError) as exc_info:
                second.connect()
            assert exc_info.value.retryable is True
            assert bg.server.rejected == 1
            assert not second.connected  # rejected handshake tore down

            first.close()
            # the slot frees as the server finishes the first session
            for _ in range(200):
                try:
                    second.connect()
                    break
                except OverloadError:
                    time.sleep(0.01)
            assert second.connected
            second.close()

    def test_full_admission_queue_sheds_statements(self, fleet):
        config = ServerConfig(
            qos=True, policy=AdmissionPolicy(max_queue=0)
        )
        with BackgroundServer(fleet, config) as bg:
            host, port = bg.server.address
            client = SocketClient(host, port)
            client.connect()  # control ops bypass statement admission
            with pytest.raises(OverloadError) as exc_info:
                client.query(READ_CREDIT, [1])
            assert exc_info.value.retryable is True
            assert client.ping()  # the connection survived the shed
            client.close()
            assert bg.server.shed == 1
            assert bg.server.errors == 0

    def test_deadline_expires_queued_work_unexecuted(self, fleet):
        config = ServerConfig(qos=True, deadline_s=1e-9)
        with BackgroundServer(fleet, config) as bg:
            host, port = bg.server.address
            client = SocketClient(host, port)
            client.connect()
            with pytest.raises(DeadlineExceededError):
                client.query(READ_CREDIT, [1])
            client.close()
            assert bg.server.expired == 1
            assert bg.server.statements == 0  # never executed


class TestFaultInjector:
    def test_actions_follow_the_plan_windows(self):
        plan = FaultPlan(
            [
                FaultSpec(kind=FaultKind.CONN_DROP, target="serve",
                          start_s=1.0, duration_s=1.0, intensity=1.0),
                FaultSpec(kind=FaultKind.CONN_STALL, target="serve",
                          start_s=3.0, duration_s=1.0, intensity=0.5),
            ],
            seed=3,
        )
        injector = ServeFaultInjector(plan, seed=3, stall_scale_s=0.05)
        assert injector.action(0.5) == ("none", 0.0)
        assert injector.action(1.5) == ("drop", 0.0)
        action, stall_s = injector.action(3.5)
        assert action == "stall"
        assert stall_s == pytest.approx(0.5 * 0.05)
        assert injector.drops == 1
        assert injector.stalls == 1

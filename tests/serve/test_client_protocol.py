"""Transport parity: the ``Client`` protocol over sockets vs in-process.

The same verbs against the same seeded data must produce the same
rows, the same exception classes, and the same ``retryable``
classification whether the transport is a function call
(:class:`FleetClient`) or a real TCP socket (:class:`SocketClient`).
"""

import pytest

from repro.core.client import (
    Client,
    ClientError,
    EngineClient,
    FleetClient,
)
from repro.engine.database import Database
from repro.engine.errors import EngineError
from repro.serve.client import SocketClient
from repro.serve.driver import BackgroundServer, collect_keys
from repro.shard.fleet import load_sales_fleet

READ_CREDIT = "SELECT C_CREDIT FROM CUSTOMER WHERE C_ID = ?"
BUMP_CREDIT = "UPDATE CUSTOMER SET C_CREDIT = C_CREDIT + ? WHERE C_ID = ?"


def _fleet(name):
    db, _data = load_sales_fleet(2, row_scale=0.001, seed=42, name=name)
    return db


class TestProtocolShape:
    def test_every_transport_satisfies_the_protocol(self):
        fleet = _fleet("proto-a")
        assert isinstance(FleetClient(fleet), Client)
        assert isinstance(EngineClient(Database("proto-db")), Client)
        assert isinstance(SocketClient("127.0.0.1", 1), Client)


class _ParityHarness:
    """One in-process client and one socket client over twin fleets."""

    def __init__(self):
        self.inline_fleet = _fleet("parity-inline")
        self.socket_fleet = _fleet("parity-socket")
        self.keys = collect_keys(self.inline_fleet)
        self.bg = BackgroundServer(self.socket_fleet)

    def __enter__(self):
        host, port = self.bg.start()
        self.inline = FleetClient(self.inline_fleet)
        self.inline.connect()
        self.socket = SocketClient(host, port, client_name="parity")
        self.socket.connect()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.socket.close()
        self.inline.close()
        self.bg.stop()

    @property
    def clients(self):
        return (self.inline, self.socket)


class TestParity:
    def test_identical_rows_and_rowcounts(self):
        with _ParityHarness() as harness:
            cids = harness.keys["customers"][:4]
            for client in harness.clients:
                for index, cid in enumerate(cids):
                    result = client.execute(BUMP_CREDIT, [float(index), cid])
                    assert result.rowcount == 1
            rows_inline = [
                harness.inline.query(READ_CREDIT, [cid]).rows for cid in cids
            ]
            rows_socket = [
                harness.socket.query(READ_CREDIT, [cid]).rows for cid in cids
            ]
            assert rows_inline == rows_socket

    def test_transactions_commit_identically(self):
        with _ParityHarness() as harness:
            cid = harness.keys["customers"][0]
            for client in harness.clients:
                client.begin()
                assert client.in_txn
                client.execute(BUMP_CREDIT, [7.5, cid])
                client.commit()
                assert not client.in_txn
                assert client.gtid is not None  # both are fleet transports
            assert (
                harness.inline.query(READ_CREDIT, [cid]).rows
                == harness.socket.query(READ_CREDIT, [cid]).rows
            )

    def test_sql_errors_match_class_and_retryable(self):
        with _ParityHarness() as harness:
            caught = {}
            for label, client in zip(("inline", "socket"), harness.clients):
                with pytest.raises(EngineError) as exc_info:
                    client.query("SELECT * FROM NO_SUCH_TABLE", [])
                caught[label] = exc_info.value
            assert type(caught["inline"]) is type(caught["socket"])
            assert (
                caught["inline"].retryable == caught["socket"].retryable
            )

    def test_protocol_misuse_matches(self):
        with _ParityHarness() as harness:
            for client in harness.clients:
                with pytest.raises(ClientError):
                    client.commit()  # outside a transaction
                client.begin()
                with pytest.raises(ClientError):
                    client.begin()  # inside an open transaction
                client.rollback()

    def test_abandon_then_begin_afresh(self):
        """The post-crash convention works identically over the wire:
        abandon() drops affinity without rollback, and the session can
        begin the next transaction."""
        with _ParityHarness() as harness:
            cid = harness.keys["customers"][1]
            for client in harness.clients:
                client.begin()
                client.execute(BUMP_CREDIT, [1.0, cid])
                client.abandon()
                assert not client.in_txn
                client.abandon()  # idempotent outside a transaction
                client.begin()
                client.commit()

"""Graceful drain: ``SQLServer.stop(drain=True)`` loses nothing.

The drain contract: every statement already admitted finishes and its
response reaches the client before the sockets close; statements (and
connections) arriving *during* the drain are shed with a retryable
``OverloadError`` carrying a ``retry_after_s`` hint -- so a retrying
client loses zero requests across the handover.
"""

import asyncio

import pytest

from repro.engine.errors import OverloadError
from repro.serve.driver import collect_keys
from repro.serve.loadgen import run_load
from repro.serve.server import DRAIN_RETRY_AFTER_S, ServerConfig, SQLServer
from repro.shard.fleet import load_sales_fleet


def _fleet(name):
    fleet, _data = load_sales_fleet(
        2, row_scale=0.001, seed=42, name=name
    )
    return fleet


class TestDrain:
    def test_drain_mid_load_loses_nothing(self):
        """Stop with drain while a closed-loop drive is in flight: every
        offered request gets a response (none lost to a dead socket)."""

        async def scenario():
            fleet = _fleet("drain-load")
            server = SQLServer(fleet, ServerConfig(qos=False, name="drain"))
            await server.start()
            host, port = server.address
            keys = collect_keys(fleet)
            load = asyncio.ensure_future(run_load(
                host, port, connections=4, txns_per_conn=48,
                keys=keys, persona="payment", seed=42,
            ))
            await asyncio.sleep(0.02)  # let the drive get airborne
            stop = asyncio.ensure_future(server.stop(drain=True))
            result = await load
            await stop
            return server, result

        server, result = asyncio.run(scenario())
        assert result.offered == 4 * 48
        # the whole point: no request died with its connection
        assert result.lost == 0
        assert result.reconnects == 0
        assert result.errors == 0
        # every request was answered: committed before the drain, shed
        # retryably after it (aborts are ordinary engine retryables)
        answered = result.committed + result.shed + result.aborted
        assert answered == result.offered
        assert result.committed > 0
        assert server._pending_stmts == 0
        assert server.shed == result.shed

    def test_drain_sheds_new_statements_retryably(self):
        """A statement arriving during the drain gets the retryable
        overload error with the backoff hint, while control frames and
        already-open sessions keep working until they disconnect."""

        async def scenario():
            fleet = _fleet("drain-shed")
            server = SQLServer(fleet, ServerConfig(qos=False, name="drain"))
            await server.start()
            host, port = server.address
            from repro.serve.client import AsyncSQLClient

            client = AsyncSQLClient(host, port)
            await client.connect()
            keys = collect_keys(fleet)
            cid = keys["customers"][0]
            ok = await client.query(
                "SELECT C_CREDIT FROM CUSTOMER WHERE C_ID = ?", [cid]
            )
            assert ok.rows
            stop = asyncio.ensure_future(server.stop(drain=True))
            await asyncio.sleep(0)  # _draining is set synchronously
            shed_error = None
            try:
                await client.query(
                    "SELECT C_CREDIT FROM CUSTOMER WHERE C_ID = ?", [cid]
                )
            except OverloadError as error:
                shed_error = error
            # control frames still answered inline during the drain
            assert await client.ping()
            await client.close()
            await stop
            return server, shed_error

        server, shed_error = asyncio.run(scenario())
        assert isinstance(shed_error, OverloadError)
        assert shed_error.retryable
        assert shed_error.retry_after_s == pytest.approx(DRAIN_RETRY_AFTER_S)
        assert server.shed == 1

    def test_drain_rejects_new_connections(self):
        """Connections arriving during the drain are turned away with
        the same retryable hint instead of hanging."""

        async def scenario():
            fleet = _fleet("drain-conn")
            server = SQLServer(fleet, ServerConfig(qos=False, name="drain"))
            await server.start()
            host, port = server.address
            from repro.serve.client import AsyncSQLClient

            # pin the drain window open directly (stop() would close the
            # listener the instant the queue is empty, racing the
            # late connection into a plain refused socket)
            server._draining = True
            late = AsyncSQLClient(host, port)
            rejected = None
            try:
                await late.connect()
            except OverloadError as error:
                rejected = error
            await server.stop()
            return server, rejected

        server, rejected = asyncio.run(scenario())
        assert isinstance(rejected, OverloadError)
        assert rejected.retryable
        assert rejected.retry_after_s == pytest.approx(DRAIN_RETRY_AFTER_S)
        assert server.rejected == 1

    def test_plain_stop_still_abrupt(self):
        """Without ``drain`` the old contract holds: stop() tears down
        immediately and is idempotent."""

        async def scenario():
            fleet = _fleet("drain-plain")
            server = SQLServer(fleet, ServerConfig(qos=False, name="drain"))
            await server.start()
            await server.stop()
            await server.stop()  # idempotent
            return server

        server = asyncio.run(scenario())
        assert server.shed == 0
        assert server._server is None

"""End-to-end availability under chaos: goodput, failover, breakers."""

import pytest

from repro.chaos.availability import AvailabilityEvaluator
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.cloud.architectures import get as get_architecture


def evaluate(plan, **kwargs):
    defaults = dict(n_clients=4, duration_s=plan.horizon_s + 10.0, row_scale=0.001)
    defaults.update(kwargs)
    return AvailabilityEvaluator(get_architecture("cdb1"), plan, **defaults).run()


def test_replica_partition_goodput_survives_and_breaker_recloses():
    """The acceptance scenario: during an injected replica partition the
    session keeps goodput above zero by backing off and failing over to
    the primary, the replica's breaker opens under the fault, and it
    re-closes after the partition heals."""
    plan = FaultPlan(
        [FaultSpec(FaultKind.PARTITION, "replica:0", start_s=5.0, duration_s=10.0)],
        seed=9, name="replica-partition",
    )
    score = evaluate(plan, duration_s=25.0)

    assert score.requests > 200
    # goodput > 0 *during the partition window*, not just overall
    assert score.goodput_between(5.0, 15.0) > 0.0
    assert score.goodput > 0.9
    # the breaker demonstrably opened under the fault...
    assert score.breaker_opened >= 1
    # ...and re-closed once probes succeeded after the heal
    assert score.breaker_reclosed >= 1


def test_primary_partition_fails_writes_but_reads_survive():
    plan = FaultPlan(
        [FaultSpec(FaultKind.PARTITION, "primary", start_s=5.0, duration_s=5.0)],
        seed=9, name="primary-partition",
    )
    score = evaluate(plan, duration_s=20.0)
    # writes have nowhere to fail over, so some requests fail...
    assert score.failed > 0
    # ...but reads keep the lights on throughout the window
    assert score.goodput_between(5.0, 10.0) > 0.0


def test_healthy_run_is_perfect():
    plan = FaultPlan([], seed=1, name="empty")
    score = evaluate(plan, duration_s=10.0)
    assert score.requests > 0
    assert score.goodput == 1.0
    assert score.error_budget_burn == 0.0
    assert score.available
    assert score.breaker_opened == 0


def test_same_seed_same_score_different_seed_differs():
    kwargs = dict(duration_s=30.0, targets=["primary", "replica:0"], n_faults=4)
    plan = FaultPlan.generate(seed=5, **kwargs)
    one = evaluate(plan, duration_s=35.0)
    two = evaluate(plan, duration_s=35.0)
    assert one.plan_fingerprint == two.plan_fingerprint
    assert one.requests == two.requests
    assert one.goodput == two.goodput
    assert one.samples == two.samples

    other_plan = FaultPlan.generate(seed=6, **kwargs)
    assert other_plan.fingerprint() != plan.fingerprint()


def test_gray_primary_can_burn_the_error_budget():
    """A hard gray fault makes the primary slower than the attempt
    timeout: requests burn budget even though the node is 'alive'."""
    plan = FaultPlan(
        [FaultSpec(FaultKind.GRAY, "primary", start_s=2.0, duration_s=10.0, intensity=1.0)],
        seed=3, name="gray",
    )
    score = evaluate(
        plan, duration_s=16.0, base_latency_s=0.05, attempt_timeout_s=0.2,
    )
    assert score.failed > 0
    assert score.error_budget_burn > 0.0
    # stale reads off the healthy replica still succeed
    assert score.goodput_between(2.0, 12.0) > 0.0


def test_slo_validation():
    plan = FaultPlan([], seed=1)
    with pytest.raises(ValueError):
        AvailabilityEvaluator(get_architecture("cdb1"), plan, slo=1.0)
    with pytest.raises(ValueError):
        AvailabilityEvaluator(get_architecture("cdb1"), plan, n_clients=0)

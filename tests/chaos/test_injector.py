"""The injector's pure time-point queries."""

import pytest

from repro.chaos.injector import GRAY_SLOWDOWN, MAX_LOSS, ChaosInjector
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec


def make(*specs):
    return ChaosInjector(FaultPlan(specs))


def test_partitioned_and_heal():
    inj = make(FaultSpec(FaultKind.PARTITION, "replica:0", start_s=5.0, duration_s=10.0))
    assert not inj.partitioned("replica:0", 4.0)
    assert inj.partitioned("replica:0", 5.0)
    assert not inj.partitioned("replica:0", 15.0)
    assert not inj.partitioned("primary", 7.0)
    assert inj.heal_at("replica:0", 7.0) == 15.0
    assert inj.heal_at("replica:0", 20.0) == 20.0  # healthy: heal is "now"


def test_flap_counts_as_partition_only_when_down():
    inj = make(FaultSpec(
        FaultKind.FLAP, "replica:0", start_s=0.0, duration_s=8.0, period_s=2.0
    ))
    assert inj.partitioned("replica:0", 1.0)
    assert not inj.partitioned("replica:0", 3.0)
    assert inj.heal_at("replica:0", 1.0) == 2.0


def test_delay_and_loss_multiply():
    inj = make(
        FaultSpec(FaultKind.DELAY, "replica:0", start_s=0.0, duration_s=10.0, intensity=1.0),
        FaultSpec(FaultKind.LOSS, "replica:0", start_s=0.0, duration_s=10.0, intensity=0.5),
    )
    # delay doubles, 50% loss doubles again (1 / (1 - 0.5))
    assert inj.delay_factor("replica:0", 5.0) == pytest.approx(4.0)
    assert inj.delay_factor("replica:0", 15.0) == 1.0


def test_loss_is_capped():
    inj = make(FaultSpec(
        FaultKind.LOSS, "x", start_s=0.0, duration_s=1.0, intensity=1.0
    ))
    assert inj.delay_factor("x", 0.5) == pytest.approx(1.0 / (1.0 - MAX_LOSS))


def test_gray_slowdown():
    inj = make(FaultSpec(
        FaultKind.GRAY, "primary", start_s=0.0, duration_s=10.0, intensity=1.0
    ))
    assert inj.slowdown("primary", 5.0) == pytest.approx(GRAY_SLOWDOWN)
    assert inj.slowdown("primary", 15.0) == 1.0


def test_stalled_until():
    inj = make(FaultSpec(FaultKind.STALL, "replica:0", start_s=2.0, duration_s=6.0))
    assert inj.stalled_until("replica:0", 1.0) is None
    assert inj.stalled_until("replica:0", 3.0) == 8.0
    assert inj.stalled_until("replica:0", 9.0) is None


def test_degraded_aggregates_everything():
    inj = make(
        FaultSpec(FaultKind.GRAY, "a", start_s=0.0, duration_s=1.0),
        FaultSpec(FaultKind.PARTITION, "b", start_s=0.0, duration_s=1.0),
    )
    assert inj.degraded("a", 0.5)
    assert inj.degraded("b", 0.5)
    assert not inj.degraded("c", 0.5)
    assert not inj.degraded("a", 2.0)


def test_engine_faults_filtered_by_target():
    inj = make(
        FaultSpec(FaultKind.CRASH, "primary", start_s=1.0, duration_s=0.0),
        FaultSpec(FaultKind.BIT_FLIP, "primary", start_s=2.0, duration_s=0.0),
        FaultSpec(FaultKind.TORN_WRITE, "replica:0", start_s=3.0, duration_s=0.0),
    )
    kinds = {spec.kind for spec in inj.engine_faults("primary")}
    assert kinds == {FaultKind.CRASH, FaultKind.BIT_FLIP}


def test_observed_counters_record_bites():
    inj = make(FaultSpec(FaultKind.PARTITION, "x", start_s=0.0, duration_s=1.0))
    inj.partitioned("x", 0.5)
    inj.partitioned("x", 0.6)
    inj.partitioned("x", 2.0)  # outside the window: not observed
    assert inj.observed == {"partition": 2}

"""DR fault kinds are events too: one-shot triggers disarm after firing.

Mirrors ``test_disarm.py`` for the DR families: ``BACKUP_CRASH`` /
``RESTORE_CRASH`` fire at most once per spec (the retried job after
recovery must run clean), and ``ARCHIVE_CORRUPT`` flips its bit exactly
once (the scrub pass that follows must not find the segment
re-corrupted).  ``ARCHIVE_LAG`` is the deliberate exception -- a
window, not an event.
"""

import pytest

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.dr.archive import FleetArchiver
from repro.dr.backup import BackupCrash, BackupJob
from repro.ha.workload import build_pairs_fleet


def injector(*specs):
    return ChaosInjector(FaultPlan(specs, seed=1, name="dr-disarm"))


class TestDrCrashOneShot:
    def test_backup_crash_fires_once_per_spec(self):
        chaos = injector(
            FaultSpec(FaultKind.BACKUP_CRASH, "after_pin", 0.0, 0.0)
        )
        assert chaos.take_dr_crash(FaultKind.BACKUP_CRASH, "after_pin")
        assert not chaos.take_dr_crash(FaultKind.BACKUP_CRASH, "after_pin")

    def test_other_phases_untouched(self):
        chaos = injector(
            FaultSpec(FaultKind.BACKUP_CRASH, "after_pin", 0.0, 0.0)
        )
        assert not chaos.take_dr_crash(FaultKind.BACKUP_CRASH, "after_image")
        assert chaos.take_dr_crash(FaultKind.BACKUP_CRASH, "after_pin")

    def test_backup_and_restore_specs_fire_independently(self):
        chaos = injector(
            FaultSpec(FaultKind.BACKUP_CRASH, "after_pin", 0.0, 0.0),
            FaultSpec(FaultKind.RESTORE_CRASH, "after_replay", 0.0, 0.0),
        )
        assert chaos.take_dr_crash(FaultKind.BACKUP_CRASH, "after_pin")
        assert chaos.take_dr_crash(FaultKind.RESTORE_CRASH, "after_replay")
        assert not chaos.take_dr_crash(FaultKind.BACKUP_CRASH, "after_pin")
        assert not chaos.take_dr_crash(FaultKind.RESTORE_CRASH, "after_replay")

    def test_non_dr_kind_rejected(self):
        chaos = injector(
            FaultSpec(FaultKind.COORD_CRASH, "after_prepare", 0.0, 0.0)
        )
        with pytest.raises(ValueError, match="not a DR crash fault kind"):
            chaos.take_dr_crash(FaultKind.COORD_CRASH, "after_prepare")

    def test_chaos_armed_backup_crash_does_not_retrip(self):
        """End to end: the chaos spec kills the first backup run; the
        retried run on the recovered fleet goes through clean."""
        chaos = injector(
            FaultSpec(FaultKind.BACKUP_CRASH, "after_image", 0.0, 0.0)
        )
        fleet, _pairs = build_pairs_fleet(n_shards=2, n_pairs=2, name="drdis")
        archiver = FleetArchiver(fleet, mode="sync")
        backup = BackupJob(fleet, archiver, chaos=chaos, name="drdis")
        with pytest.raises(BackupCrash):
            backup.run()
        fleet.recover()
        manifest = backup.run()
        assert manifest.total_rows == 4


class TestArchiveCorruptOneShot:
    def test_fires_once_after_its_start(self):
        chaos = injector(
            FaultSpec(FaultKind.ARCHIVE_CORRUPT, "archive:0", 1.0, 0.0)
        )
        assert not chaos.take_archive_corrupt("archive:0", now=0.5)
        assert chaos.take_archive_corrupt("archive:0", now=1.5)
        assert not chaos.take_archive_corrupt("archive:0", now=2.0)

    def test_targets_are_independent(self):
        chaos = injector(
            FaultSpec(FaultKind.ARCHIVE_CORRUPT, "archive:0", 0.0, 0.0),
            FaultSpec(FaultKind.ARCHIVE_CORRUPT, "archive:1", 0.0, 0.0),
        )
        assert chaos.take_archive_corrupt("archive:0", now=0.0)
        assert chaos.take_archive_corrupt("archive:1", now=0.0)
        assert not chaos.take_archive_corrupt("archive:0", now=9.0)


class TestArchiveLagWindow:
    def test_lag_is_a_window_not_an_event(self):
        chaos = injector(
            FaultSpec(FaultKind.ARCHIVE_LAG, "archive:0", 1.0, 2.0)
        )
        assert not chaos.archive_lagging("archive:0", now=0.5)
        assert chaos.archive_lagging("archive:0", now=1.5)
        # still inside the window: a window re-reports, it never disarms
        assert chaos.archive_lagging("archive:0", now=2.5)
        assert not chaos.archive_lagging("archive:0", now=3.5)

"""Fault plans: validation, windows, flapping, and the determinism contract."""

import pytest

from repro.chaos.plan import ENGINE_KINDS, FaultKind, FaultPlan, FaultSpec


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.DELAY, "primary", start_s=-1.0, duration_s=5.0)
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.DELAY, "primary", start_s=0.0, duration_s=-5.0)
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.LOSS, "primary", start_s=0.0, duration_s=5.0, intensity=1.5)
    with pytest.raises(ValueError):
        FaultSpec(FaultKind.FLAP, "primary", start_s=0.0, duration_s=5.0, period_s=-1.0)


def test_window_membership():
    spec = FaultSpec(FaultKind.PARTITION, "replica:0", start_s=10.0, duration_s=5.0)
    assert not spec.active_at(9.999)
    assert spec.active_at(10.0)
    assert spec.active_at(14.999)
    assert not spec.active_at(15.0)
    assert spec.end_s == 15.0
    assert spec.heal_at(12.0) == 15.0


def test_flap_duty_cycle():
    """A flap with period 2 over an 8s window: down, up, down, up."""
    spec = FaultSpec(
        FaultKind.FLAP, "replica:0", start_s=0.0, duration_s=8.0, period_s=2.0
    )
    assert spec.active_at(1.0)        # first half-period: down
    assert not spec.active_at(3.0)    # second: up
    assert spec.active_at(5.0)        # third: down
    assert not spec.active_at(7.0)    # fourth: up
    # heal_at points at the end of the *current* down half-period
    assert spec.heal_at(1.0) == 2.0
    assert spec.heal_at(5.0) == 6.0


def test_flap_default_period_is_quarter_window():
    spec = FaultSpec(FaultKind.FLAP, "x", start_s=0.0, duration_s=8.0)
    assert spec.flap_period_s == 2.0


def test_plan_active_filters():
    plan = FaultPlan([
        FaultSpec(FaultKind.PARTITION, "replica:0", start_s=0.0, duration_s=10.0),
        FaultSpec(FaultKind.GRAY, "primary", start_s=5.0, duration_s=10.0),
    ])
    assert len(plan.active(6.0)) == 2
    assert len(plan.active(6.0, kind=FaultKind.GRAY)) == 1
    assert len(plan.active(6.0, target="replica:0")) == 1
    assert plan.active(20.0) == []
    assert plan.horizon_s == 15.0
    assert len(plan.by_kind(*ENGINE_KINDS)) == 0


def test_fingerprint_is_order_independent():
    a = FaultSpec(FaultKind.DELAY, "primary", start_s=1.0, duration_s=2.0)
    b = FaultSpec(FaultKind.LOSS, "replica:0", start_s=3.0, duration_s=4.0)
    assert FaultPlan([a, b], seed=1).fingerprint() == FaultPlan([b, a], seed=1).fingerprint()
    assert FaultPlan([a, b], seed=1).fingerprint() != FaultPlan([a, b], seed=2).fingerprint()


def test_generate_is_deterministic_per_seed():
    kwargs = dict(duration_s=60.0, targets=["primary", "replica:0"], n_faults=6)
    one = FaultPlan.generate(seed=123, **kwargs)
    two = FaultPlan.generate(seed=123, **kwargs)
    other = FaultPlan.generate(seed=124, **kwargs)
    assert one.fingerprint() == two.fingerprint()
    assert one.specs == two.specs
    assert one.describe() == two.describe()
    assert other.fingerprint() != one.fingerprint()
    for spec in one:
        assert 0.0 <= spec.start_s and spec.end_s <= 60.0


def test_generate_validates_inputs():
    with pytest.raises(ValueError):
        FaultPlan.generate(seed=1, duration_s=10.0, targets=[])
    with pytest.raises(ValueError):
        FaultPlan.generate(seed=1, duration_s=0.0, targets=["primary"])

"""Crash faults are events: every one-shot trigger disarms after firing.

Covers the chaos injector's three one-shot families (COORD_CRASH,
PRIMARY_CRASH, REPLICA_CRASH) and the coordinator's own armed crash
points and phase actions -- a fired fault must never re-trip during the
recovery that follows it.
"""

import pytest

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.engine.errors import SimulatedCrash

from tests.shard.test_2pc import load_keys
from tests.shard.test_router import kv_fleet


def injector(*specs):
    return ChaosInjector(FaultPlan(specs, seed=1, name="disarm"))


class TestCoordCrashOneShot:
    def test_fires_once_per_spec(self):
        chaos = injector(
            FaultSpec(FaultKind.COORD_CRASH, "after_prepare", 0.0, 0.0)
        )
        assert chaos.take_coordinator_crash("after_prepare")
        assert not chaos.take_coordinator_crash("after_prepare")

    def test_other_phases_untouched(self):
        chaos = injector(
            FaultSpec(FaultKind.COORD_CRASH, "after_prepare", 0.0, 0.0)
        )
        assert not chaos.take_coordinator_crash("mid_commit")
        assert chaos.take_coordinator_crash("after_prepare")

    def test_two_specs_fire_independently(self):
        chaos = injector(
            FaultSpec(FaultKind.COORD_CRASH, "after_prepare", 0.0, 0.0),
            FaultSpec(FaultKind.COORD_CRASH, "mid_commit", 0.0, 0.0),
        )
        assert chaos.take_coordinator_crash("after_prepare")
        assert chaos.take_coordinator_crash("mid_commit")
        assert not chaos.take_coordinator_crash("after_prepare")
        assert not chaos.take_coordinator_crash("mid_commit")

    def test_recovery_after_chaos_crash_does_not_retrip(self):
        """End to end: the chaos-armed coordinator crash fires once; the
        recovery and the traffic after it run clean."""
        fleet = kv_fleet(
            2,
            chaos=injector(
                FaultSpec(FaultKind.COORD_CRASH, "after_prepare", 0.0, 0.0)
            ),
        )
        by_shard = load_keys(fleet)

        def cross_write(value):
            gtxn = fleet.begin()
            for keys in by_shard:
                fleet.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [value, keys[0]], gtxn=gtxn
                )
            gtxn.commit()

        with pytest.raises(SimulatedCrash):
            cross_write(1)
        fleet.crash()
        fleet.recover()
        cross_write(2)  # the same phase boundary passes silently now


class TestNodeCrashOneShot:
    @pytest.mark.parametrize(
        "kind", [FaultKind.PRIMARY_CRASH, FaultKind.REPLICA_CRASH]
    )
    def test_fires_once_after_start(self, kind):
        chaos = injector(FaultSpec(kind, "shard:1", 2.0, 0.0))
        assert not chaos.take_node_crash(kind, "shard:1", 1.9)
        assert chaos.take_node_crash(kind, "shard:1", 2.0)
        # never again, no matter how often the detector polls
        for now in (2.0, 2.5, 100.0):
            assert not chaos.take_node_crash(kind, "shard:1", now)

    def test_target_must_match(self):
        chaos = injector(FaultSpec(FaultKind.PRIMARY_CRASH, "shard:1", 0.0, 0.0))
        assert not chaos.take_node_crash(FaultKind.PRIMARY_CRASH, "shard:0", 5.0)
        assert chaos.take_node_crash(FaultKind.PRIMARY_CRASH, "shard:1", 5.0)

    def test_non_ha_kind_rejected(self):
        chaos = injector()
        with pytest.raises(ValueError, match="not an HA fault kind"):
            chaos.take_node_crash(FaultKind.CRASH, "shard:0", 0.0)


class TestArmedCoordinatorDisarms:
    def test_arm_crash_is_one_shot(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        fleet.coordinator.arm_crash("after_prepare")
        assert fleet.coordinator.armed
        gtxn = fleet.begin()
        for keys in by_shard:
            fleet.execute(
                "UPDATE kv SET V = ? WHERE K = ?", [1, keys[0]], gtxn=gtxn
            )
        with pytest.raises(SimulatedCrash):
            gtxn.commit()
        assert not fleet.coordinator.armed

    def test_arm_action_is_one_shot(self):
        fleet = kv_fleet(2)
        by_shard = load_keys(fleet)
        fired = []
        fleet.coordinator.arm_action("before_prepare", lambda: fired.append(1))
        assert fleet.coordinator.armed

        def cross_write(value):
            gtxn = fleet.begin()
            for keys in by_shard:
                fleet.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [value, keys[0]], gtxn=gtxn
                )
            gtxn.commit()

        cross_write(1)
        assert fired == [1]
        assert not fleet.coordinator.armed
        cross_write(2)
        assert fired == [1]  # ran exactly once

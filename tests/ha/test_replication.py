"""WAL shipping: bootstrap, both ack modes, and clean disconnects."""

import pytest

from repro.engine.errors import EngineError
from repro.ha.lease import LeaseConfig, VirtualClock
from repro.ha.replication import WalShipper, bootstrap_standby
from repro.ha.workload import SELECT_STAMP, UPDATE_STAMP, build_pairs_fleet
from repro.ha.cluster import HAFleet


def ha_fleet(n_pairs=3, **kwargs):
    fleet, pairs = build_pairs_fleet(
        n_shards=2, n_pairs=n_pairs, fleet_cls=HAFleet, **kwargs
    )
    fleet.start_replication()
    return fleet, pairs


def stamp_on(db, row_id):
    return db.execute(SELECT_STAMP, [row_id]).rows[0][0]


class TestBootstrap:
    def test_standby_starts_with_primary_rows(self):
        fleet, pairs = ha_fleet()
        for shard_id, group in fleet.groups.items():
            for row_id in (row for pair in pairs for row in pair):
                if fleet.router.shard_for("PAIRS", row_id) != shard_id:
                    continue
                assert stamp_on(group.standby, row_id) == 0

    def test_standby_wal_continues_primary_lsns(self):
        fleet, _pairs = ha_fleet()
        group = fleet.groups[0]
        before = group.primary.wal.last_lsn
        fleet.execute(UPDATE_STAMP, [1, _first_row_of(fleet, 0, _pairs)])
        assert group.primary.wal.last_lsn > before
        # every record appended after the bootstrap arrived verbatim
        assert group.standby.wal.last_lsn == group.primary.wal.last_lsn

    def test_bootstrap_requires_quiesced_primary(self):
        fleet, pairs = build_pairs_fleet(n_shards=2, n_pairs=2)
        gtxn = fleet.begin()
        fleet.execute(UPDATE_STAMP, [1, pairs[0][0]], gtxn=gtxn)
        shard = fleet.router.shard_for("PAIRS", pairs[0][0])
        with pytest.raises(EngineError, match="quiesced"):
            bootstrap_standby(fleet.shards[shard])
        gtxn.rollback()

    def test_double_attach_rejected(self):
        fleet, _pairs = ha_fleet()
        group = fleet.groups[0]
        with pytest.raises(EngineError, match="already has a shipper"):
            WalShipper(group.primary, group.standby)


def _first_row_of(fleet, shard_id, pairs):
    for row_a, row_b in pairs:
        for row in (row_a, row_b):
            if fleet.router.shard_for("PAIRS", row) == shard_id:
                return row
    raise AssertionError(f"no pair row on shard {shard_id}")


class TestShipping:
    @pytest.mark.parametrize("mode", ["sync", "semisync"])
    def test_acked_commit_is_durable_on_standby(self, mode):
        fleet, pairs = ha_fleet(ack_mode=mode)
        gtxn = fleet.begin()
        fleet.execute(UPDATE_STAMP, [7, pairs[0][0]], gtxn=gtxn)
        fleet.execute(UPDATE_STAMP, [7, pairs[0][1]], gtxn=gtxn)
        gtxn.commit()
        # the shipped log replays to the same state the primary holds
        for group in fleet.groups.values():
            assert group.shipper.is_fresh
            group.shipper.detach()
            group.standby.crash()
            group.standby.recover()
        for row in pairs[0]:
            shard = fleet.router.shard_for("PAIRS", row)
            assert stamp_on(fleet.groups[shard].standby, row) == 7

    def test_semisync_ships_the_same_records(self):
        sync_fleet, pairs = ha_fleet(ack_mode="sync")
        semi_fleet, _ = ha_fleet(ack_mode="semisync")
        for fleet in (sync_fleet, semi_fleet):
            gtxn = fleet.begin()
            fleet.execute(UPDATE_STAMP, [3, pairs[0][0]], gtxn=gtxn)
            fleet.execute(UPDATE_STAMP, [3, pairs[0][1]], gtxn=gtxn)
            gtxn.commit()
        for sync_group, semi_group in zip(
            sync_fleet.groups.values(), semi_fleet.groups.values()
        ):
            # buffering changes the batching, never the records: the
            # standby logs end at the same LSN with nothing pending
            assert semi_group.shipper.shipped == sync_group.shipper.shipped
            assert (
                semi_group.standby.wal.last_lsn
                == sync_group.standby.wal.last_lsn
            )
            assert semi_group.shipper._buffer == []


class TestDisconnect:
    def test_standby_death_never_fails_the_primary(self):
        fleet, pairs = ha_fleet()
        victim = fleet.router.shard_for("PAIRS", pairs[0][0])
        fleet.kill_standby(victim)
        # the primary keeps serving; the shipper absorbs the loss
        fleet.execute(UPDATE_STAMP, [5, pairs[0][0]])
        group = fleet.groups[victim]
        assert not group.shipper.connected
        assert group.shipper.lost > 0
        assert not group.standby_fresh

    def test_lost_counts_semisync_buffer(self):
        fleet, pairs = ha_fleet(ack_mode="semisync")
        victim = fleet.router.shard_for("PAIRS", pairs[0][0])
        fleet.kill_standby(victim)
        fleet.execute(UPDATE_STAMP, [5, pairs[0][0]])
        group = fleet.groups[victim]
        # the whole failed batch counts, including buffered data records
        assert group.shipper.lost >= 2  # UPDATE + COMMIT at minimum

    def test_resync_restores_freshness(self):
        fleet, pairs = ha_fleet()
        victim = fleet.router.shard_for("PAIRS", pairs[0][0])
        fleet.kill_standby(victim)
        fleet.execute(UPDATE_STAMP, [5, pairs[0][0]])
        fleet.resync(victim)
        group = fleet.groups[victim]
        assert group.standby_fresh
        assert group.resyncs == 1
        assert stamp_on(group.standby, pairs[0][0]) == 5

    def test_detach_clears_hook_only_if_owned(self):
        fleet, _pairs = ha_fleet()
        group = fleet.groups[0]
        old_shipper = group.shipper
        fleet.resync(0)  # replaces the shipper
        assert group.shipper is not old_shipper
        # detaching the stale shipper again must not unhook the new one
        old_shipper.detach()
        assert group.primary.wal.on_append is group.shipper._hook


class TestClockAndLease:
    def test_clock_rejects_negative_advance(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_lease_config_validation(self):
        with pytest.raises(ValueError):
            LeaseConfig(lease_s=0.1, heartbeat_s=0.1)
        with pytest.raises(ValueError):
            LeaseConfig(lease_s=-1.0)

    def test_renewals_coalesce_to_heartbeat(self):
        from repro.ha.lease import LeaderLease

        lease = LeaderLease(LeaseConfig(lease_s=0.5, heartbeat_s=0.1), now=0.0)
        assert lease.renew(0.0)
        assert not lease.renew(0.05)  # inside the heartbeat window
        assert lease.renew(0.11)
        assert not lease.expired(0.6)
        assert lease.expired(0.61 + 0.001)

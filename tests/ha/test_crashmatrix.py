"""Spot checks of the crash matrix plus its determinism contract.

The full sweep runs in CI (``python -m repro.ha.crashmatrix``); here a
few representative cells keep the suite fast while still exercising all
three fault targets end to end.
"""

import pytest

from repro.ha.crashmatrix import TARGETS, run_cell, run_matrix
from repro.shard.coordinator import PHASES


class TestCells:
    @pytest.mark.parametrize("target", TARGETS)
    def test_after_prepare_cell_passes(self, target):
        cell = run_cell("after_prepare", target, failover=True)
        assert cell.fault_fired
        assert cell.violations == []
        assert cell.post_transfers > 0 and cell.post_reads > 0

    def test_blocking_window_cell(self):
        # participant death after prepare with the decision unreachable:
        # the dangling/blocking window, resolved by failover
        cell = run_cell("after_prepare", "participant", failover=True)
        assert cell.passed

    def test_restart_dimension(self):
        cell = run_cell("mid_decision", "coordinator", failover=False)
        assert cell.passed

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown phase"):
            run_cell("before_everything", "participant", failover=True)
        with pytest.raises(ValueError, match="unknown target"):
            run_cell(PHASES[0], "bystander", failover=True)


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        first = run_matrix(seed=7, quick=True)
        second = run_matrix(seed=7, quick=True)
        assert first.passed and second.passed
        assert first.fingerprint() == second.fingerprint()

    def test_quick_sweep_covers_all_phases_and_targets(self):
        result = run_matrix(seed=7, quick=True)
        assert len(result.cells) == len(PHASES) * len(TARGETS)
        seen = {(cell.phase, cell.target) for cell in result.cells}
        assert seen == {(p, t) for p in PHASES for t in TARGETS}
        # both ack modes appear in every sweep
        assert {cell.ack_mode for cell in result.cells} == {"sync", "semisync"}
        assert result.violations == []

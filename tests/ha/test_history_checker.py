"""Every checker invariant trips on a synthetic bad history -- and a
clean history (including unknown ``info`` outcomes) passes."""

from repro.ha.history import History, HistoryChecker


def transfer(history, worker, pair, version, outcome="ok"):
    history.invoke(worker, "transfer", pair, version=version)
    getattr(history, outcome)(worker, "transfer", pair, version=version)


def read(history, worker, pair, observed):
    history.invoke(worker, "read", pair)
    history.ok(worker, "read", pair, observed=observed)


def kinds(report):
    return sorted({violation.kind for violation in report.violations})


class TestCleanHistories:
    def test_empty_history_is_consistent(self):
        report = HistoryChecker().check(History())
        assert report.consistent

    def test_ok_transfers_and_matching_reads_pass(self):
        history = History()
        transfer(history, 0, 0, 1)
        read(history, 1, 0, (1, 1))
        transfer(history, 0, 0, 2)
        read(history, 1, 0, (2, 2))
        report = HistoryChecker().check(history, {0: (2, 2)})
        assert report.consistent
        assert report.reads_checked == 2

    def test_info_outcome_may_surface_or_not(self):
        # an unknown-outcome transfer is allowed to appear in reads and
        # in the final state -- or to never have happened at all
        for final in ((2, 2), (1, 1)):
            history = History()
            transfer(history, 0, 0, 1)
            transfer(history, 0, 0, 2, outcome="info")
            report = HistoryChecker().check(history, {0: final})
            assert report.consistent, (final, report.violations)

    def test_failed_transfer_version_burned(self):
        history = History()
        transfer(history, 0, 0, 1)
        transfer(history, 0, 0, 2, outcome="fail")
        transfer(history, 0, 0, 3)
        report = HistoryChecker().check(history, {0: (3, 3)})
        assert report.consistent


class TestViolations:
    def test_fractured_read(self):
        history = History()
        transfer(history, 0, 0, 1)
        read(history, 1, 0, (1, 0))
        assert kinds(HistoryChecker().check(history)) == ["fractured_read"]

    def test_phantom_version(self):
        history = History()
        read(history, 1, 0, (9, 9))
        assert kinds(HistoryChecker().check(history)) == ["phantom_version"]

    def test_aborted_read(self):
        history = History()
        transfer(history, 0, 0, 1, outcome="fail")
        read(history, 1, 0, (1, 1))
        assert kinds(HistoryChecker().check(history)) == ["aborted_read"]

    def test_non_monotonic_read_per_worker(self):
        history = History()
        transfer(history, 0, 0, 1)
        transfer(history, 0, 0, 2)
        read(history, 1, 0, (2, 2))
        read(history, 1, 0, (1, 1))  # worker 1 went backwards
        assert "non_monotonic_read" in kinds(HistoryChecker().check(history))

    def test_different_workers_may_observe_out_of_order(self):
        history = History()
        transfer(history, 0, 0, 1)
        transfer(history, 0, 0, 2)
        read(history, 1, 0, (2, 2))
        read(history, 2, 0, (1, 1))  # a *different* worker: no session order
        assert HistoryChecker().check(history).consistent

    def test_lost_update(self):
        history = History()
        transfer(history, 0, 0, 1)
        transfer(history, 0, 0, 2)
        report = HistoryChecker().check(history, {0: (1, 1)})
        assert kinds(report) == ["lost_update"]

    def test_fractured_state(self):
        history = History()
        transfer(history, 0, 0, 1)
        report = HistoryChecker().check(history, {0: (1, 0)})
        assert kinds(report) == ["fractured_state"]

    def test_violations_carry_op_index(self):
        history = History()
        transfer(history, 0, 0, 1)
        read(history, 1, 0, (1, 0))
        violation = HistoryChecker().check(history).violations[0]
        assert violation.op_index == history.ops[-1].index
        assert "fractured_read" in str(violation)

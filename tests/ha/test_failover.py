"""Lease detection, promotion, restart fallback, and statement gating."""

import pytest

from repro.engine.errors import ShardUnavailableError
from repro.ha.cluster import HAFleet
from repro.ha.lease import LeaseConfig, VirtualClock
from repro.ha.workload import SELECT_STAMP, UPDATE_STAMP, build_pairs_fleet

LEASE = LeaseConfig(lease_s=0.5, heartbeat_s=0.1)


def ha_fleet(**kwargs):
    kwargs.setdefault("lease", LEASE)
    fleet, pairs = build_pairs_fleet(n_shards=2, fleet_cls=HAFleet, **kwargs)
    fleet.start_replication()
    return fleet, pairs


def write_pair(fleet, pairs, stamp, pair=0):
    gtxn = fleet.begin()
    for row in pairs[pair]:
        fleet.execute(UPDATE_STAMP, [stamp, row], gtxn=gtxn)
    gtxn.commit()


class TestDetection:
    def test_live_primary_never_fails_over(self):
        fleet, _pairs = ha_fleet()
        fleet.advance(10 * LEASE.lease_s)
        assert all(g.failovers == 0 and g.restarts == 0 for g in fleet.groups.values())

    def test_dead_primary_detected_after_lease(self):
        fleet, _pairs = ha_fleet()
        fleet.kill_primary(0)
        # inside the lease: not yet detected
        fleet.advance(LEASE.lease_s * 0.5)
        assert fleet.groups[0].failovers == 0
        # poll on the heartbeat cadence: detection lands at the first
        # look past expiry, bounded by lease + one polling interval
        for _ in range(20):
            fleet.advance(LEASE.heartbeat_s)
        group = fleet.groups[0]
        assert group.failovers == 1
        assert group.epoch == 2
        killed, detected, served = group.outages[0]
        assert killed <= detected <= served
        assert detected - killed <= LEASE.lease_s + LEASE.heartbeat_s + 1e-9

    def test_promotion_preserves_acked_commits(self):
        fleet, pairs = ha_fleet()
        write_pair(fleet, pairs, 41)
        write_pair(fleet, pairs, 42)
        fleet.kill_primary(0)
        fleet.advance(2 * LEASE.lease_s)
        fleet.advance(1.0)  # let the modelled replay window lapse
        for row in pairs[0]:
            assert fleet.execute(SELECT_STAMP, [row]).rows[0][0] == 42

    def test_stale_standby_falls_back_to_restart(self):
        fleet, pairs = ha_fleet()
        write_pair(fleet, pairs, 9)
        fleet.kill_standby(0)
        write_pair(fleet, pairs, 10)  # the standby misses this commit
        fleet.kill_primary(0)
        fleet.advance(2 * LEASE.lease_s)
        group = fleet.groups[0]
        # never promote a standby that is missing acked records
        assert group.failovers == 0
        assert group.restarts == 1
        fleet.advance(1.0)
        for row in pairs[0]:
            assert fleet.execute(SELECT_STAMP, [row]).rows[0][0] == 10


class TestStatementGating:
    def test_statements_rejected_until_served_at(self):
        fleet, pairs = ha_fleet()
        # commit something first: the promoted standby then has a log
        # suffix to replay, so the modelled outage window is non-empty
        for stamp in range(1, 6):
            write_pair(fleet, pairs, stamp)
        fleet.kill_primary(0)
        fleet.advance(2 * LEASE.lease_s)
        group = fleet.groups[0]
        assert group.down_until is not None and group.down_until > fleet.clock.now
        row = next(
            r for pair in pairs for r in pair
            if fleet.router.shard_for("PAIRS", r) == 0
        )
        with pytest.raises(ShardUnavailableError) as exc:
            fleet.execute(SELECT_STAMP, [row])
        assert exc.value.retryable
        # once virtual time passes the modelled replay, service resumes
        # -- with every acked commit intact on the promoted standby
        fleet.advance(group.down_until - fleet.clock.now + 1e-9)
        assert fleet.execute(SELECT_STAMP, [row]).rows[0][0] == 5
        assert group.down_until is None

    def test_gating_is_per_shard(self):
        fleet, pairs = ha_fleet()
        fleet.kill_primary(0)
        fleet.advance(2 * LEASE.lease_s)
        row_on_1 = next(
            r for pair in pairs for r in pair
            if fleet.router.shard_for("PAIRS", r) == 1
        )
        # shard 1 never went down; it serves right through the failover
        assert fleet.execute(SELECT_STAMP, [row_on_1]).rows[0][0] == 0


class TestSharedClock:
    def test_external_clock_is_used(self):
        clock = VirtualClock(now=5.0)
        fleet, _pairs = ha_fleet(clock=clock)
        assert fleet.clock is clock
        fleet.advance(1.0)
        assert clock.now == 6.0

    def test_replication_cannot_start_twice(self):
        fleet, _pairs = ha_fleet()
        from repro.engine.errors import EngineError

        with pytest.raises(EngineError, match="already started"):
            fleet.start_replication()

"""The R-Score run and its registry wiring."""

from repro.core.config import BenchConfig
from repro.core.runner import CloudyBench
from repro.ha.evaluator import HAEvaluator, HAResult
from repro.ha.history import Violation


def quick_eval(**kwargs):
    kwargs.setdefault("txns", 60)
    kwargs.setdefault("n_pairs", 4)
    return HAEvaluator(**kwargs)


class TestHAEvaluator:
    def test_traffic_survives_a_primary_kill(self):
        result = quick_eval().run()
        assert result.failovers == 1 and result.restarts == 0
        assert result.consistent
        assert result.availability >= 0.95
        assert result.r_score == result.availability

    def test_unavailability_under_the_bound(self):
        result = quick_eval().run()
        (killed, detected, served) = result.outages[0]
        assert killed <= detected <= served
        assert result.unavailable_s <= result.bound_s

    def test_violations_zero_the_score(self):
        result = quick_eval().run()
        result.violations.append(Violation("fractured_read", "synthetic"))
        assert result.r_score == 0.0

    def test_deterministic_per_seed(self):
        first = quick_eval(seed=3).run()
        second = quick_eval(seed=3).run()
        assert first.acked == second.acked
        assert first.outages == second.outages
        assert first.counts == second.counts

    def test_post_recovery_tps_recovers(self):
        result = quick_eval().run()
        assert result.pre_kill_tps > 0
        assert result.post_recovery_tps >= 0.9 * result.pre_kill_tps


class TestRegistryWiring:
    def test_eval_ha_and_table_ix_fold(self):
        bench = CloudyBench(BenchConfig.quick())
        outcome = bench.run("ha")
        assert isinstance(outcome.payload, HAResult)
        assert outcome.scores["r"] == outcome.payload.r_score
        # cached per ack mode
        assert bench.run("ha").payload is outcome.payload
        semi = bench.run("ha", ack_mode="semisync")
        assert semi.payload is not outcome.payload
        # the R-HA column rides along once the ha run is cached
        overall = bench.run("overall", duration_s=60.0)
        assert "R-HA" in overall.headers
        column = overall.headers.index("R-HA")
        for row in overall.rows:
            assert row[column] == round(outcome.payload.r_score, 3)

    def test_config_validation(self):
        import pytest

        with pytest.raises(ValueError, match="ha_shards"):
            BenchConfig(ha_shards=1)
        with pytest.raises(ValueError, match="ha_ack_mode"):
            BenchConfig(ha_ack_mode="async")
        with pytest.raises(ValueError, match="heartbeat"):
            BenchConfig(ha_heartbeat_s=0.5, ha_lease_s=0.5)

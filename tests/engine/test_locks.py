"""Tests for the lock manager: compatibility, queues, deadlocks."""

import pytest

from repro.engine.errors import DeadlockError
from repro.engine.locks import LockManager, LockMode, LockOutcome

S, X = LockMode.SHARED, LockMode.EXCLUSIVE
KEY_A = ("T", 1)
KEY_B = ("T", 2)


def test_shared_locks_are_compatible():
    locks = LockManager()
    assert locks.acquire(1, KEY_A, S) is LockOutcome.GRANTED
    assert locks.acquire(2, KEY_A, S) is LockOutcome.GRANTED
    assert set(locks.holders(KEY_A)) == {1, 2}


def test_exclusive_conflicts_with_shared():
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    assert locks.acquire(2, KEY_A, X) is LockOutcome.BLOCKED


def test_exclusive_conflicts_with_exclusive():
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    assert locks.acquire(2, KEY_A, X) is LockOutcome.BLOCKED


def test_reentrant_acquisition():
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    assert locks.acquire(1, KEY_A, X) is LockOutcome.GRANTED
    assert locks.acquire(1, KEY_A, S) is LockOutcome.GRANTED  # X covers S


def test_upgrade_sole_shared_holder():
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    assert locks.acquire(1, KEY_A, X) is LockOutcome.GRANTED
    assert locks.holders(KEY_A)[1] is X


def test_upgrade_blocked_by_other_shared_holder():
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    locks.acquire(2, KEY_A, S)
    assert locks.acquire(1, KEY_A, X) is LockOutcome.BLOCKED


def test_release_all_grants_waiters_fifo():
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    locks.acquire(2, KEY_A, X)
    locks.acquire(3, KEY_A, X)
    granted = locks.release_all(1)
    assert granted == [(2, KEY_A)]
    granted = locks.release_all(2)
    assert granted == [(3, KEY_A)]


def test_shared_waiters_granted_together():
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    locks.acquire(2, KEY_A, S)
    locks.acquire(3, KEY_A, S)
    granted = locks.release_all(1)
    assert set(granted) == {(2, KEY_A), (3, KEY_A)}


def test_new_request_queues_behind_waiters():
    # FIFO fairness: an S request arriving after a queued X must wait.
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    locks.acquire(2, KEY_A, X)      # queued
    assert locks.acquire(3, KEY_A, S) is LockOutcome.BLOCKED


def test_deadlock_detected_and_victim_raises():
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    locks.acquire(2, KEY_B, X)
    assert locks.acquire(1, KEY_B, X) is LockOutcome.BLOCKED
    with pytest.raises(DeadlockError):
        locks.acquire(2, KEY_A, X)
    assert locks.deadlocks_detected == 1


def test_three_way_deadlock():
    locks = LockManager()
    key_c = ("T", 3)
    locks.acquire(1, KEY_A, X)
    locks.acquire(2, KEY_B, X)
    locks.acquire(3, key_c, X)
    locks.acquire(1, KEY_B, X)
    locks.acquire(2, key_c, X)
    with pytest.raises(DeadlockError):
        locks.acquire(3, KEY_A, X)


def test_no_false_deadlock_on_chain():
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    assert locks.acquire(2, KEY_A, X) is LockOutcome.BLOCKED
    # 3 waits on the same key; chain 3->1, 2->1: no cycle
    assert locks.acquire(3, KEY_A, X) is LockOutcome.BLOCKED


def test_cancel_wait_clears_queue():
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    locks.acquire(2, KEY_A, X)
    locks.cancel_wait(2)
    granted = locks.release_all(1)
    assert granted == []


def test_release_one_shared_only():
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    locks.release_one(1, KEY_A)
    assert locks.holders(KEY_A) == {}
    # releasing an X lock early is a no-op (strict 2PL)
    locks.acquire(1, KEY_B, X)
    locks.release_one(1, KEY_B)
    assert locks.holders(KEY_B) == {1: X}


def test_release_one_promotes_waiter():
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    locks.acquire(2, KEY_A, X)
    granted = locks.release_one(1, KEY_A)
    assert granted == [(2, KEY_A)]


def test_nonqueueing_acquire_leaves_no_state():
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    outcome = locks.acquire(2, KEY_A, X, queue_on_conflict=False)
    assert outcome is LockOutcome.BLOCKED
    assert locks.release_all(1) == []  # nothing queued


def test_locks_held_bookkeeping():
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    locks.acquire(1, KEY_B, S)
    assert locks.locks_held(1) == {KEY_A, KEY_B}
    locks.release_all(1)
    assert locks.locks_held(1) == set()
    locks.sanity_check()


# -- ghost-waiter regression (timeout path) -----------------------------------


def test_cancelled_head_promotes_compatible_followers():
    """A cancelled queue head must not stall the waiters behind it."""
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    locks.acquire(2, KEY_A, X)      # queued head, conflicts with S
    locks.acquire(3, KEY_A, S)      # queued behind the X (FIFO fairness)
    granted = locks.cancel_wait(2)  # the X waiter times out
    # the S follower is compatible with the S holder: granted now
    assert granted == [(3, KEY_A)]
    assert set(locks.holders(KEY_A)) == {1, 3}
    locks.sanity_check()


def test_timeout_scrubs_waits_for_edges():
    """Stale edges to a timed-out waiter caused false deadlock verdicts."""
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    locks.acquire(2, KEY_A, X)      # 2 waits for 1
    locks.acquire(3, KEY_A, X)      # 3 waits for {1, 2}
    locks.cancel_wait(2)
    locks.sanity_check()
    # txn 2 is gone; if 3 still carried an edge to it, a fresh request
    # by 2 against a lock held by 3 would close a phantom cycle.
    locks.acquire(3, KEY_B, X)
    assert locks.acquire(2, KEY_B, S) is LockOutcome.BLOCKED  # no DeadlockError
    locks.sanity_check()


def test_release_all_returns_grants_from_own_wait_queues():
    """release_all on a txn that was itself queued must surface the
    promotions its departure enables."""
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    locks.acquire(2, KEY_A, X)
    locks.acquire(3, KEY_A, S)
    # txn 2 aborts while still queued on KEY_A
    granted = locks.release_all(2)
    assert granted == [(3, KEY_A)]
    locks.sanity_check()


def test_grant_after_timeout_loop():
    """Regression loop: repeated block -> timeout -> release cycles must
    keep granting; a ghost waiter anywhere stalls the queue or raises a
    false deadlock."""
    locks = LockManager()
    for round_no in range(50):
        holder, waiter, victim = 3 * round_no + 1, 3 * round_no + 2, 3 * round_no + 3
        assert locks.acquire(holder, KEY_A, X) is LockOutcome.GRANTED
        assert locks.acquire(waiter, KEY_A, X) is LockOutcome.BLOCKED
        assert locks.acquire(victim, KEY_A, S) is LockOutcome.BLOCKED
        locks.cancel_wait(victim)          # the S waiter times out
        granted = locks.release_all(holder)
        assert granted == [(waiter, KEY_A)]   # the X waiter is promoted
        locks.sanity_check()
        assert locks.release_all(waiter) == []
        locks.sanity_check()
    assert locks.deadlocks_detected == 0


# -- starvation regression (FIFO fairness) ------------------------------------


def test_stream_of_shared_requests_cannot_starve_queued_x_waiter():
    """Writer starvation: S holders churn while new S requests keep
    arriving.  Without queue-order fairness every new S is compatible
    with the current S holders and barges past the queued X forever."""
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    assert locks.acquire(100, KEY_A, X) is LockOutcome.BLOCKED   # queued writer
    reader = 2
    for _ in range(25):
        # a fresh reader arrives while an older one still holds the lock
        assert locks.acquire(reader, KEY_A, S) is LockOutcome.BLOCKED
        granted = locks.release_all(reader - 1)
        # the writer is always first in line; the new reader never
        # leapfrogs it just because S is compatible with S
        assert (100, KEY_A) in granted or locks.queued(KEY_A)[0] == 100
        if (100, KEY_A) in granted:
            break
        reader += 1
    else:
        pytest.fail("X waiter starved by a stream of compatible S requests")
    locks.sanity_check()


def test_writer_granted_as_soon_as_readers_drain():
    locks = LockManager()
    locks.acquire(1, KEY_A, S)
    locks.acquire(2, KEY_A, S)
    locks.acquire(10, KEY_A, X)
    locks.acquire(3, KEY_A, S)       # behind the writer (no barging)
    assert locks.release_all(1) == []
    granted = locks.release_all(2)   # last reader out
    assert granted == [(10, KEY_A)]
    granted = locks.release_all(10)
    assert granted == [(3, KEY_A)]
    locks.sanity_check()


def test_repolling_waiter_keeps_its_queue_position():
    """A blocked txn that re-requests (timeout loops re-poll) must not
    append a second queue entry -- double entries let it eventually hold
    two slots and barge past waiters that arrived in between."""
    locks = LockManager()
    locks.acquire(1, KEY_A, X)
    assert locks.acquire(2, KEY_A, X) is LockOutcome.BLOCKED
    assert locks.acquire(3, KEY_A, X) is LockOutcome.BLOCKED
    for _ in range(5):               # txn 2 re-polls while waiting
        assert locks.acquire(2, KEY_A, X) is LockOutcome.BLOCKED
    assert locks.queued(KEY_A) == [2, 3]     # one entry, original position
    assert locks.release_all(1) == [(2, KEY_A)]
    assert locks.release_all(2) == [(3, KEY_A)]
    locks.sanity_check()

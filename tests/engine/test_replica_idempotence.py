"""ReplicaApplier idempotence: log shipping may deliver a batch twice
(retransmit after a partition heals); replaying it must be a no-op."""

from repro.engine.database import Database
from repro.engine.recovery import ReplicaApplier
from repro.engine.types import Column, ColumnType, Schema
from repro.engine.wal import DATA_KINDS


def make_primary():
    db = Database("primary")
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def kv_state(db):
    return dict(db.query("SELECT K, V FROM kv").rows)


def shipped_batches(db, from_lsn=1):
    """Group the WAL into per-transaction batches, like the pipeline ships."""
    batches = {}
    for record in db.wal.records_from(from_lsn):
        batches.setdefault(record.txn_id, []).append(record)
    return [batches[txn_id] for txn_id in sorted(batches)]


def test_double_delivery_changes_nothing():
    primary = make_primary()
    replica = primary.clone_full("replica")
    applier = ReplicaApplier(replica)
    for key in (1, 2, 3):
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, key * 10])
    primary.execute("UPDATE kv SET V = ? WHERE K = ?", [99, 2])
    primary.execute("DELETE FROM kv WHERE K = ?", [3])

    batches = shipped_batches(primary)
    for batch in batches:
        applier.apply_batch(batch)
    state_after_first = kv_state(replica)
    lsn_after_first = applier.applied_lsn
    applied_after_first = applier.records_applied
    assert state_after_first == kv_state(primary)

    # the partition healed and the pipeline retransmits everything
    for batch in batches:
        assert applier.apply_batch(batch) == 0
    assert kv_state(replica) == state_after_first
    assert applier.applied_lsn == lsn_after_first
    assert applier.records_applied == applied_after_first


def test_interleaved_redelivery_of_one_batch():
    primary = make_primary()
    replica = primary.clone_full("replica")
    applier = ReplicaApplier(replica)
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
    first, second = shipped_batches(primary)

    applier.apply_batch(first)
    applier.apply_batch(first)      # duplicate before the next batch
    applier.apply_batch(second)
    applier.apply_batch(first)      # stale duplicate after later progress
    assert kv_state(replica) == kv_state(primary)
    assert applier.records_applied == sum(
        1 for batch in (first, second) for r in batch if r.kind in DATA_KINDS
    )


def test_lag_behind_tracks_applied_lsn():
    primary = make_primary()
    replica = primary.clone_full("replica")
    applier = ReplicaApplier(replica)
    primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    assert applier.lag_behind(primary.wal.last_lsn) == primary.wal.last_lsn
    for batch in shipped_batches(primary):
        applier.apply_batch(batch)
    assert applier.lag_behind(primary.wal.last_lsn) == 0

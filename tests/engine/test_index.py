"""Tests for hash and ordered indexes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.errors import DuplicateKeyError, EngineError
from repro.engine.index import HashIndex, OrderedIndex
from repro.engine.page import RowId


def rid(n):
    return RowId(n // 100, n % 100)


class TestHashIndex:
    def test_insert_lookup(self):
        index = HashIndex("i", ("K",))
        index.insert(5, rid(1))
        index.insert(5, rid(2))
        assert index.lookup(5) == [rid(1), rid(2)]
        assert index.lookup(6) == []

    def test_unique_rejects_duplicates(self):
        index = HashIndex("i", ("K",), unique=True)
        index.insert(5, rid(1))
        with pytest.raises(DuplicateKeyError):
            index.insert(5, rid(2))

    def test_lookup_unique(self):
        index = HashIndex("i", ("K",), unique=True)
        assert index.lookup_unique(5) is None
        index.insert(5, rid(1))
        assert index.lookup_unique(5) == rid(1)

    def test_delete_removes_entry(self):
        index = HashIndex("i", ("K",))
        index.insert(5, rid(1))
        index.delete(5, rid(1))
        assert index.lookup(5) == []
        assert len(index) == 0

    def test_delete_missing_raises(self):
        index = HashIndex("i", ("K",))
        with pytest.raises(EngineError):
            index.delete(5, rid(1))


class TestOrderedIndex:
    def test_range_inclusive(self):
        index = OrderedIndex("i", ("K",))
        for key in (1, 3, 5, 7):
            index.insert(key, rid(key))
        assert [k for k, _ in index.range(3, 5)] == [3, 5]

    def test_range_exclusive_bounds(self):
        index = OrderedIndex("i", ("K",))
        for key in range(1, 6):
            index.insert(key, rid(key))
        keys = [k for k, _ in index.range(1, 5, include_low=False, include_high=False)]
        assert keys == [2, 3, 4]

    def test_range_open_ended(self):
        index = OrderedIndex("i", ("K",))
        for key in (2, 4, 6):
            index.insert(key, rid(key))
        assert [k for k, _ in index.range(low=4)] == [4, 6]
        assert [k for k, _ in index.range(high=4)] == [2, 4]
        assert [k for k, _ in index.range()] == [2, 4, 6]

    def test_range_reverse(self):
        index = OrderedIndex("i", ("K",))
        for key in (1, 2, 3):
            index.insert(key, rid(key))
        assert [k for k, _ in index.range(reverse=True)] == [3, 2, 1]

    def test_duplicates_per_key(self):
        index = OrderedIndex("i", ("K",))
        index.insert(1, rid(1))
        index.insert(1, rid(2))
        assert len(list(index.range(1, 1))) == 2
        index.delete(1, rid(1))
        assert [r for _k, r in index.range(1, 1)] == [rid(2)]

    def test_delete_last_rid_removes_sorted_key(self):
        index = OrderedIndex("i", ("K",))
        index.insert(1, rid(1))
        index.insert(2, rid(2))
        index.delete(1, rid(1))
        assert [k for k, _ in index.range()] == [2]

    def test_min_max(self):
        index = OrderedIndex("i", ("K",))
        assert index.min_key() is None
        for key in (5, 1, 9):
            index.insert(key, rid(key))
        assert index.min_key() == 1
        assert index.max_key() == 9

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=50), unique=True, min_size=1))
    def test_property_range_matches_sorted_filter(self, keys):
        index = OrderedIndex("i", ("K",))
        for key in keys:
            index.insert(key, rid(key))
        low = min(keys)
        high = max(keys)
        mid_low = low + (high - low) // 3
        mid_high = high - (high - low) // 3
        got = [k for k, _ in index.range(mid_low, mid_high)]
        expected = sorted(k for k in keys if mid_low <= k <= mid_high)
        assert got == expected

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=20)),
            min_size=1, max_size=60,
        )
    )
    def test_property_insert_delete_consistency(self, operations):
        """Ordered index stays consistent with a model dict under churn."""
        index = OrderedIndex("i", ("K",))
        model: dict[int, set] = {}
        for is_insert, key in operations:
            if is_insert:
                if rid(key) in model.get(key, set()):
                    continue
                index.insert(key, rid(key))
                model.setdefault(key, set()).add(rid(key))
            else:
                if key in model and rid(key) in model[key]:
                    index.delete(key, rid(key))
                    model[key].discard(rid(key))
                    if not model[key]:
                        del model[key]
        assert sorted(k for k, _ in index.range()) == sorted(
            k for k, rids in model.items() for _ in rids
        )

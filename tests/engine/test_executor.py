"""Tests for statement planning and execution against real tables."""

import pytest

from repro.engine.database import Database
from repro.engine.errors import DuplicateKeyError, SchemaError, SqlError
from repro.engine.types import Column, ColumnType, Schema


@pytest.fixture
def db():
    db = Database("exec-test", buffer_size_bytes=1 << 22)
    db.create_table(Schema(
        "ACCOUNTS",
        (
            Column("A_ID", ColumnType.INT, nullable=False, autoincrement=True),
            Column("OWNER", ColumnType.VARCHAR, length=16, nullable=False),
            Column("BALANCE", ColumnType.DECIMAL, nullable=False, default=0.0),
            Column("BRANCH", ColumnType.INT, default=1),
        ),
        primary_key="A_ID",
    ))
    db.create_index("ACCOUNTS", "accounts_branch", ("BRANCH",))
    for a_id, owner, balance, branch in (
        (1, "ann", 100.0, 1), (2, "bob", 50.0, 1),
        (3, "cat", 75.0, 2), (4, "dan", 0.0, 2),
    ):
        db.execute(
            "INSERT INTO accounts (A_ID, OWNER, BALANCE, BRANCH) VALUES (?, ?, ?, ?)",
            [a_id, owner, balance, branch],
        )
    return db


def test_point_select_by_pk(db):
    result = db.query("SELECT OWNER FROM accounts WHERE A_ID = ?", [2])
    assert result.rows == [("bob",)]
    assert result.columns == ("OWNER",)


def test_select_star(db):
    result = db.query("SELECT * FROM accounts WHERE A_ID = ?", [1])
    assert result.rows == [(1, "ann", 100.0, 1)]
    assert result.columns == ("A_ID", "OWNER", "BALANCE", "BRANCH")


def test_secondary_index_lookup(db):
    result = db.query("SELECT A_ID FROM accounts WHERE BRANCH = ?", [2])
    assert sorted(result.rows) == [(3,), (4,)]


def test_range_scan_conditions(db):
    result = db.query(
        "SELECT A_ID FROM accounts WHERE BALANCE >= ? AND BALANCE <= ?",
        [50, 100],
    )
    assert sorted(result.rows) == [(1,), (2,), (3,)]


def test_order_by_and_limit(db):
    result = db.query("SELECT A_ID FROM accounts ORDER BY BALANCE DESC LIMIT 2")
    assert result.rows == [(1,), (3,)]


def test_aggregates(db):
    result = db.query("SELECT COUNT(*), SUM(BALANCE), MIN(BALANCE) FROM accounts")
    assert result.rows == [(4, 225.0, 0.0)]
    assert result.rowcount == 1


def test_count_distinct(db):
    assert db.query("SELECT COUNT(DISTINCT BRANCH) FROM accounts").scalar() == 2


def test_insert_autoincrement_default(db):
    db.execute("INSERT INTO accounts VALUES (DEFAULT, ?, ?, ?)", ["eve", 5.0, 3])
    assert db.query("SELECT OWNER FROM accounts WHERE A_ID = ?", [5]).rows == [("eve",)]


def test_insert_partial_columns_uses_defaults(db):
    db.execute("INSERT INTO accounts (OWNER) VALUES (?)", ["fred"])
    row = db.query("SELECT BALANCE, BRANCH FROM accounts WHERE OWNER = ?", ["fred"])
    assert row.rows == [(0.0, 1)]


def test_update_arithmetic(db):
    count = db.execute(
        "UPDATE accounts SET BALANCE = BALANCE + ? WHERE A_ID = ?", [25, 2]
    ).rowcount
    assert count == 1
    assert db.query("SELECT BALANCE FROM accounts WHERE A_ID = ?", [2]).scalar() == 75.0


def test_update_multiple_rows(db):
    count = db.execute(
        "UPDATE accounts SET BALANCE = ? WHERE BRANCH = ?", [1.0, 1]
    ).rowcount
    assert count == 2


def test_update_null_arithmetic_raises(db):
    db.execute("INSERT INTO accounts (OWNER, BALANCE) VALUES (?, ?)", ["nul", 0])
    # BRANCH default 1; set BRANCH = NULL first through plain set
    db.execute("UPDATE accounts SET BRANCH = NULL WHERE OWNER = ?", ["nul"])
    with pytest.raises(SchemaError):
        db.execute("UPDATE accounts SET BRANCH = BRANCH + ? WHERE OWNER = ?", [1, "nul"])


def test_delete(db):
    assert db.execute("DELETE FROM accounts WHERE A_ID = ?", [4]).rowcount == 1
    assert db.query("SELECT COUNT(*) FROM accounts").scalar() == 3
    assert db.execute("DELETE FROM accounts WHERE A_ID = ?", [4]).rowcount == 0


def test_duplicate_insert_rejected(db):
    with pytest.raises(DuplicateKeyError):
        db.execute(
            "INSERT INTO accounts (A_ID, OWNER) VALUES (?, ?)", [1, "dup"]
        )


def test_param_count_mismatch(db):
    with pytest.raises(SqlError):
        db.query("SELECT OWNER FROM accounts WHERE A_ID = ?", [])
    with pytest.raises(SqlError):
        db.query("SELECT OWNER FROM accounts WHERE A_ID = ?", [1, 2])


def test_unknown_table_rejected_at_prepare(db):
    with pytest.raises(SchemaError):
        db.prepare("SELECT X FROM missing WHERE X = ?")


def test_unknown_column_rejected_at_prepare(db):
    with pytest.raises(SchemaError):
        db.prepare("SELECT NOPE FROM accounts")
    with pytest.raises(SchemaError):
        db.prepare("SELECT A_ID FROM accounts WHERE NOPE = ?")


def test_insert_arity_rejected_at_prepare(db):
    with pytest.raises(SqlError):
        db.prepare("INSERT INTO accounts (A_ID, OWNER) VALUES (?)")


def test_prepared_statements_are_cached(db):
    first = db.prepare("SELECT OWNER FROM accounts WHERE A_ID = ?")
    second = db.prepare("SELECT OWNER FROM accounts WHERE A_ID = ?")
    assert first is second


def test_result_set_helpers(db):
    result = db.query("SELECT OWNER FROM accounts WHERE A_ID = ?", [1])
    assert result.scalar() == "ann"
    assert result.first() == ("ann",)
    assert result.as_dicts() == [{"OWNER": "ann"}]
    empty = db.query("SELECT OWNER FROM accounts WHERE A_ID = ?", [99])
    assert empty.first() is None
    with pytest.raises(SqlError):
        empty.scalar()


def test_null_condition_never_matches(db):
    db.execute("UPDATE accounts SET BRANCH = NULL WHERE A_ID = ?", [1])
    result = db.query("SELECT A_ID FROM accounts WHERE BRANCH >= ?", [0])
    assert (1,) not in result.rows


def test_for_update_takes_exclusive_lock(db):
    txn = db.begin()
    db.execute("SELECT * FROM accounts WHERE A_ID = ? FOR UPDATE", [1], txn=txn)
    holders = db.locks.holders(("ACCOUNTS", 1))
    assert holders[txn.txn_id].value == "X"
    txn.rollback()


class TestRangeBoundTypeGuard:
    """Range predicates with NULL or cross-type bounds are statement
    errors (SqlError), never a bare TypeError out of the comparator."""

    def test_null_range_bound_raises_sql_error(self, db):
        with pytest.raises(SqlError, match="NULL|NoneType"):
            db.query("SELECT A_ID FROM accounts WHERE BALANCE > ?", [None])

    def test_cross_type_bounds_raise_sql_error(self, db):
        with pytest.raises(SqlError, match="incomparable|not supported"):
            db.query(
                "SELECT A_ID FROM accounts WHERE BALANCE > ? AND BALANCE < ?",
                [0, "high"],
            )

    def test_cross_type_bounds_on_indexed_column(self, db):
        with pytest.raises(SqlError, match="incomparable|not supported"):
            db.query(
                "SELECT A_ID FROM accounts WHERE BRANCH >= ? AND BRANCH <= ?",
                [1, "two"],
            )

    def test_null_bound_in_update_raises_sql_error(self, db):
        with pytest.raises(SqlError, match="NULL|NoneType"):
            db.execute("UPDATE accounts SET BALANCE = ? WHERE BALANCE < ?",
                       [0.0, None])

    def test_valid_mixed_numeric_bounds_still_work(self, db):
        # int vs float bounds are comparable; the guard must not
        # over-reject legitimate numeric ranges.
        result = db.query(
            "SELECT A_ID FROM accounts WHERE BALANCE > ? AND BALANCE < ?",
            [0, 80.5],
        )
        assert sorted(result.rows) == [(2,), (3,)]

"""End-to-end fuzz: random SQL streams vs a naive Python model.

Hypothesis drives random INSERT/UPDATE/DELETE/SELECT statements through
the full stack (parser -> planner -> executor -> tables -> WAL) and
checks every result against a dictionary model.  This is the broadest
single invariant in the engine suite: whatever path the planner picks,
the answer must equal the model's.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.engine.errors import EngineError
from repro.engine.types import Column, ColumnType, Schema

KEYS = st.integers(min_value=1, max_value=12)
VALUES = st.integers(min_value=-100, max_value=100)

operation = st.one_of(
    st.tuples(st.just("insert"), KEYS, VALUES),
    st.tuples(st.just("update_eq"), KEYS, VALUES),
    st.tuples(st.just("update_range"), KEYS, VALUES),
    st.tuples(st.just("delete_eq"), KEYS, VALUES),
    st.tuples(st.just("select_eq"), KEYS, VALUES),
    st.tuples(st.just("select_range"), KEYS, VALUES),
    st.tuples(st.just("select_by_value"), KEYS, VALUES),
    st.tuples(st.just("count"), KEYS, VALUES),
)


def build_db(indexed: bool) -> Database:
    db = Database("fuzz")
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, nullable=False, default=0)),
        primary_key="K",
    ))
    if indexed:
        db.create_index("KV", "kv_v", ("V",), ordered=True)
    return db


def apply_and_check(db: Database, model: dict, step) -> None:
    op, key, value = step
    if op == "insert":
        try:
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, value])
            model[key] = value
        except EngineError:
            assert key in model  # only duplicates may fail
    elif op == "update_eq":
        count = db.execute("UPDATE kv SET V = ? WHERE K = ?", [value, key]).rowcount
        assert count == (1 if key in model else 0)
        if key in model:
            model[key] = value
    elif op == "update_range":
        count = db.execute(
            "UPDATE kv SET V = ? WHERE K >= ? AND K < ?", [value, key, key + 3]
        ).rowcount
        hit = [k for k in model if key <= k < key + 3]
        assert count == len(hit)
        for k in hit:
            model[k] = value
    elif op == "delete_eq":
        count = db.execute("DELETE FROM kv WHERE K = ?", [key]).rowcount
        assert count == (1 if key in model else 0)
        model.pop(key, None)
    elif op == "select_eq":
        rows = db.query("SELECT V FROM kv WHERE K = ?", [key]).rows
        expected = [(model[key],)] if key in model else []
        assert rows == expected
    elif op == "select_range":
        rows = db.query(
            "SELECT K FROM kv WHERE K > ? AND K <= ?", [key - 4, key]
        ).rows
        assert sorted(r[0] for r in rows) == sorted(
            k for k in model if key - 4 < k <= key
        )
    elif op == "select_by_value":
        rows = db.query("SELECT K FROM kv WHERE V = ?", [value]).rows
        assert sorted(r[0] for r in rows) == sorted(
            k for k, v in model.items() if v == value
        )
    elif op == "count":
        assert db.query("SELECT COUNT(*) FROM kv").scalar() == len(model)


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(operation, max_size=50))
def test_property_sql_stream_matches_model_unindexed(steps):
    db = build_db(indexed=False)
    model: dict[int, int] = {}
    for step in steps:
        apply_and_check(db, model, step)
    assert dict(db.query("SELECT K, V FROM kv").rows) == model


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(operation, max_size=50))
def test_property_sql_stream_matches_model_with_secondary_index(steps):
    """Same invariant, but the planner can now pick the V index --
    every plan must produce the same answers."""
    db = build_db(indexed=True)
    model: dict[int, int] = {}
    for step in steps:
        apply_and_check(db, model, step)
    assert dict(db.query("SELECT K, V FROM kv").rows) == model


@settings(max_examples=30, deadline=None)
@given(steps=st.lists(operation, max_size=30))
def test_property_indexed_and_unindexed_agree(steps):
    """Two databases, same stream, different access paths: identical state."""
    plain = build_db(indexed=False)
    indexed = build_db(indexed=True)
    model: dict[int, int] = {}
    for step in steps:
        apply_and_check(plain, dict(model), step)   # throwaway model copy
        apply_and_check(indexed, model, step)
    assert (dict(plain.query("SELECT K, V FROM kv").rows)
            == dict(indexed.query("SELECT K, V FROM kv").rows))

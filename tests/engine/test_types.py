"""Tests for columns, schemas and row coercion."""

import pytest

from repro.engine.errors import SchemaError
from repro.engine.types import DEFAULT, Column, ColumnType, Schema


def make_schema():
    return Schema(
        "T",
        (
            Column("ID", ColumnType.INT, nullable=False, autoincrement=True),
            Column("NAME", ColumnType.VARCHAR, length=20, nullable=False),
            Column("AMOUNT", ColumnType.DECIMAL, default=0.0),
            Column("WHEN", ColumnType.TIMESTAMP),
        ),
        primary_key="ID",
    )


def test_coerce_row_types():
    schema = make_schema()
    row = schema.coerce_row(("3", 42, "7", None))
    assert row == (3, "42", 7.0, None)
    assert isinstance(row[0], int)
    assert isinstance(row[2], float)


def test_default_placeholder_uses_autoincrement():
    schema = make_schema()
    row = schema.coerce_row((DEFAULT, "x", DEFAULT, None), next_auto=9)
    assert row[0] == 9
    assert row[2] == 0.0  # column default


def test_default_without_autoincrement_value_raises():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.coerce_row((DEFAULT, "x", 1.0, None))


def test_not_null_enforced():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.coerce_row((1, None, 1.0, None))


def test_wrong_arity_rejected():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.coerce_row((1, "x"))


def test_unknown_column_rejected():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.column_index("NOPE")


def test_duplicate_column_names_rejected():
    with pytest.raises(SchemaError):
        Schema(
            "T",
            (Column("A", ColumnType.INT), Column("A", ColumnType.INT)),
            primary_key="A",
        )


def test_primary_key_must_exist():
    with pytest.raises(SchemaError):
        Schema("T", (Column("A", ColumnType.INT),), primary_key="B")


def test_invalid_names_rejected():
    with pytest.raises(SchemaError):
        Column("1bad", ColumnType.INT)
    with pytest.raises(SchemaError):
        Schema("bad name", (Column("A", ColumnType.INT),), primary_key="A")


def test_autoincrement_must_be_integer():
    with pytest.raises(SchemaError):
        Column("X", ColumnType.VARCHAR, autoincrement=True)


def test_boolean_is_not_an_int():
    with pytest.raises(SchemaError):
        ColumnType.INT.coerce(True)


def test_row_byte_size_positive_and_stable():
    schema = make_schema()
    assert schema.row_byte_size() == schema.row_byte_size()
    assert schema.row_byte_size() >= 8 * 3 + 20


def test_row_dict_projection():
    schema = make_schema()
    row = schema.coerce_row((1, "n", 2.0, 3.0))
    assert schema.row_dict(row) == {"ID": 1, "NAME": "n", "AMOUNT": 2.0, "WHEN": 3.0}

"""Crash-recovery and replica-replay tests."""

import pytest

from repro.engine.database import Database
from repro.engine.errors import EngineError
from repro.engine.recovery import ReplicaApplier
from repro.engine.types import Column, ColumnType, Schema


def fresh_db(name="crash"):
    db = Database(name, buffer_size_bytes=1 << 22)
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def kv_state(db):
    return dict(db.query("SELECT K, V FROM kv").rows)


class TestCrashRecovery:
    def test_recovery_without_checkpoint_replays_everything(self):
        db = fresh_db()
        for k in range(1, 4):
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
        db.crash()
        assert kv_state(db) == {}
        report = db.recover()
        assert kv_state(db) == {1: 1, 2: 2, 3: 3}
        assert report.records_redone == 3
        assert report.losers == set()

    def test_committed_work_after_checkpoint_survives(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        db.checkpoint()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [100, 1])
        db.crash()
        assert kv_state(db) == {1: 1}  # checkpoint image
        db.recover()
        assert kv_state(db) == {1: 100, 2: 2}

    def test_uncommitted_transaction_is_undone(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        db.checkpoint()
        loser = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2], txn=loser)
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [999, 1], txn=loser)
        # crash with loser still active
        db.crash()
        report = db.recover()
        assert kv_state(db) == {1: 1}
        assert report.losers == {loser.txn_id}
        assert report.records_undone == 2

    def test_interleaved_winner_and_loser(self):
        db = fresh_db()
        db.checkpoint()
        winner = db.begin()
        loser = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10], txn=winner)
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 20], txn=loser)
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [3, 30], txn=winner)
        winner.commit()
        db.crash()
        db.recover()
        assert kv_state(db) == {1: 10, 3: 30}

    def test_aborted_transaction_not_replayed(self):
        db = fresh_db()
        db.checkpoint()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        aborted = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2], txn=aborted)
        aborted.rollback()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [3, 3])
        db.crash()
        report = db.recover()
        assert kv_state(db) == {1: 1, 3: 3}
        assert report.losers == set()

    def test_deletes_replay_correctly(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
        db.checkpoint()
        db.execute("DELETE FROM kv WHERE K = ?", [1])
        db.crash()
        db.recover()
        assert kv_state(db) == {2: 2}

    def test_checkpoint_requires_quiescence(self):
        db = fresh_db()
        txn = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1], txn=txn)
        with pytest.raises(EngineError):
            db.checkpoint()
        txn.commit()
        assert db.checkpoint() > 0

    def test_double_crash_recover_idempotent(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        db.checkpoint()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
        db.crash()
        db.recover()
        first = kv_state(db)
        db.crash()
        db.recover()
        assert kv_state(db) == first


class TestReplicaApplier:
    def test_commit_batches_replicate(self):
        primary = fresh_db("primary")
        replica = primary.clone_schema("replica")
        applier = ReplicaApplier(replica)
        primary.add_commit_listener(
            lambda _txn, _lsn, records: applier.apply_batch(records)
        )
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        primary.execute("UPDATE kv SET V = ? WHERE K = ?", [5, 1])
        assert kv_state(replica) == {1: 5}

    def test_rolled_back_work_never_ships(self):
        primary = fresh_db("primary")
        replica = primary.clone_schema("replica")
        applier = ReplicaApplier(replica)
        primary.add_commit_listener(
            lambda _txn, _lsn, records: applier.apply_batch(records)
        )
        txn = primary.begin()
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1], txn=txn)
        txn.rollback()
        assert kv_state(replica) == {}

    def test_redelivery_is_idempotent(self):
        primary = fresh_db("primary")
        replica = primary.clone_schema("replica")
        applier = ReplicaApplier(replica)
        batches = []
        primary.add_commit_listener(
            lambda _txn, _lsn, records: batches.append(records)
        )
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        applier.apply_batch(batches[0])
        applier.apply_batch(batches[0])  # duplicate delivery
        assert kv_state(replica) == {1: 1}
        assert applier.records_applied == 1

    def test_lag_behind(self):
        primary = fresh_db("primary")
        replica = primary.clone_schema("replica")
        applier = ReplicaApplier(replica)
        batches = []
        primary.add_commit_listener(
            lambda _txn, _lsn, records: batches.append(records)
        )
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        assert applier.lag_behind(primary.wal.last_lsn) > 0
        applier.apply_batch(batches[0])
        # commit record itself is not applied, so lag is the commit LSN gap
        assert applier.lag_behind(primary.wal.last_lsn) <= 1


class TestDatabaseCloning:
    def test_clone_full_copies_rows_and_indexes(self):
        db = fresh_db()
        db.create_index("KV", "kv_v", ("V",))
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 7])
        clone = db.clone_full("copy")
        assert kv_state(clone) == {1: 7}
        assert "kv_v" in clone.table("KV").secondary_indexes
        # independence
        clone.execute("DELETE FROM kv WHERE K = ?", [1])
        assert kv_state(db) == {1: 7}

    def test_clone_requires_quiescence(self):
        db = fresh_db()
        txn = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1], txn=txn)
        with pytest.raises(EngineError):
            db.clone_full("copy")
        txn.rollback()


class TestWalTruncation:
    def test_checkpoint_with_truncation_keeps_recovery_working(self):
        db = fresh_db()
        for k in range(1, 5):
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
        retained_before = db.wal.retained_records
        db.checkpoint(truncate_wal=True)
        assert db.wal.retained_records < retained_before
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [9, 9])
        db.crash()
        db.recover()
        assert kv_state(db) == {1: 1, 2: 2, 3: 3, 4: 4, 9: 9}

    def test_truncation_does_not_break_replication(self):
        from repro.cloud.architectures import cdb3
        from repro.cloud.replication import ReplicationPipeline
        from repro.sim.events import Environment

        env = Environment()
        primary = fresh_db("primary")
        pipeline = ReplicationPipeline(env, cdb3(), primary, 1)
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        primary.checkpoint(truncate_wal=True)
        primary.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
        env.run(until=5.0)
        assert pipeline.converged()

    def test_default_checkpoint_retains_log(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        before = db.wal.retained_records
        db.checkpoint()
        assert db.wal.retained_records == before + 1  # + CHECKPOINT record

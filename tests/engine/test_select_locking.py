"""Regression tests for the read-path over-locking and NULL-sort bugs.

Pre-fix, ``Executor._select`` shared-locked *every* row matching the
WHERE clause before applying ORDER BY/LIMIT, so ``... ORDER BY k LIMIT
1`` on a 100-row match locked 100 rows; and ordering by a nullable
column raised ``TypeError`` (None is not comparable).
"""

import pytest

from repro.engine.database import Database
from repro.engine.locks import LockMode
from repro.engine.txn import IsolationLevel
from repro.engine.types import Column, ColumnType, Schema


def fresh_db(rows=20):
    db = Database("locking")
    db.create_table(Schema(
        "KV",
        (
            Column("K", ColumnType.INT, nullable=False),
            Column("V", ColumnType.INT, default=0),
            Column("W", ColumnType.INT),
        ),
        primary_key="K",
    ))
    for k in range(rows):
        w = None if k % 4 == 0 else k * 10
        db.execute("INSERT INTO kv VALUES (?, ?, ?)", [k, k % 3, w])
    return db


class TestSelectLockFootprint:
    def test_plain_read_locks_only_surviving_rows(self):
        db = fresh_db()
        txn = db.begin(isolation=IsolationLevel.SERIALIZABLE)
        result = db.execute(
            "SELECT K FROM kv WHERE V = ? ORDER BY K LIMIT 2", [0], txn=txn
        )
        assert len(result.rows) == 2
        # pre-fix: one shared lock per matched row (7 of 20); post-fix:
        # only the two rows that survive ORDER BY/LIMIT are locked
        assert len(db.locks.locks_held(txn.txn_id)) == 2
        txn.rollback()

    def test_limit_one_point_read_locks_one_row(self):
        db = fresh_db()
        txn = db.begin(isolation=IsolationLevel.SERIALIZABLE)
        db.execute("SELECT K FROM kv ORDER BY K DESC LIMIT 1", txn=txn)
        assert len(db.locks.locks_held(txn.txn_id)) == 1
        txn.rollback()

    def test_reads_counter_reflects_returned_rows(self):
        db = fresh_db()
        txn = db.begin(isolation=IsolationLevel.SERIALIZABLE)
        db.execute("SELECT K FROM kv ORDER BY K LIMIT 3", txn=txn)
        assert txn.reads == 3
        txn.rollback()

    def test_for_update_still_locks_the_candidate_set(self):
        """FOR UPDATE declares write intent over everything matched:
        locking only the LIMIT survivors would let a concurrent writer
        change which rows survive.  The candidate set stays locked."""
        db = fresh_db()
        txn = db.begin(isolation=IsolationLevel.SERIALIZABLE)
        db.execute(
            "SELECT K FROM kv WHERE V = ? ORDER BY K LIMIT 2 FOR UPDATE",
            [0], txn=txn,
        )
        held = db.locks.locks_held(txn.txn_id)
        assert len(held) == 7  # every V=0 row, not just the 2 returned
        assert all(
            db.locks.holders(key)[txn.txn_id] is LockMode.EXCLUSIVE
            for key in held
        )
        txn.rollback()

    def test_unordered_read_locks_match(self):
        db = fresh_db()
        txn = db.begin(isolation=IsolationLevel.SERIALIZABLE)
        result = db.execute("SELECT K FROM kv WHERE V = ?", [1], txn=txn)
        assert len(db.locks.locks_held(txn.txn_id)) == len(result.rows)
        txn.rollback()


class TestOrderByNulls:
    def test_order_by_nullable_column_does_not_raise(self):
        db = fresh_db()
        # pre-fix: TypeError ('<' not supported between int and NoneType)
        result = db.query("SELECT K, W FROM kv ORDER BY W")
        assert len(result.rows) == 20

    def test_nulls_sort_last_ascending(self):
        db = fresh_db()
        rows = db.query("SELECT K, W FROM kv ORDER BY W").rows
        values = [row[1] for row in rows]
        non_null = [value for value in values if value is not None]
        assert non_null == sorted(non_null)
        assert values[len(non_null):] == [None] * (20 - len(non_null))

    def test_nulls_sort_last_descending(self):
        db = fresh_db()
        rows = db.query("SELECT K, W FROM kv ORDER BY W DESC").rows
        values = [row[1] for row in rows]
        non_null = [value for value in values if value is not None]
        assert non_null == sorted(non_null, reverse=True)
        assert values[len(non_null):] == [None] * (20 - len(non_null))

    def test_limit_applies_after_null_aware_sort(self):
        db = fresh_db()
        rows = db.query("SELECT K, W FROM kv ORDER BY W LIMIT 3").rows
        assert all(row[1] is not None for row in rows)

    def test_order_by_nulls_under_snapshot_reads(self):
        db = fresh_db()
        txn = db.begin(isolation=IsolationLevel.SNAPSHOT)
        rows = db.execute("SELECT K, W FROM kv ORDER BY W", txn=txn).rows
        assert rows[-1][1] is None
        txn.commit()

"""Binary WAL codec: wire round-trips, canonical CRC folding, legacy
fallback, and recovery equivalence between v1- and v2-stamped logs."""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema
from repro.engine.wal import (
    LogKind,
    LogRecord,
    WriteAheadLog,
    legacy_record_crc,
    record_crc,
)
from repro.engine.walcodec import (
    CODEC_VERSION,
    LEGACY_VERSION,
    canonical_payload,
    decode_record,
    encode_record,
    encode_record_legacy,
    payload_crc,
    records_equivalent,
)

# Cell values the engine can actually log: scalars plus one level of
# nesting (composite index keys).  NaN is excluded (NaN != NaN breaks
# any round-trip assertion); large ints exceed 64 bits on purpose.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.binary(max_size=8),
)
cells = st.one_of(scalars, st.tuples(scalars, scalars), st.lists(scalars, max_size=3))
images = st.one_of(st.none(), st.tuples(cells, cells, cells))


def make_record(kind, table, key, before, after, lsn=3, txn_id=7, prev_lsn=1):
    return LogRecord(
        lsn, txn_id, kind, table, key, before, after, prev_lsn,
        record_crc(lsn, txn_id, kind, table, key, before, after, prev_lsn),
    )


def strict_eq(a, b) -> bool:
    """Equality that also demands matching types, recursively (so a
    decoded ``1`` is not accepted for ``1.0``, nor a list for a tuple)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, (tuple, list)):
        return len(a) == len(b) and all(strict_eq(x, y) for x, y in zip(a, b))
    return a == b


class TestWireRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(key=cells, before=images, after=images,
           kind=st.sampled_from(list(LogKind)))
    def test_v2_round_trip_preserves_types(self, key, before, after, kind):
        record = make_record(kind, "T", key, before, after)
        frame = encode_record(record)
        assert frame[0] == CODEC_VERSION
        decoded = decode_record(frame)
        assert decoded.lsn == record.lsn
        assert decoded.txn_id == record.txn_id
        assert decoded.kind is record.kind
        assert decoded.prev_lsn == record.prev_lsn
        assert decoded.crc == record.crc
        assert strict_eq(decoded.key, record.key)
        assert strict_eq(decoded.before, record.before)
        assert strict_eq(decoded.after, record.after)
        assert decoded.is_intact

    @settings(max_examples=60, deadline=None)
    @given(key=cells, before=images, after=images)
    def test_v1_fallback_decodes_old_frames(self, key, before, after):
        record = make_record(LogKind.UPDATE, "T", key, before, after)
        frame = encode_record_legacy(record)
        assert frame[0] == LEGACY_VERSION
        decoded = decode_record(frame)
        assert decoded.crc == record.crc
        assert records_equivalent(decoded, record)

    def test_unknown_version_rejected(self):
        record = make_record(LogKind.COMMIT, None, None, None, None)
        frame = bytes((99,)) + encode_record(record)[1:]
        try:
            decode_record(frame)
        except ValueError as exc:
            assert "99" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("bad version must not decode")


class TestCanonicalCrc:
    def test_integral_floats_fold_to_ints(self):
        assert payload_crc(1, 2, "update", "T", 1, (1, 2.0), None, 0) == \
            payload_crc(1, 2, "update", "T", 1.0, (1.0, 2), None, 0)

    def test_negative_zero_folds_to_zero(self):
        assert payload_crc(1, 2, "update", "T", -0.0, (0.0,), None, 0) == \
            payload_crc(1, 2, "update", "T", 0, (0,), None, 0)

    def test_lists_fold_to_tuples(self):
        assert payload_crc(1, 2, "update", "T", [1, "a"], [(1,), [2]], None, 0) == \
            payload_crc(1, 2, "update", "T", (1, "a"), ((1,), (2,)), None, 0)

    def test_type_distinctions_survive_folding(self):
        base = payload_crc(1, 2, "update", "T", 1, None, None, 0)
        assert payload_crc(1, 2, "update", "T", "1", None, None, 0) != base
        assert payload_crc(1, 2, "update", "T", True, None, None, 0) != base
        assert payload_crc(1, 2, "update", "T", b"1", None, None, 0) != base
        # non-integral floats stay floats
        assert payload_crc(1, 2, "update", "T", 1.5, None, None, 0) != base

    def test_payload_is_identity_independent(self):
        # Equal-but-distinct objects (no interning, no sharing) must
        # produce identical canonical bytes -- marshal format 2 emits no
        # identity back-references, which this pins.
        s1, s2 = "xy" * 3, "".join(["x", "y"]) * 3
        assert s1 is not s2
        row1, row2 = (s1, s1, 10 ** 40), (s2, "xy" * 3, 10 ** 40 + 1 - 1)
        assert canonical_payload(1, 2, "update", "T", s1, row1, None, 0) == \
            canonical_payload(1, 2, "update", "T", s2, row2, None, 0)

    @settings(max_examples=80, deadline=None)
    @given(row=st.tuples(st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
                         st.text(max_size=8),
                         st.integers(min_value=-(2 ** 40), max_value=2 ** 40)))
    def test_rebuilt_record_checksums_identically(self, row):
        """The satellite regression: an image that came back from an
        archive or wire frame as a list of floats must match the CRC
        stamped over the original tuple of ints."""
        rebuilt = [float(c) if isinstance(c, int) else c for c in row]
        assert payload_crc(1, 2, "update", "T", row[0], row, None, 0) == \
            payload_crc(1, 2, "update", "T", float(row[0]), rebuilt, None, 0)

    def test_wal_stamped_crc_matches_codec(self):
        """The append hot path inlines payload_crc; this pins the two
        implementations to byte-identical behaviour."""
        wal = WriteAheadLog()
        records = [
            wal.append(1, LogKind.BEGIN),
            wal.append(1, LogKind.UPDATE, table="T", key=2.0,
                       before=(2.0, "a", 1.5), after=(2.0, "b", -0.0)),
            wal.append(1, LogKind.INSERT, table="T", key=(1, "k"),
                       after=(1, "k", None)),
            wal.append(1, LogKind.COMMIT),
        ]
        for record in records:
            assert record.crc == record.expected_crc()
            assert record.is_intact


class TestLegacyCrcFallback:
    def test_legacy_stamped_record_is_intact(self):
        crc = legacy_record_crc(5, 9, LogKind.UPDATE, "T", 1, (1, "a"), (1, "b"), 4)
        record = LogRecord(5, 9, LogKind.UPDATE, "T", 1, (1, "a"), (1, "b"), 4, crc)
        assert record.is_intact

    def test_legacy_crc_is_not_canonical(self):
        # The legacy repr CRC is type-literal: the same record rebuilt
        # with a float key no longer verifies -- the defect the binary
        # codec fixes.
        crc = legacy_record_crc(5, 9, LogKind.UPDATE, "T", 1, (1, "a"), (1, "b"), 4)
        rebuilt = LogRecord(5, 9, LogKind.UPDATE, "T", 1.0, (1, "a"), (1, "b"), 4, crc)
        assert not rebuilt.is_intact


def _fresh_db(name):
    db = Database(name, buffer_size_bytes=1 << 22)
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def _run_workload(db):
    for k in range(1, 6):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [100, 1])
    loser = db.begin()
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [999, 2], txn=loser)
    # loser stays open across the crash


class TestRecoveryEquivalence:
    def test_v1_stamped_log_recovers_like_v2(self):
        """A log whose records still carry legacy repr CRCs (written
        before the codec change) must recover to the exact same state
        as the same log stamped with canonical binary CRCs."""
        new_db, old_db = _fresh_db("codec-new"), _fresh_db("codec-old")
        _run_workload(new_db)
        _run_workload(old_db)
        old_db.wal._records[:] = [
            replace(r, crc=legacy_record_crc(
                r.lsn, r.txn_id, r.kind, r.table, r.key, r.before,
                r.after, r.prev_lsn,
            ))
            for r in old_db.wal._records
        ]
        assert all(r.is_intact for r in old_db.wal._records)
        new_db.crash()
        old_db.crash()
        new_report = new_db.recover()
        old_report = old_db.recover()
        state = dict(new_db.query("SELECT K, V FROM kv").rows)
        assert state == dict(old_db.query("SELECT K, V FROM kv").rows)
        assert state == {1: 100, 2: 2, 3: 3, 4: 4, 5: 5}
        assert new_report.records_redone == old_report.records_redone

    def test_wire_round_tripped_log_recovers_identically(self):
        """crash()+recover() over records that went through the v2
        encoder and back is indistinguishable from the original log."""
        db, shadow = _fresh_db("codec-wire"), _fresh_db("codec-wire2")
        _run_workload(db)
        _run_workload(shadow)
        shadow.wal._records[:] = [
            decode_record(encode_record(r)) for r in shadow.wal._records
        ]
        for original, round_tripped in zip(db.wal._records, shadow.wal._records):
            assert records_equivalent(original, round_tripped)
        db.crash()
        shadow.crash()
        db.recover()
        shadow.recover()
        assert dict(db.query("SELECT K, V FROM kv").rows) == \
            dict(shadow.query("SELECT K, V FROM kv").rows)

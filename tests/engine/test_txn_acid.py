"""ACID tests: atomicity, isolation via 2PL, durability via WAL."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.engine.errors import LockTimeoutError, TransactionAborted
from repro.engine.types import Column, ColumnType, Schema


def fresh_db():
    db = Database("acid", buffer_size_bytes=1 << 22)
    db.create_table(Schema(
        "KV",
        (
            Column("K", ColumnType.INT, nullable=False),
            Column("V", ColumnType.INT, nullable=False, default=0),
        ),
        primary_key="K",
    ))
    for k in range(1, 6):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k * 10])
    return db


# -- atomicity ----------------------------------------------------------------

def test_rollback_undoes_insert():
    db = fresh_db()
    txn = db.begin()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [100, 1], txn=txn)
    txn.rollback()
    assert db.query("SELECT V FROM kv WHERE K = ?", [100]).rows == []


def test_rollback_undoes_update():
    db = fresh_db()
    txn = db.begin()
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [999, 1], txn=txn)
    txn.rollback()
    assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 10


def test_rollback_undoes_delete():
    db = fresh_db()
    txn = db.begin()
    db.execute("DELETE FROM kv WHERE K = ?", [1], txn=txn)
    txn.rollback()
    assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 10


def test_rollback_undoes_mixed_sequence_in_reverse():
    db = fresh_db()
    txn = db.begin()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [7, 70], txn=txn)
    db.execute("UPDATE kv SET V = V + ? WHERE K = ?", [5, 7], txn=txn)
    db.execute("DELETE FROM kv WHERE K = ?", [7], txn=txn)
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [11, 1], txn=txn)
    txn.rollback()
    assert db.query("SELECT V FROM kv WHERE K = ?", [7]).rows == []
    assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 10


def test_context_manager_commits_on_success():
    db = fresh_db()
    with db.begin() as txn:
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [42, 1], txn=txn)
    assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 42


def test_context_manager_rolls_back_on_exception():
    db = fresh_db()
    with pytest.raises(RuntimeError):
        with db.begin() as txn:
            db.execute("UPDATE kv SET V = ? WHERE K = ?", [42, 1], txn=txn)
            raise RuntimeError("app error")
    assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 10


def test_autocommit_failure_rolls_back():
    db = fresh_db()
    # second row in the statement fails -> statement-level rollback of txn
    txn = db.begin()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [50, 1], txn=txn)
    txn.commit()
    assert db.query("SELECT COUNT(*) FROM kv").scalar() == 6


def test_finished_transaction_cannot_be_reused():
    db = fresh_db()
    txn = db.begin()
    txn.commit()
    with pytest.raises(TransactionAborted):
        db.execute("SELECT * FROM kv", txn=txn)
    txn.rollback()  # no-op, must not raise


# -- isolation (cooperative 2PL) ----------------------------------------------------

def test_write_write_conflict_blocks_second_writer():
    db = fresh_db()
    txn1 = db.begin()
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [1, 1], txn=txn1)
    txn2 = db.begin()
    with pytest.raises(LockTimeoutError):
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [2, 1], txn=txn2)
    # the blocked transaction was rolled back by the no-wait policy
    assert not txn2.is_active
    txn1.commit()
    assert db.query("SELECT V FROM kv WHERE K = ?", [1]).scalar() == 1


def test_reader_blocked_by_uncommitted_write():
    """No dirty reads: a read of an X-locked row aborts (no-wait)."""
    db = fresh_db()
    writer = db.begin()
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [777, 2], txn=writer)
    reader = db.begin()
    with pytest.raises(LockTimeoutError):
        db.execute("SELECT V FROM kv WHERE K = ?", [2], txn=reader)
    writer.rollback()
    assert db.query("SELECT V FROM kv WHERE K = ?", [2]).scalar() == 20


def test_read_committed_releases_read_locks():
    db = fresh_db()
    reader = db.begin()  # READ COMMITTED by default
    db.execute("SELECT V FROM kv WHERE K = ?", [3], txn=reader)
    writer = db.begin()
    # the reader's S lock is already gone, so the writer proceeds
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [5, 3], txn=writer)
    writer.commit()
    reader.commit()
    assert db.query("SELECT V FROM kv WHERE K = ?", [3]).scalar() == 5


def test_serializable_holds_read_locks():
    from repro.engine.txn import IsolationLevel

    db = fresh_db()
    reader = db.begin(IsolationLevel.SERIALIZABLE)
    db.execute("SELECT V FROM kv WHERE K = ?", [3], txn=reader)
    writer = db.begin()
    with pytest.raises(LockTimeoutError):
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [5, 3], txn=writer)
    reader.commit()


def test_shared_readers_coexist():
    from repro.engine.txn import IsolationLevel

    db = fresh_db()
    r1 = db.begin(IsolationLevel.SERIALIZABLE)
    r2 = db.begin(IsolationLevel.SERIALIZABLE)
    assert db.execute("SELECT V FROM kv WHERE K = ?", [1], txn=r1).scalar() == 10
    assert db.execute("SELECT V FROM kv WHERE K = ?", [1], txn=r2).scalar() == 10
    r1.commit()
    r2.commit()


def test_locks_released_after_commit():
    db = fresh_db()
    txn = db.begin()
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [1, 1], txn=txn)
    txn.commit()
    assert db.locks.holders(("KV", 1)) == {}
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [2, 1])  # proceeds


# -- consistency under randomized workloads ---------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.integers(min_value=1, max_value=12),
            st.booleans(),  # commit?
        ),
        max_size=30,
    )
)
def test_property_committed_state_matches_model(operations):
    """The database equals a dict model that only applies committed txns."""
    db = Database("prop")
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    model = {}
    counter = 0
    for op, key, commit in operations:
        counter += 1
        txn = db.begin()
        try:
            if op == "insert":
                db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, counter], txn=txn)
            elif op == "update":
                db.execute("UPDATE kv SET V = ? WHERE K = ?", [counter, key], txn=txn)
            else:
                db.execute("DELETE FROM kv WHERE K = ?", [key], txn=txn)
        except TransactionAborted:
            continue
        except Exception:
            txn.rollback()
            continue
        if commit:
            txn.commit()
            if op == "insert":
                model[key] = counter
            elif op == "update" and key in model:
                model[key] = counter
            elif op == "delete":
                model.pop(key, None)
        else:
            txn.rollback()
    rows = dict(db.query("SELECT K, V FROM kv").rows)
    assert rows == model

"""WAL checksums, crash points, and corruption-tolerant recovery.

The contract under test: whatever combination of crash point (record
lost / durable / torn) and tail corruption (bit flips) hits the log,
recovery truncates at the first corrupt record and restores **exactly
the committed prefix** -- transactions whose COMMIT record lies at or
beyond the corruption never happened.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.engine.errors import EngineError, SimulatedCrash, WalCorruptionError  # noqa: F401
from repro.engine.types import Column, ColumnType, Schema
from repro.engine.wal import CRASH_MODES, LogKind, WriteAheadLog


def fresh_db():
    db = Database("chaos")
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def kv_state(db):
    return dict(db.query("SELECT K, V FROM kv").rows)


def committed_prefix_state(db):
    """Independent oracle: replay the intact committed prefix of the WAL.

    Reads the raw record stream (stopping at the first CRC failure) and
    applies only transactions whose COMMIT lies inside the intact
    prefix.  Deliberately much simpler than ARIES recovery: single
    table, primary-key ops, no undo needed.
    """
    start = db.checkpoint_lsn + 1
    corrupt = db.wal.first_corrupt_lsn(start)
    end = corrupt if corrupt is not None else db.wal.last_lsn + 1
    records = [r for r in db.wal.records_from(start) if r.lsn < end]
    committed = {r.txn_id for r in records if r.kind is LogKind.COMMIT}
    aborted = {r.txn_id for r in records if r.kind is LogKind.ABORT}
    state = {}
    for record in records:
        if record.txn_id in aborted or record.txn_id not in committed:
            continue
        if record.kind is LogKind.INSERT:
            state[record.after[0]] = record.after[1]
        elif record.kind is LogKind.UPDATE:
            state[record.after[0]] = record.after[1]
        elif record.kind is LogKind.DELETE:
            state.pop(record.key, None)
    return state


# -- checksum mechanics --------------------------------------------------------


def test_records_carry_valid_crcs():
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    records = list(db.wal.records_from(1))
    assert records
    assert all(record.is_intact for record in records)
    assert all(record.crc == record.expected_crc() for record in records)


def test_flip_bit_breaks_the_crc():
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    target = next(
        r.lsn for r in db.wal.records_from(1) if r.kind is LogKind.INSERT
    )
    assert db.wal.first_corrupt_lsn() is None
    corrupted = db.wal.flip_bit(target)
    assert not corrupted.is_intact
    assert db.wal.first_corrupt_lsn() == target


def test_flip_bit_rejects_unretained_lsn():
    wal = WriteAheadLog()
    with pytest.raises(ValueError):
        wal.flip_bit(1)


def test_discard_from_drops_suffix_and_reuses_lsns():
    db = fresh_db()
    for key in (1, 2, 3):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, key])
    last = db.wal.last_lsn
    dropped = db.wal.discard_from(last - 1)
    assert dropped == 2
    assert db.wal.last_lsn == last - 2
    # the next append reuses the discarded LSN, like overwriting a torn tail
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [9, 9])
    assert db.wal.record_at(last - 1).lsn == last - 1


def test_arm_crash_validates():
    wal = WriteAheadLog()
    with pytest.raises(ValueError):
        wal.arm_crash(1, mode="sideways")
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    with pytest.raises(ValueError):
        db.wal.arm_crash(1)  # already written


# -- crash-point modes ---------------------------------------------------------


def test_crash_before_loses_the_record():
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    armed = db.wal.last_lsn + 1
    db.wal.arm_crash(armed, mode="before")
    with pytest.raises(SimulatedCrash):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
    assert db.wal.last_lsn < armed or db.wal.record_at(armed).kind is not LogKind.INSERT
    db.crash()
    db.recover()
    assert kv_state(db) == {1: 1}


def test_crash_after_keeps_record_durable_but_txn_uncommitted():
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    db.wal.arm_crash(db.wal.last_lsn + 2, mode="after")  # the INSERT record
    with pytest.raises(SimulatedCrash):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
    # the data record reached the log intact...
    assert any(
        r.kind is LogKind.INSERT and r.key == 2 and r.is_intact
        for r in db.wal.records_from(1)
    )
    db.crash()
    report = db.recover()
    # ...but with no COMMIT it is a loser: redone, then undone
    assert kv_state(db) == {1: 1}
    assert report.corrupt_from_lsn is None
    assert report.losers


def test_torn_write_truncates_at_the_torn_record():
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    torn_lsn = db.wal.last_lsn + 2
    db.wal.arm_crash(torn_lsn, mode="torn")
    with pytest.raises(SimulatedCrash):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
    assert db.wal.first_corrupt_lsn() == torn_lsn
    db.crash()
    report = db.recover()
    assert kv_state(db) == {1: 1}
    assert report.corrupt_from_lsn == torn_lsn
    assert report.records_discarded >= 1
    assert db.wal.first_corrupt_lsn() is None  # the tail is clean again


def test_bit_flip_rolls_back_commits_beyond_the_corruption():
    """A committed transaction whose COMMIT lies beyond a corrupt record
    is gone after recovery -- the committed *prefix* survives, nothing
    after the tear."""
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    prefix_end = db.wal.last_lsn
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
    target = next(
        r.lsn for r in db.wal.records_from(prefix_end + 1)
        if r.kind is LogKind.INSERT
    )
    db.crash()
    db.wal.flip_bit(target)
    report = db.recover()
    assert kv_state(db) == {1: 1}
    assert report.corrupt_from_lsn == target


def test_recovery_after_corruption_is_stable_across_cycles():
    db = fresh_db()
    for key in (1, 2, 3, 4):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, key])
    db.crash()
    db.wal.flip_bit(db.wal.last_lsn - 1)
    db.recover()
    expected = kv_state(db)
    for _ in range(3):
        db.crash()
        db.recover()
        assert kv_state(db) == expected


# -- the torture property ------------------------------------------------------


op_strategy = st.tuples(
    st.sampled_from(["insert", "update", "delete"]),
    st.integers(min_value=1, max_value=6),
)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(op_strategy, min_size=1, max_size=20),
    crash_offset=st.integers(min_value=1, max_value=60),
    crash_mode=st.sampled_from(CRASH_MODES),
    corrupt=st.booleans(),
    corrupt_back=st.integers(min_value=0, max_value=10),
    corrupt_bit=st.integers(min_value=0, max_value=30),
)
def test_torture_exactly_the_committed_prefix_survives(
    ops, crash_offset, crash_mode, corrupt, corrupt_back, corrupt_bit
):
    """Random crash points x random crash modes x random WAL-tail bit
    flips: recovery always restores exactly the state implied by the
    intact committed prefix of the log."""
    db = fresh_db()
    db.wal.arm_crash(crash_offset, mode=crash_mode)
    counter = 0
    for op, key in ops:
        counter += 1
        try:
            if op == "insert":
                db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, counter])
            elif op == "update":
                db.execute("UPDATE kv SET V = ? WHERE K = ?", [counter, key])
            else:
                db.execute("DELETE FROM kv WHERE K = ?", [key])
        except SimulatedCrash:
            break
        except EngineError:
            pass  # duplicate-key insert: aborted and rolled back
    db.wal.disarm_crash()
    db.crash()
    if corrupt and db.wal.retained_records:
        lsn = max(
            db.wal.first_retained_lsn, db.wal.last_lsn - corrupt_back
        )
        db.wal.flip_bit(lsn, bit=corrupt_bit)
    expected = committed_prefix_state(db)
    report = db.recover()
    assert kv_state(db) == expected
    # report bookkeeping matches what we injected
    if report.corrupt_from_lsn is not None:
        assert report.records_discarded >= 1
    # and the recovered instance keeps working
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [99, 99])
    assert kv_state(db)[99] == 99

"""Isolation-anomaly matrix across all four isolation levels.

For each classical anomaly -- dirty read, non-repeatable read, lost
update, write skew -- these tests assert which levels permit and which
forbid it:

=====================  ====  ====  ========  ============
anomaly                RC    RR    SNAPSHOT  SERIALIZABLE
=====================  ====  ====  ========  ============
dirty read             no    no    no        no
non-repeatable read    YES   no    no        no
lost update            YES   no    no        no
write skew             YES   YES   YES       no
=====================  ====  ====  ========  ============

The engine's two MVCC levels (REPEATABLE_READ and SNAPSHOT) are both
snapshot isolation, PostgreSQL-style: they forbid lost updates via
first-updater-wins (:class:`WriteConflictError`) but permit write skew,
which only strict 2PL (SERIALIZABLE) prevents.  The lock-based levels
forbid dirty reads through the no-wait lock manager: a reader aborts
with :class:`LockTimeoutError` instead of seeing uncommitted data.

Also here: crash-recovery tests asserting version chains are rebuilt by
redo/undo so snapshot reads keep working after ``crash()``/``recover()``.
"""

import pytest

from repro.engine.database import Database
from repro.engine.errors import (
    LockTimeoutError,
    SqlError,
    TransactionAborted,
    WriteConflictError,
)
from repro.engine.txn import MVCC_LEVELS, IsolationLevel
from repro.engine.types import Column, ColumnType, Schema

RC = IsolationLevel.READ_COMMITTED
RR = IsolationLevel.REPEATABLE_READ
SNAP = IsolationLevel.SNAPSHOT
SER = IsolationLevel.SERIALIZABLE
ALL_LEVELS = (RC, RR, SNAP, SER)


def make_db() -> Database:
    db = Database("iso-test")
    db.create_table(Schema(
        "ACC",
        (
            Column("ID", ColumnType.INT, nullable=False),
            Column("BAL", ColumnType.INT, nullable=False),
        ),
        primary_key="ID",
    ))
    db.execute("INSERT INTO ACC VALUES (?, ?)", [1, 100])
    db.execute("INSERT INTO ACC VALUES (?, ?)", [2, 200])
    return db


def balance(db, txn, key):
    return db.execute(
        "SELECT BAL FROM ACC WHERE ID = ?", [key], txn=txn
    ).scalar()


class TestDirtyRead:
    """No level may observe another transaction's uncommitted write."""

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_uncommitted_write_invisible(self, level):
        db = make_db()
        writer = db.begin()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [999, 1], txn=writer)
        reader = db.begin(level)
        if level in MVCC_LEVELS:
            # snapshot reads bypass locks and resolve to the committed image
            assert balance(db, reader, 1) == 100
            reader.commit()
        else:
            # lock-based readers abort (no-wait) rather than read dirty data
            with pytest.raises(LockTimeoutError):
                balance(db, reader, 1)
        writer.rollback()


class TestNonRepeatableRead:
    """Permitted only under READ_COMMITTED."""

    def test_read_committed_sees_intervening_commit(self):
        db = make_db()
        reader = db.begin(RC)
        assert balance(db, reader, 1) == 100
        writer = db.begin()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [150, 1], txn=writer)
        writer.commit()
        assert balance(db, reader, 1) == 150  # the anomaly
        reader.commit()

    @pytest.mark.parametrize("level", (RR, SNAP))
    def test_mvcc_levels_repeat_the_first_read(self, level):
        db = make_db()
        reader = db.begin(level)
        assert balance(db, reader, 1) == 100
        writer = db.begin()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [150, 1], txn=writer)
        writer.commit()
        assert balance(db, reader, 1) == 100
        reader.commit()

    def test_serializable_blocks_the_writer_instead(self):
        db = make_db()
        reader = db.begin(SER)
        assert balance(db, reader, 1) == 100
        writer = db.begin()
        # reader's S lock is held to commit; the no-wait writer aborts
        with pytest.raises(LockTimeoutError):
            db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [150, 1], txn=writer)
        assert balance(db, reader, 1) == 100
        reader.commit()


class TestLostUpdate:
    """Two read-modify-write cycles on one row must not silently merge."""

    def test_read_committed_loses_the_first_update(self):
        db = make_db()
        a = db.begin(RC)
        b = db.begin(RC)
        seen_a = balance(db, a, 1)
        seen_b = balance(db, b, 1)  # RC releases S locks per statement
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [seen_a + 10, 1], txn=a)
        a.commit()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [seen_b + 5, 1], txn=b)
        b.commit()
        # b overwrote a's increment: the classic lost update
        assert db.query("SELECT BAL FROM ACC WHERE ID = ?", [1]).scalar() == 105

    @pytest.mark.parametrize("level", (RR, SNAP))
    def test_mvcc_raises_retryable_write_conflict(self, level):
        db = make_db()
        a = db.begin(level)
        b = db.begin(level)
        seen_a = balance(db, a, 1)
        seen_b = balance(db, b, 1)
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [seen_a + 10, 1], txn=a)
        a.commit()
        with pytest.raises(WriteConflictError) as info:
            db.execute(
                "UPDATE ACC SET BAL = ? WHERE ID = ?", [seen_b + 5, 1], txn=b
            )
        assert info.value.retryable
        assert not b.is_active  # first-updater-wins rolled b back
        assert db.query("SELECT BAL FROM ACC WHERE ID = ?", [1]).scalar() == 110

    def test_serializable_aborts_via_held_read_lock(self):
        db = make_db()
        a = db.begin(SER)
        b = db.begin(SER)
        balance(db, a, 1)
        balance(db, b, 1)  # both hold S locks to commit
        with pytest.raises(LockTimeoutError):
            db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [110, 1], txn=a)
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [105, 1], txn=b)
        b.commit()
        assert db.query("SELECT BAL FROM ACC WHERE ID = ?", [1]).scalar() == 105


class TestWriteSkew:
    """Disjoint writes off overlapping reads: only SERIALIZABLE forbids it.

    The classic constraint: BAL(1) + BAL(2) must stay >= 0.  Each
    transaction checks the sum then withdraws from a *different* row --
    snapshot isolation admits both, breaking the invariant.
    """

    def _attempt(self, db, level):
        a = db.begin(level)
        b = db.begin(level)
        total_a = balance(db, a, 1) + balance(db, a, 2)
        total_b = balance(db, b, 1) + balance(db, b, 2)
        assert total_a == total_b == 300
        # each withdraws 250 from its own row, believing 300 is available
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [100 - 250, 1], txn=a)
        a.commit()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [200 - 250, 2], txn=b)
        b.commit()

    @pytest.mark.parametrize("level", (RC, RR, SNAP))
    def test_permitted_below_serializable(self, level):
        db = make_db()
        self._attempt(db, level)
        total = (
            db.query("SELECT BAL FROM ACC WHERE ID = ?", [1]).scalar()
            + db.query("SELECT BAL FROM ACC WHERE ID = ?", [2]).scalar()
        )
        assert total < 0  # invariant broken: write skew happened

    def test_forbidden_under_serializable(self):
        db = make_db()
        with pytest.raises(TransactionAborted):
            self._attempt(db, SER)
        total = (
            db.query("SELECT BAL FROM ACC WHERE ID = ?", [1]).scalar()
            + db.query("SELECT BAL FROM ACC WHERE ID = ?", [2]).scalar()
        )
        assert total >= 0


class TestSnapshotReadPaths:
    """Visibility holds on every access plan, not just point lookups."""

    def test_scan_and_aggregate_see_the_snapshot(self):
        db = make_db()
        reader = db.begin(SNAP)
        assert db.execute(
            "SELECT COUNT(*) FROM ACC", txn=reader
        ).scalar() == 2
        db.execute("INSERT INTO ACC VALUES (?, ?)", [3, 300])
        db.execute("DELETE FROM ACC WHERE ID = ?", [2])
        # the snapshot still counts the original two rows
        assert db.execute(
            "SELECT COUNT(*) FROM ACC", txn=reader
        ).scalar() == 2
        rows = db.execute("SELECT * FROM ACC", txn=reader).rows
        assert sorted(rows) == [(1, 100), (2, 200)]
        reader.commit()

    def test_own_writes_visible_to_self(self):
        db = make_db()
        txn = db.begin(SNAP)
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [123, 1], txn=txn)
        assert balance(db, txn, 1) == 123
        db.execute("INSERT INTO ACC VALUES (?, ?)", [9, 9], txn=txn)
        assert db.execute(
            "SELECT COUNT(*) FROM ACC", txn=txn
        ).scalar() == 3
        txn.commit()

    def test_deleted_row_still_visible_to_older_snapshot(self):
        db = make_db()
        reader = db.begin(SNAP)
        db.execute("DELETE FROM ACC WHERE ID = ?", [1])
        assert balance(db, reader, 1) == 100
        reader.commit()
        fresh = db.begin(SNAP)
        assert db.execute(
            "SELECT BAL FROM ACC WHERE ID = ?", [1], txn=fresh
        ).rows == []
        fresh.commit()


class TestVacuum:
    """GC trims history no live snapshot can need, and no more."""

    def test_versions_pinned_by_live_snapshot(self):
        db = make_db()
        reader = db.begin(SNAP)
        for value in range(5):
            db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [value, 1], txn=None)
        before = db.live_versions()
        db.vacuum()
        # the reader's snapshot pins the base version; history up to it
        # may go, but the visible image must survive
        assert balance(db, reader, 1) == 100
        reader.commit()
        db.vacuum()
        assert db.live_versions() == 0
        assert db.live_versions() < before

    def test_auto_vacuum_triggers_on_commit(self):
        db = Database("auto-vac", auto_vacuum_versions=8)
        db.create_table(Schema(
            "T", (Column("K", ColumnType.INT, nullable=False),
                  Column("V", ColumnType.INT)), primary_key="K",
        ))
        db.execute("INSERT INTO T VALUES (?, ?)", [1, 0])
        for value in range(40):
            db.execute("UPDATE T SET V = ? WHERE K = ?", [value, 1])
        assert db.vacuum_runs > 0
        assert db.live_versions() < 40

    def test_checkpoint_vacuums(self):
        db = make_db()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [7, 1])
        assert db.live_versions() > 0
        db.checkpoint()
        assert db.live_versions() == 0


class TestQueryGuard:
    """``Database.query`` is read-only (regression: it silently ran writes)."""

    def test_query_rejects_writes(self):
        db = make_db()
        for sql, params in (
            ("INSERT INTO ACC VALUES (?, ?)", [5, 5]),
            ("UPDATE ACC SET BAL = ? WHERE ID = ?", [0, 1]),
            ("DELETE FROM ACC WHERE ID = ?", [1]),
        ):
            with pytest.raises(SqlError):
                db.query(sql, params)
        # nothing was mutated
        assert db.query("SELECT COUNT(*) FROM ACC").scalar() == 2
        assert db.query("SELECT BAL FROM ACC WHERE ID = ?", [1]).scalar() == 100

    def test_execute_still_writes(self):
        db = make_db()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [1, 1])
        assert db.query("SELECT BAL FROM ACC WHERE ID = ?", [1]).scalar() == 1


class TestCrashRecoveryChains:
    """Version chains are rebuilt from the WAL after a crash."""

    def test_snapshot_reads_after_recovery(self):
        db = make_db()
        db.checkpoint()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [111, 1])
        db.execute("INSERT INTO ACC VALUES (?, ?)", [3, 333])
        db.execute("DELETE FROM ACC WHERE ID = ?", [2])
        db.crash()
        db.recover()
        reader = db.begin(SNAP)
        assert balance(db, reader, 1) == 111
        assert balance(db, reader, 3) == 333
        assert db.execute(
            "SELECT BAL FROM ACC WHERE ID = ?", [2], txn=reader
        ).rows == []
        assert db.execute("SELECT COUNT(*) FROM ACC", txn=reader).scalar() == 2
        reader.commit()

    def test_loser_versions_removed_by_undo(self):
        db = make_db()
        db.checkpoint()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [500, 1])
        loser = db.begin()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [666, 1], txn=loser)
        db.execute("INSERT INTO ACC VALUES (?, ?)", [7, 7], txn=loser)
        db.crash()  # loser never committed
        report = db.recover()
        assert report.records_undone > 0
        reader = db.begin(SNAP)
        assert balance(db, reader, 1) == 500
        assert db.execute(
            "SELECT BAL FROM ACC WHERE ID = ?", [7], txn=reader
        ).rows == []
        reader.commit()

    def test_mvcc_conflict_state_resets_after_recovery(self):
        db = make_db()
        db.checkpoint()
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [1, 1])
        db.crash()
        db.recover()
        # a fresh snapshot writer must not conflict with pre-crash history
        txn = db.begin(SNAP)
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [2, 1], txn=txn)
        txn.commit()
        assert db.query("SELECT BAL FROM ACC WHERE ID = ?", [1]).scalar() == 2

    def test_replica_snapshot_reads_shipped_versions(self):
        from repro.engine.recovery import ReplicaApplier

        db = make_db()
        replica = db.clone_full("replica")
        applier = ReplicaApplier(replica)
        batches = []
        db.add_commit_listener(
            lambda _txn, _lsn, records: batches.append(list(records))
        )
        db.execute("UPDATE ACC SET BAL = ? WHERE ID = ?", [777, 1])
        for batch in batches:
            applier.apply_batch(batch)
        assert replica.snapshot_floor == applier.applied_lsn
        reader = replica.begin(SNAP)
        assert replica.execute(
            "SELECT BAL FROM ACC WHERE ID = ?", [1], txn=reader
        ).scalar() == 777
        reader.commit()

"""Fault-injection: crashes at arbitrary points in a transaction stream.

The durability contract: after ``crash()`` + ``recover()``, exactly the
committed transactions are visible -- no matter where in the stream the
crash lands, how checkpoints interleave, or how often the cycle repeats.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.engine.errors import EngineError, TransactionAborted
from repro.engine.types import Column, ColumnType, Schema


def fresh_db():
    db = Database("fault")
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def kv_state(db):
    return dict(db.query("SELECT K, V FROM kv").rows)


#: one scripted step of the stream
step_strategy = st.tuples(
    st.sampled_from(["insert", "update", "delete", "checkpoint", "crash"]),
    st.integers(min_value=1, max_value=8),
)


@settings(max_examples=40, deadline=None)
@given(steps=st.lists(step_strategy, min_size=1, max_size=40))
def test_property_recovery_matches_model_at_any_crash_point(steps):
    db = fresh_db()
    model = {}
    counter = 0
    for op, key in steps:
        if op == "checkpoint":
            db.checkpoint()
            continue
        if op == "crash":
            db.crash()
            db.recover()
            assert kv_state(db) == model
            continue
        counter += 1
        try:
            if op == "insert":
                db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [key, counter])
                model[key] = counter
            elif op == "update":
                if db.execute(
                    "UPDATE kv SET V = ? WHERE K = ?", [counter, key]
                ).rowcount:
                    model[key] = counter
            else:
                if db.execute("DELETE FROM kv WHERE K = ?", [key]).rowcount:
                    model.pop(key, None)
        except EngineError:
            pass
    db.crash()
    db.recover()
    assert kv_state(db) == model


def test_crash_mid_transaction_loses_only_that_transaction():
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    db.checkpoint()
    open_txn = db.begin()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2], txn=open_txn)
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [99, 1], txn=open_txn)
    db.crash()
    db.recover()
    assert kv_state(db) == {1: 1}
    # the old handle is unusable after the crash
    with pytest.raises(TransactionAborted):
        open_txn.ensure_active()


def test_repeated_crash_recover_cycles_are_stable():
    db = fresh_db()
    for k in range(1, 6):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
    expected = kv_state(db)
    for _ in range(4):
        db.crash()
        db.recover()
        assert kv_state(db) == expected
        db.checkpoint()


def test_crash_between_checkpoint_and_commit():
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    txn = db.begin()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2], txn=txn)
    # a checkpoint cannot run while the transaction is open...
    with pytest.raises(EngineError):
        db.checkpoint()
    txn.commit()
    db.checkpoint()
    db.crash()
    db.recover()
    assert kv_state(db) == {1: 1, 2: 2}


def test_recovery_preserves_autoincrement_progression():
    db = fresh_db()
    db.create_table(Schema(
        "SEQ",
        (Column("S_ID", ColumnType.INT, nullable=False, autoincrement=True),
         Column("S_V", ColumnType.INT, default=0)),
        primary_key="S_ID",
    ))
    for _ in range(3):
        db.execute("INSERT INTO seq (S_V) VALUES (?)", [1])
    db.crash()
    db.recover()
    db.execute("INSERT INTO seq (S_V) VALUES (?)", [2])
    keys = sorted(row[0] for row in db.query("SELECT S_ID FROM seq").rows)
    assert keys == [1, 2, 3, 4]  # no key reuse after recovery


def test_secondary_indexes_consistent_after_recovery():
    db = fresh_db()
    db.create_index("KV", "kv_v", ("V",))
    for k in range(1, 8):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k % 3])
    db.checkpoint()
    db.execute("UPDATE kv SET V = ? WHERE K = ?", [9, 1])
    db.execute("DELETE FROM kv WHERE K = ?", [2])
    db.crash()
    db.recover()
    # index-backed query agrees with a scan-backed one
    via_index = sorted(r[0] for r in db.query(
        "SELECT K FROM kv WHERE V = ?", [0]).rows)
    via_scan = sorted(
        k for k, v in db.query("SELECT K, V FROM kv").rows if v == 0
    )
    assert via_index == via_scan


def test_replication_resumes_after_primary_recovery():
    """A replica attached after recovery sees all recovered state."""
    db = fresh_db()
    for k in range(1, 4):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
    db.crash()
    db.recover()
    clone = db.clone_full("replica")
    assert kv_state(clone) == kv_state(db)


def test_txn_ids_stay_monotone_across_crashes():
    """Regression: a reused txn id after crash let a new ABORT record
    poison an identically-numbered committed pre-crash transaction."""
    db = fresh_db()
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
    db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2])
    max_before = db.wal.max_txn_id()
    db.crash()
    db.recover()
    txn = db.begin()
    assert txn.txn_id > max_before
    txn.rollback()
    db.crash()
    db.recover()
    assert kv_state(db) == {1: 1, 2: 2}

"""Tests for the SQL subset parser."""

import pytest

from repro.engine.errors import SqlError
from repro.engine.sql import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
    count_params,
    parse,
)


class TestSelect:
    def test_simple_select(self):
        stmt = parse("SELECT O_ID, O_STATUS FROM orders WHERE O_ID = ?")
        assert isinstance(stmt, SelectStatement)
        assert stmt.table == "ORDERS"
        assert [item.column for item in stmt.items] == ["O_ID", "O_STATUS"]
        assert stmt.where[0].column == "O_ID"
        assert stmt.where[0].op == "="
        assert count_params(stmt) == 1

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.star
        assert stmt.where == ()

    def test_multiple_conditions(self):
        stmt = parse("SELECT A FROM t WHERE A >= ? AND B < 10 AND C <> 'x'")
        assert [c.op for c in stmt.where] == [">=", "<", "<>"]
        assert stmt.where[1].value.literal == 10
        assert stmt.where[2].value.literal == "x"

    def test_not_equals_variants(self):
        assert parse("SELECT A FROM t WHERE A != ?").where[0].op == "<>"

    def test_order_by_limit(self):
        stmt = parse("SELECT A FROM t WHERE B = ? ORDER BY A DESC LIMIT 1")
        assert stmt.order_by == "A"
        assert stmt.order_desc
        assert stmt.limit == 1

    def test_order_by_asc_default(self):
        stmt = parse("SELECT A FROM t ORDER BY A")
        assert not stmt.order_desc

    def test_for_update(self):
        stmt = parse("SELECT A FROM t WHERE A = ? FOR UPDATE")
        assert stmt.for_update

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(B), MAX(C), MIN(D) FROM t")
        aggs = [(item.aggregate, item.column) for item in stmt.items]
        assert aggs == [("COUNT", None), ("SUM", "B"), ("MAX", "C"), ("MIN", "D")]

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT S_I_ID) FROM stock")
        assert stmt.items[0].distinct
        assert stmt.items[0].column == "S_I_ID"

    def test_sum_star_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT SUM(*) FROM t")

    def test_string_literal_with_escaped_quote(self):
        stmt = parse("SELECT A FROM t WHERE B = 'it''s'")
        assert stmt.where[0].value.literal == "it's"


class TestInsert:
    def test_positional_values(self):
        stmt = parse("INSERT INTO orderline VALUES (DEFAULT, ?, ?, ?, ?)")
        assert isinstance(stmt, InsertStatement)
        assert stmt.columns == ()
        assert stmt.values[0].kind == "default"
        assert count_params(stmt) == 4

    def test_column_list(self):
        stmt = parse("INSERT INTO t (A, B) VALUES (?, 5)")
        assert stmt.columns == ("A", "B")
        assert stmt.values[1].literal == 5

    def test_null_literal(self):
        stmt = parse("INSERT INTO t (A) VALUES (NULL)")
        assert stmt.values[0].literal is None

    def test_float_literal(self):
        stmt = parse("INSERT INTO t (A) VALUES (3.14)")
        assert stmt.values[0].literal == pytest.approx(3.14)


class TestUpdate:
    def test_plain_set(self):
        stmt = parse("UPDATE orders SET O_STATUS = 'PAID' WHERE O_ID = ?")
        assert isinstance(stmt, UpdateStatement)
        assert stmt.sets[0].column == "O_STATUS"
        assert stmt.sets[0].value.literal == "PAID"
        assert stmt.sets[0].delta_column is None

    def test_arithmetic_set(self):
        stmt = parse("UPDATE customer SET C_CREDIT = C_CREDIT + ? WHERE C_ID = ?")
        clause = stmt.sets[0]
        assert clause.delta_column == "C_CREDIT"
        assert clause.delta_sign == 1

    def test_subtraction_set(self):
        stmt = parse("UPDATE stock SET S_QUANTITY = S_QUANTITY - ? WHERE S_KEY = ?")
        assert stmt.sets[0].delta_sign == -1

    def test_multiple_sets_param_order(self):
        stmt = parse("UPDATE t SET A = ?, B = B + ? WHERE C = ?")
        indexes = [stmt.sets[0].value.param_index,
                   stmt.sets[1].value.param_index,
                   stmt.where[0].value.param_index]
        assert indexes == [0, 1, 2]

    def test_cross_column_delta(self):
        stmt = parse("UPDATE t SET A = B + ?")
        assert stmt.sets[0].column == "A"
        assert stmt.sets[0].delta_column == "B"


class TestDelete:
    def test_delete_where(self):
        stmt = parse("DELETE FROM orderline WHERE OL_ID = ?")
        assert isinstance(stmt, DeleteStatement)
        assert stmt.table == "ORDERLINE"
        assert count_params(stmt) == 1

    def test_delete_all(self):
        stmt = parse("DELETE FROM t")
        assert stmt.where == ()


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",                                    # empty
        "DROP TABLE t",                        # unsupported verb
        "SELECT FROM t",                       # missing select list
        "SELECT A FROM",                       # missing table
        "SELECT A FROM t WHERE",               # dangling where
        "SELECT A FROM t LIMIT x",             # non-integer limit
        "INSERT INTO t VALUES",                # missing tuple
        "INSERT INTO t VALUES (1",             # unclosed paren
        "UPDATE t SET",                        # missing clause
        "UPDATE t SET A = B * ?",              # unsupported operator
        "SELECT A FROM t WHERE A LIKE ?",      # unsupported predicate
        "SELECT A FROM t; SELECT B FROM t",    # trailing tokens
        "SELECT A FROM t WHERE A = @x",        # untokenizable char
    ])
    def test_rejects(self, bad):
        with pytest.raises(SqlError):
            parse(bad)

    def test_identifiers_are_uppercased(self):
        stmt = parse("select o_id from orders where o_id = ?")
        assert stmt.table == "ORDERS"
        assert stmt.items[0].column == "O_ID"

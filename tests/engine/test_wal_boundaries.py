"""WAL truncation-boundary API hardening.

The truncation boundary (``first_retained_lsn``) is where silent
corruption hides: a chain walk, tail discard, or point read that
quietly crosses it operates on half a transaction.  These tests pin
the hardened contracts: every boundary crossing raises instead of
shortening, ``reset_for_restore()`` is the one sanctioned way back to
a pristine log, and ``in_doubt_txns()`` reports exactly the chains a
consistent cut must not straddle.
"""

import pytest

from repro.engine.database import Database
from repro.engine.errors import WalCorruptionError
from repro.engine.types import Column, ColumnType, Schema
from repro.engine.wal import LogKind


def fresh_db(name="walb"):
    db = Database(name, buffer_size_bytes=1 << 22)
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    return db


def _truncating_checkpoint(db):
    db.checkpoint(truncate_wal=True)
    return db.wal.first_retained_lsn


class TestTransactionChainBoundary:
    def test_chain_crossing_truncation_raises(self):
        """A chain whose tail was truncated must refuse to walk, not
        return a silently shortened (= corrupt) undo list."""
        db = fresh_db()
        txn = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1], txn=txn)
        first_lsn = db.wal.last_lsn
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2], txn=txn)
        last_lsn = db.wal.last_lsn
        txn.commit()
        # force the truncation point between the two chain records
        db.wal.truncate(first_lsn + 1)
        assert db.wal.first_retained_lsn > first_lsn
        with pytest.raises(ValueError, match="truncation"):
            db.wal.transaction_chain(txn.txn_id, last_lsn)

    def test_chain_fully_retained_still_walks(self):
        db = fresh_db()
        txn = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1], txn=txn)
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [2, 2], txn=txn)
        last_lsn = db.wal.last_lsn
        chain = db.wal.transaction_chain(txn.txn_id, last_lsn)
        assert [record.lsn for record in chain] == sorted(
            (record.lsn for record in chain), reverse=True
        )
        assert all(record.txn_id == txn.txn_id for record in chain)
        txn.commit()


class TestRetainedWindowEdges:
    def test_reads_at_exactly_first_retained_lsn(self):
        db = fresh_db()
        for k in range(1, 6):
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
        boundary = _truncating_checkpoint(db)
        assert boundary > 1
        # at the boundary: fine
        assert db.wal.record_at(boundary).lsn == boundary
        assert next(iter(db.wal.records_from(boundary))).lsn == boundary
        # one below: refused
        with pytest.raises(ValueError):
            db.wal.record_at(boundary - 1)
        with pytest.raises(ValueError):
            list(db.wal.records_from(boundary - 1))

    def test_discard_from_below_boundary_raises(self):
        db = fresh_db()
        for k in range(1, 6):
            db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k])
        boundary = _truncating_checkpoint(db)
        with pytest.raises(ValueError, match="retained"):
            db.wal.discard_from(boundary - 1)
        # exactly at the boundary discards the whole retained window
        retained = db.wal.retained_records
        dropped = db.wal.discard_from(boundary)
        assert dropped == retained
        assert db.wal.retained_records == 0


class TestResetForRestore:
    def test_start_from_requires_pristine_log(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        with pytest.raises(ValueError, match="reset_for_restore"):
            db.wal.start_from(100)

    def test_reset_then_start_from_positions_the_sequence(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        db.wal.reset_for_restore()
        assert db.wal.retained_records == 0
        assert db.wal.in_flight_txns() == set()
        db.wal.start_from(50)
        assert db.wal.first_retained_lsn == 50
        assert db.wal.last_lsn == 49

    def test_reset_revives_a_dead_log(self):
        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        db.wal.kill()
        assert db.wal.is_dead
        db.wal.reset_for_restore()
        assert not db.wal.is_dead


class TestInDoubtTxns:
    def test_prepared_branch_is_in_doubt(self):
        db = fresh_db()
        txn = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1], txn=txn)
        db.prepare_commit(txn, gtid="g1")
        in_doubt = db.wal.in_doubt_txns()
        assert txn.txn_id in in_doubt
        assert db.wal.record_at(in_doubt[txn.txn_id]).kind is LogKind.PREPARE
        txn.commit()
        assert txn.txn_id not in db.wal.in_doubt_txns()

    def test_settled_loser_is_not_in_doubt(self):
        """Recovery undoes losers logically without logging ABORT, so
        the loser's chain stays in the WAL's open map forever -- but it
        must not read as in-doubt (its newest record is not PREPARE)
        and it no longer holds a live handle."""
        db = fresh_db()
        txn = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [9, 9], txn=txn)
        db.crash()
        db.recover()
        assert txn.txn_id in db.wal.in_flight_txns()   # the documented wart
        assert txn.txn_id not in db.wal.in_doubt_txns()
        assert txn.txn_id not in db.txns.active

    def test_dangling_prepare_survives_crash_as_in_doubt(self):
        db = fresh_db()
        txn = db.begin()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [7, 7], txn=txn)
        db.prepare_commit(txn, gtid="g7")
        db.crash()
        report = db.recover()
        assert txn.txn_id in report.in_doubt
        assert txn.txn_id in db.wal.in_doubt_txns()


class TestRepairRecord:
    def test_repair_record_contracts(self):
        import dataclasses

        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 1])
        lsn = db.wal.last_lsn
        good = db.wal.record_at(lsn)
        corrupted = db.wal.flip_bit(lsn)
        assert not corrupted.is_intact
        # a corrupt replacement is refused
        with pytest.raises(WalCorruptionError):
            db.wal.repair_record(corrupted)
        # an out-of-window replacement is refused
        displaced = dataclasses.replace(good, lsn=lsn + 100)
        with pytest.raises(ValueError, match="not retained"):
            db.wal.repair_record(displaced)
        # the verified copy heals in place
        db.wal.repair_record(good)
        assert db.wal.record_at(lsn).is_intact

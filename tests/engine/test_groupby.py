"""Tests for GROUP BY and the AVG aggregate."""

import pytest

from repro.engine.database import Database
from repro.engine.errors import SqlError
from repro.engine.types import Column, ColumnType, Schema


@pytest.fixture
def db():
    db = Database("groups")
    db.create_table(Schema(
        "SALES",
        (
            Column("S_ID", ColumnType.INT, nullable=False),
            Column("REGION", ColumnType.VARCHAR, length=8),
            Column("AMOUNT", ColumnType.DECIMAL),
        ),
        primary_key="S_ID",
    ))
    rows = [("E", 10.0), ("W", 20.0), ("E", 30.0), ("W", 40.0), ("E", 50.0), ("N", 5.0)]
    for s_id, (region, amount) in enumerate(rows, 1):
        db.execute("INSERT INTO sales (S_ID, REGION, AMOUNT) VALUES (?, ?, ?)",
                   [s_id, region, amount])
    return db


def test_group_by_with_count_sum(db):
    result = db.query(
        "SELECT REGION, COUNT(*), SUM(AMOUNT) FROM sales GROUP BY REGION"
    )
    assert result.rows == [("E", 3, 90.0), ("N", 1, 5.0), ("W", 2, 60.0)]
    assert result.columns == ("REGION", "COUNT(*)", "SUM(AMOUNT)")


def test_group_by_avg(db):
    result = db.query("SELECT REGION, AVG(AMOUNT) FROM sales GROUP BY REGION")
    assert dict(result.rows) == {"E": 30.0, "N": 5.0, "W": 30.0}


def test_avg_without_group(db):
    assert db.query("SELECT AVG(AMOUNT) FROM sales").scalar() == pytest.approx(155 / 6)


def test_avg_over_empty_is_null(db):
    assert db.query(
        "SELECT AVG(AMOUNT) FROM sales WHERE REGION = ?", ["X"]
    ).scalar() is None


def test_group_by_respects_where(db):
    result = db.query(
        "SELECT REGION, COUNT(*) FROM sales WHERE AMOUNT >= ? GROUP BY REGION",
        [20],
    )
    assert dict(result.rows) == {"E": 2, "W": 2}


def test_group_key_alone(db):
    result = db.query("SELECT REGION FROM sales GROUP BY REGION")
    assert result.rows == [("E",), ("N",), ("W",)]  # distinct, sorted


def test_min_max_per_group(db):
    result = db.query(
        "SELECT REGION, MIN(AMOUNT), MAX(AMOUNT) FROM sales GROUP BY REGION"
    )
    as_map = {row[0]: row[1:] for row in result.rows}
    assert as_map["E"] == (10.0, 50.0)


def test_non_grouped_plain_column_rejected(db):
    with pytest.raises(SqlError):
        db.query("SELECT S_ID, COUNT(*) FROM sales GROUP BY REGION")


def test_star_with_group_by_rejected(db):
    with pytest.raises(SqlError):
        db.query("SELECT * FROM sales GROUP BY REGION")


def test_avg_distinct_rejected(db):
    with pytest.raises(SqlError):
        db.query("SELECT AVG(DISTINCT AMOUNT) FROM sales")


def test_null_group_key(db):
    db.execute("INSERT INTO sales (S_ID, REGION, AMOUNT) VALUES (?, NULL, ?)", [99, 1.0])
    result = db.query("SELECT REGION, COUNT(*) FROM sales GROUP BY REGION")
    # NULL group sorts last and is preserved
    assert result.rows[-1][0] is None
    assert result.rows[-1][1] == 1


def test_group_by_parses_in_explain(db):
    plan = db.explain("SELECT REGION, COUNT(*) FROM sales GROUP BY REGION")
    assert "table scan" in plan

"""Tests for access-path planning (range scans, EXPLAIN)."""

import pytest

from repro.engine.database import Database
from repro.engine.errors import SchemaError
from repro.engine.types import Column, ColumnType, Schema


@pytest.fixture
def db():
    db = Database("planner")
    db.create_table(Schema(
        "EVENTS",
        (
            Column("E_ID", ColumnType.INT, nullable=False, autoincrement=True),
            Column("E_TS", ColumnType.INT, nullable=False),
            Column("E_KIND", ColumnType.VARCHAR, length=8, default="x"),
        ),
        primary_key="E_ID",
    ))
    db.create_index("EVENTS", "events_ts", ("E_TS",), ordered=True)
    db.create_index("EVENTS", "events_kind", ("E_KIND",))
    for e_id in range(1, 101):
        db.execute(
            "INSERT INTO events (E_ID, E_TS, E_KIND) VALUES (?, ?, ?)",
            [e_id, e_id * 10, "a" if e_id % 2 else "b"],
        )
    return db


def plan_of(db, sql, params=()):
    return db.explain(sql, params)


def test_pk_point_plan(db):
    plan = plan_of(db, "SELECT E_TS FROM events WHERE E_ID = ?", [5])
    assert "primary-key lookup" in plan


def test_index_eq_plan(db):
    plan = plan_of(db, "SELECT E_ID FROM events WHERE E_KIND = ?", ["a"])
    assert "index lookup via events_kind" in plan


def test_pk_range_plan(db):
    plan = plan_of(db, "SELECT E_ID FROM events WHERE E_ID >= ? AND E_ID <= ?", [10, 20])
    assert "index range scan via EVENTS_pkey" in plan


def test_secondary_ordered_range_plan(db):
    plan = plan_of(db, "SELECT E_ID FROM events WHERE E_TS > ? AND E_TS < ?", [100, 300])
    assert "index range scan via events_ts" in plan


def test_unindexed_predicate_scans(db):
    # E_KIND has only a hash index: range predicates on it cannot use it
    plan = plan_of(db, "SELECT E_ID FROM events WHERE E_KIND > ?", ["a"])
    assert plan == "full table scan"


def test_explain_includes_sort(db):
    plan = plan_of(db, "SELECT E_ID FROM events WHERE E_KIND = ? ORDER BY E_TS DESC LIMIT 3", ["a"])
    assert "sort by E_TS" in plan and "limit 3" in plan


def test_explain_insert(db):
    assert plan_of(db, "INSERT INTO events (E_TS) VALUES (?)", [1]) == \
        "insert into EVENTS"


def test_range_results_match_scan(db):
    ranged = db.query(
        "SELECT E_ID FROM events WHERE E_ID >= ? AND E_ID < ?", [10, 20]
    ).rows
    assert sorted(row[0] for row in ranged) == list(range(10, 20))


def test_half_open_ranges(db):
    low_only = db.query("SELECT E_ID FROM events WHERE E_ID > ?", [95]).rows
    assert sorted(r[0] for r in low_only) == [96, 97, 98, 99, 100]
    high_only = db.query("SELECT E_ID FROM events WHERE E_ID <= ?", [3]).rows
    assert sorted(r[0] for r in high_only) == [1, 2, 3]


def test_tightest_bounds_win(db):
    rows = db.query(
        "SELECT E_ID FROM events WHERE E_ID >= ? AND E_ID >= ? AND E_ID < ?",
        [5, 8, 11],
    ).rows
    assert sorted(r[0] for r in rows) == [8, 9, 10]


def test_range_with_residual_filter(db):
    rows = db.query(
        "SELECT E_ID FROM events WHERE E_ID >= ? AND E_ID <= ? AND E_KIND = ?",
        [1, 10, "b"],
    ).rows
    assert sorted(r[0] for r in rows) == [2, 4, 6, 8, 10]


def test_secondary_range_results(db):
    rows = db.query(
        "SELECT E_TS FROM events WHERE E_TS >= ? AND E_TS <= ?", [100, 150]
    ).rows
    assert sorted(r[0] for r in rows) == [100, 110, 120, 130, 140, 150]


def test_equality_beats_range(db):
    # when both an equality index and a range apply, the point path wins
    plan = plan_of(
        db, "SELECT E_ID FROM events WHERE E_KIND = ? AND E_ID > ?", ["a", 50]
    )
    assert "index lookup via events_kind" in plan


def test_range_update_and_delete(db):
    updated = db.execute(
        "UPDATE events SET E_KIND = ? WHERE E_ID >= ? AND E_ID <= ?",
        ["z", 1, 5],
    ).rowcount
    assert updated == 5
    deleted = db.execute(
        "DELETE FROM events WHERE E_ID > ?", [90]
    ).rowcount
    assert deleted == 10
    assert db.query("SELECT COUNT(*) FROM events").scalar() == 90


def test_index_for_name_unknown(db):
    with pytest.raises(SchemaError):
        db.table("EVENTS").index_for_name("missing")


def test_range_scan_touches_fewer_pages_than_full_scan():
    """The planner's point: bounded ranges avoid whole-table page reads."""
    from repro.engine.buffer import BufferPool
    from repro.engine.page import PAGE_SIZE_BYTES

    wide_db = Database("wide")
    wide_db.create_table(Schema(
        "BLOBS",
        (
            Column("B_ID", ColumnType.INT, nullable=False),
            # wide payload: only a handful of rows fit per page
            Column("B_DATA", ColumnType.VARCHAR, length=2000, default=""),
        ),
        primary_key="B_ID",
    ))
    for b_id in range(1, 101):
        wide_db.execute(
            "INSERT INTO blobs (B_ID, B_DATA) VALUES (?, ?)", [b_id, "x" * 100]
        )
    table = wide_db.table("BLOBS")
    assert table.page_count > 10  # the premise: rows span many pages

    pool = BufferPool(512 * PAGE_SIZE_BYTES)
    table.attach_buffer(pool)
    pool.reset_stats()
    wide_db.query("SELECT B_ID FROM blobs WHERE B_ID >= ? AND B_ID <= ?", [1, 3])
    ranged_accesses = pool.stats.accesses
    pool.reset_stats()
    wide_db.query("SELECT B_ID FROM blobs WHERE B_DATA <> ?", ["nope"])
    scan_accesses = pool.stats.accesses
    assert ranged_accesses < scan_accesses
    table.attach_buffer(None)

"""Tests for the write-ahead log."""

import pytest

from repro.engine.wal import DATA_KINDS, LogKind, WriteAheadLog


def test_lsns_are_monotone_from_one():
    wal = WriteAheadLog()
    records = [wal.append(1, LogKind.BEGIN), wal.append(1, LogKind.COMMIT)]
    assert [record.lsn for record in records] == [1, 2]
    assert wal.last_lsn == 2


def test_prev_lsn_links_within_transaction():
    wal = WriteAheadLog()
    begin = wal.append(5, LogKind.BEGIN)
    insert = wal.append(5, LogKind.INSERT, table="T", key=1, after=(1,))
    update = wal.append(5, LogKind.UPDATE, table="T", key=1, before=(1,), after=(2,))
    assert begin.prev_lsn == 0
    assert insert.prev_lsn == begin.lsn
    assert update.prev_lsn == insert.lsn


def test_prev_lsn_does_not_cross_transactions():
    wal = WriteAheadLog()
    wal.append(1, LogKind.BEGIN)
    other = wal.append(2, LogKind.BEGIN)
    mine = wal.append(1, LogKind.INSERT, table="T", key=1, after=(1,))
    assert other.prev_lsn == 0
    assert mine.prev_lsn == 1


def test_transaction_chain_newest_first():
    wal = WriteAheadLog()
    wal.append(1, LogKind.BEGIN)
    a = wal.append(1, LogKind.INSERT, table="T", key=1, after=(1,))
    wal.append(2, LogKind.INSERT, table="T", key=9, after=(9,))
    b = wal.append(1, LogKind.DELETE, table="T", key=1, before=(1,))
    chain = wal.transaction_chain(1, b.lsn)
    assert [record.lsn for record in chain] == [b.lsn, a.lsn, 1]


def test_records_from_filters_by_lsn():
    wal = WriteAheadLog()
    for i in range(5):
        wal.append(1, LogKind.INSERT, table="T", key=i, after=(i,))
    assert [record.lsn for record in wal.records_from(3)] == [3, 4, 5]


def test_truncate_drops_old_records():
    wal = WriteAheadLog()
    for i in range(6):
        wal.append(1, LogKind.INSERT, table="T", key=i, after=(i,))
    dropped = wal.truncate(4)
    assert dropped == 3
    assert wal.retained_records == 3
    with pytest.raises(ValueError):
        list(wal.records_from(2))
    assert [record.lsn for record in wal.records_from(4)] == [4, 5, 6]


def test_truncate_is_idempotent():
    wal = WriteAheadLog()
    wal.append(1, LogKind.BEGIN)
    wal.truncate(2)
    assert wal.truncate(2) == 0


def test_record_at_bounds():
    wal = WriteAheadLog()
    wal.append(1, LogKind.BEGIN)
    assert wal.record_at(1).kind is LogKind.BEGIN
    with pytest.raises(ValueError):
        wal.record_at(2)
    with pytest.raises(ValueError):
        wal.record_at(0)


def test_byte_size_grows_with_images():
    wal = WriteAheadLog()
    small = wal.append(1, LogKind.BEGIN)
    big = wal.append(1, LogKind.UPDATE, table="T", key=1,
                     before=(1, "a", 2.0), after=(1, "b", 3.0))
    assert big.byte_size() > small.byte_size()


def test_bytes_between():
    wal = WriteAheadLog()
    wal.append(1, LogKind.BEGIN)
    r2 = wal.append(1, LogKind.INSERT, table="T", key=1, after=(1,))
    r3 = wal.append(1, LogKind.INSERT, table="T", key=2, after=(2,))
    assert wal.bytes_between(1, 3) == r2.byte_size() + r3.byte_size()
    assert wal.bytes_between(3, 3) == 0


def test_data_kinds_constant():
    assert LogKind.INSERT in DATA_KINDS
    assert LogKind.COMMIT not in DATA_KINDS


def test_max_txn_id_and_first_retained():
    wal = WriteAheadLog()
    assert wal.max_txn_id() == 0
    wal.append(3, LogKind.BEGIN)
    wal.append(7, LogKind.INSERT, table="T", key=1, after=(1,))
    wal.append(5, LogKind.COMMIT)
    assert wal.max_txn_id() == 7
    assert wal.first_retained_lsn == 1
    wal.truncate(3)
    assert wal.first_retained_lsn == 3

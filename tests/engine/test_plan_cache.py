"""Regression tests for the bounded LRU plan cache.

Pre-fix, ``Database.prepare`` cached every distinct SQL string forever:
ad-hoc statements with inlined literals grew the cache without bound.
The cache is now a bounded LRU with hit/miss/evict accounting.
"""

import pytest

from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema
from repro.obs import Observer


def fresh_db(**kwargs):
    db = Database("plan-cache", **kwargs)
    db.create_table(Schema(
        "KV",
        (
            Column("K", ColumnType.INT, nullable=False),
            Column("V", ColumnType.INT, default=0),
        ),
        primary_key="K",
    ))
    return db


class TestBoundedLru:
    def test_repeat_statement_hits_the_cache(self):
        db = fresh_db()
        first = db.prepare("SELECT * FROM kv WHERE K = ?")
        second = db.prepare("SELECT * FROM kv WHERE K = ?")
        assert first is second
        assert db.plan_cache_hits == 1

    def test_cache_never_exceeds_its_bound(self):
        db = fresh_db(plan_cache_size=8)
        # pre-fix: one cache entry per distinct literal, unbounded
        for k in range(50):
            db.query(f"SELECT V FROM kv WHERE K = {k}")
        assert len(db._prepared) <= 8
        assert db.plan_cache_evictions >= 50 - 8

    def test_evicts_least_recently_used_first(self):
        db = fresh_db(plan_cache_size=2)
        db.prepare("SELECT V FROM kv WHERE K = 1")
        db.prepare("SELECT V FROM kv WHERE K = 2")
        db.prepare("SELECT V FROM kv WHERE K = 1")  # refresh 1
        db.prepare("SELECT V FROM kv WHERE K = 3")  # evicts 2, not 1
        assert "SELECT V FROM kv WHERE K = 1" in db._prepared
        assert "SELECT V FROM kv WHERE K = 2" not in db._prepared

    def test_hit_refreshes_recency(self):
        db = fresh_db(plan_cache_size=2)
        db.prepare("SELECT V FROM kv WHERE K = 1")
        db.prepare("SELECT V FROM kv WHERE K = 2")
        kept = db.prepare("SELECT V FROM kv WHERE K = 1")
        db.prepare("SELECT V FROM kv WHERE K = 3")
        assert db.prepare("SELECT V FROM kv WHERE K = 1") is kept

    def test_evicted_statement_reparses_as_a_miss(self):
        db = fresh_db(plan_cache_size=1)
        first = db.prepare("SELECT V FROM kv WHERE K = 1")
        db.prepare("SELECT V FROM kv WHERE K = 2")
        misses = db.plan_cache_misses
        again = db.prepare("SELECT V FROM kv WHERE K = 1")
        assert again is not first
        assert db.plan_cache_misses == misses + 1

    def test_counters_account_for_every_prepare(self):
        db = fresh_db(plan_cache_size=4)
        # cyclic scan over 6 statements with room for 4: every revisit
        # arrives just after its eviction, so all 10 prepares miss
        for k in range(10):
            db.prepare(f"SELECT V FROM kv WHERE K = {k % 6}")
        assert db.plan_cache_hits + db.plan_cache_misses == 10
        assert db.plan_cache_misses == 10
        assert db.plan_cache_evictions == 6

    def test_size_below_one_rejected(self):
        with pytest.raises(ValueError):
            Database("bad", plan_cache_size=0)


class TestPlanCacheObservability:
    def test_obs_counters_track_hit_miss_evict(self):
        obs = Observer()
        db = fresh_db(plan_cache_size=2, observer=obs)
        db.prepare("SELECT V FROM kv WHERE K = 1")
        db.prepare("SELECT V FROM kv WHERE K = 1")
        db.prepare("SELECT V FROM kv WHERE K = 2")
        db.prepare("SELECT V FROM kv WHERE K = 3")
        counters = obs.metrics.counters
        assert counters["engine.sql.plan_cache.hit"].value == 1
        assert counters["engine.sql.plan_cache.miss"].value == 3
        assert counters["engine.sql.plan_cache.evict"].value == 1


class TestCompiledPlanAliasing:
    """One cache entry serves every isolation level and parameter shape.

    The cache is keyed by SQL text.  That is only sound because nothing
    execution-specific leaks into the compiled closure: the snapshot-vs-
    locking read path is chosen from the *transaction* at execute time,
    and the parameter count is a function of the text itself (a mismatch
    is an error, not a different plan).  These tests prove both.
    """

    def test_one_entry_serves_all_isolation_levels(self):
        from repro.engine.txn import IsolationLevel

        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
        sql = "SELECT V FROM kv WHERE K = ?"
        db.query(sql, [1])  # populate the cache under autocommit
        db.prepare("UPDATE kv SET V = ? WHERE K = ?")  # pre-warm the writer
        misses_after_first = db.plan_cache_misses

        snap = db.begin(isolation=IsolationLevel.SNAPSHOT)
        assert db.execute(sql, [1], txn=snap).rows == [(10,)]

        # A concurrent commit the snapshot must not see -- but a
        # READ_COMMITTED reader using the SAME cached plan must.
        db.execute("UPDATE kv SET V = ? WHERE K = ?", [20, 1])
        rc = db.begin(isolation=IsolationLevel.READ_COMMITTED)
        assert db.execute(sql, [1], txn=rc).rows == [(20,)]
        assert db.execute(sql, [1], txn=snap).rows == [(10,)]
        rc.commit()
        snap.commit()

        ser = db.begin(isolation=IsolationLevel.SERIALIZABLE)
        assert db.execute(sql, [1], txn=ser).rows == [(20,)]
        ser.commit()

        # every execution after the first was a cache hit
        assert db.plan_cache_misses == misses_after_first

    def test_param_count_is_checked_per_execution(self):
        from repro.engine.errors import SqlError

        db = fresh_db()
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [1, 10])
        sql = "SELECT V FROM kv WHERE K = ?"
        assert db.query(sql, [1]).rows == [(10,)]
        # The cached plan must not absorb a differently-shaped call.
        with pytest.raises(SqlError, match="parameter"):
            db.query(sql, [1, 2])
        with pytest.raises(SqlError, match="parameter"):
            db.query(sql, [])
        # and the entry still works afterwards
        assert db.query(sql, [1]).rows == [(10,)]

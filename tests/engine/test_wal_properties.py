"""Property tests on WAL invariants under appends and truncations."""

from hypothesis import given, settings, strategies as st

from repro.engine.wal import DATA_KINDS, LogKind, WriteAheadLog

operation = st.one_of(
    st.tuples(st.just("append"), st.integers(min_value=1, max_value=5),
              st.sampled_from(list(LogKind))),
    st.tuples(st.just("truncate"), st.integers(min_value=1, max_value=80),
              st.none()),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(operation, max_size=60))
def test_property_wal_bookkeeping(ops):
    wal = WriteAheadLog()
    shadow = {}  # lsn -> (txn_id, kind)
    for op, arg, kind in ops:
        if op == "append":
            record = wal.append(arg, kind, table="T" if kind in DATA_KINDS else None,
                                key=1, after=(1,) if kind is LogKind.INSERT else None,
                                before=(0,) if kind in (LogKind.UPDATE, LogKind.DELETE) else None)
            shadow[record.lsn] = (arg, kind)
            # LSNs strictly increase
            assert record.lsn == wal.last_lsn
        else:
            dropped = wal.truncate(arg)
            for lsn in list(shadow):
                if lsn < min(arg, wal.last_lsn + 1):
                    shadow.pop(lsn)
            assert dropped >= 0

    # retained records match the shadow exactly, in LSN order
    retained = list(wal.records_from(wal.first_retained_lsn))
    assert [r.lsn for r in retained] == sorted(shadow)
    for record in retained:
        txn_id, kind = shadow[record.lsn]
        assert record.txn_id == txn_id
        assert record.kind == kind
        assert wal.record_at(record.lsn) is record

    # max_txn_id consistent with retained content
    expected_max = max((txn for txn, _k in shadow.values()), default=0)
    assert wal.max_txn_id() == expected_max


@settings(max_examples=40, deadline=None)
@given(
    txns=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=30)
)
def test_property_prev_lsn_chains_partition_by_txn(txns):
    """Following prev_lsn from any record visits only that txn's records."""
    wal = WriteAheadLog()
    per_txn = {}
    for txn_id in txns:
        record = wal.append(txn_id, LogKind.INSERT, table="T", key=1, after=(1,))
        per_txn.setdefault(txn_id, []).append(record.lsn)
    for txn_id, lsns in per_txn.items():
        chain = wal.transaction_chain(txn_id, lsns[-1])
        assert [record.lsn for record in chain] == list(reversed(lsns))
        assert all(record.txn_id == txn_id for record in chain)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=1, max_value=40),
       cut=st.integers(min_value=1, max_value=50))
def test_property_truncate_then_bytes_between(n, cut):
    wal = WriteAheadLog()
    for i in range(n):
        wal.append(1, LogKind.INSERT, table="T", key=i, after=(i,))
    wal.truncate(cut)
    start = wal.first_retained_lsn
    if start <= wal.last_lsn:
        total = wal.bytes_between(start - 1, wal.last_lsn)
        per_record = wal.record_at(start).byte_size()
        assert total == per_record * (wal.last_lsn - start + 1)

"""Engine consistency under DES-interleaved transactions.

Workers run multi-statement transactions as simulation processes that
yield between statements, so transactions genuinely interleave and the
no-wait 2PL policy produces real conflicts and aborts.  The invariant:
money is conserved -- the sum of balances only changes by exactly the
committed transfers, regardless of interleaving and aborts.
"""


from repro.engine.database import Database
from repro.engine.errors import TransactionAborted
from repro.engine.types import Column, ColumnType, Schema
from repro.sim.events import Environment

ACCOUNTS = 10
INITIAL = 1000


def build_bank():
    db = Database("bank")
    db.create_table(Schema(
        "ACCOUNT",
        (Column("A_ID", ColumnType.INT, nullable=False),
         Column("BALANCE", ColumnType.INT, nullable=False)),
        primary_key="A_ID",
    ))
    for a_id in range(1, ACCOUNTS + 1):
        db.execute("INSERT INTO account (A_ID, BALANCE) VALUES (?, ?)",
                   [a_id, INITIAL])
    return db


def total_balance(db):
    return db.query("SELECT SUM(BALANCE) FROM account").scalar()


def run_interleaved(n_workers: int, transfers_per_worker: int, seed: int = 7):
    import random

    db = build_bank()
    env = Environment()
    stats = {"committed": 0, "aborted": 0}

    def worker(worker_id: int):
        rng = random.Random(seed + worker_id)
        for _ in range(transfers_per_worker):
            yield env.timeout(rng.uniform(0.001, 0.01))
            src = rng.randint(1, ACCOUNTS)
            dst = rng.randint(1, ACCOUNTS)
            if src == dst:
                continue
            amount = rng.randint(1, 50)
            txn = db.begin()
            try:
                db.execute(
                    "UPDATE account SET BALANCE = BALANCE - ? WHERE A_ID = ?",
                    [amount, src], txn=txn,
                )
                # yielding here is what makes transactions overlap
                yield env.timeout(rng.uniform(0.001, 0.005))
                db.execute(
                    "UPDATE account SET BALANCE = BALANCE + ? WHERE A_ID = ?",
                    [amount, dst], txn=txn,
                )
                txn.commit()
                stats["committed"] += 1
            except TransactionAborted:
                stats["aborted"] += 1
                # the no-wait policy already rolled the transaction back

    for worker_id in range(n_workers):
        env.process(worker(worker_id))
    env.run()
    return db, stats


def test_money_conserved_under_interleaving():
    db, stats = run_interleaved(n_workers=8, transfers_per_worker=40)
    assert total_balance(db) == ACCOUNTS * INITIAL
    assert stats["committed"] > 0


def test_conflicts_actually_happen():
    """With 8 workers on 10 hot accounts the no-wait policy must fire."""
    _db, stats = run_interleaved(n_workers=8, transfers_per_worker=40)
    assert stats["aborted"] > 0


def test_no_negative_side_effects_from_aborts():
    db, stats = run_interleaved(n_workers=6, transfers_per_worker=30)
    balances = [row[0] for row in db.query("SELECT BALANCE FROM account").rows]
    assert len(balances) == ACCOUNTS
    # every aborted transfer must have been fully undone: conservation
    # (checked above) plus no lock leakage:
    db.locks.sanity_check()
    assert db.locks.locks_held(999) == set()


def test_recovery_after_interleaved_run():
    db, _stats = run_interleaved(n_workers=4, transfers_per_worker=20)
    db.checkpoint()
    db.crash()
    db.recover()
    assert total_balance(db) == ACCOUNTS * INITIAL


def test_deterministic_interleaving():
    db1, stats1 = run_interleaved(n_workers=5, transfers_per_worker=25, seed=3)
    db2, stats2 = run_interleaved(n_workers=5, transfers_per_worker=25, seed=3)
    assert stats1 == stats2
    assert (db1.query("SELECT A_ID, BALANCE FROM account").rows
            == db2.query("SELECT A_ID, BALANCE FROM account").rows)

"""Unique-constraint enforcement across all mutation paths.

A failed insert/update must leave pages, indexes and the WAL exactly
as they were (an earlier version wrote the page before validating the
unique secondary index, corrupting state -- these tests pin the fix).
"""

import pytest

from repro.engine.database import Database
from repro.engine.errors import DuplicateKeyError
from repro.engine.types import Column, ColumnType, Schema


@pytest.fixture
def db():
    db = Database("uniq")
    db.create_table(Schema(
        "USERS",
        (
            Column("U_ID", ColumnType.INT, nullable=False, autoincrement=True),
            Column("EMAIL", ColumnType.VARCHAR, length=24, nullable=False),
            Column("NICK", ColumnType.VARCHAR, length=24, default=""),
        ),
        primary_key="U_ID",
    ))
    db.create_index("USERS", "users_email", ("EMAIL",), unique=True)
    db.execute("INSERT INTO users (U_ID, EMAIL, NICK) VALUES (?, ?, ?)", [1, "a@x", "a"])
    db.execute("INSERT INTO users (U_ID, EMAIL, NICK) VALUES (?, ?, ?)", [2, "b@x", "b"])
    return db


def state(db):
    return sorted(db.query("SELECT U_ID, EMAIL, NICK FROM users").rows)


def test_insert_duplicate_secondary_rejected_cleanly(db):
    before = state(db)
    wal_before = db.wal.last_lsn
    with pytest.raises(DuplicateKeyError):
        db.execute("INSERT INTO users (EMAIL) VALUES (?)", ["a@x"])
    assert state(db) == before
    # only BEGIN/ABORT of the autocommit wrapper hit the WAL -- no data record
    data_records = [
        r for r in db.wal.records_from(wal_before + 1)
        if r.table is not None
    ]
    assert data_records == []


def test_update_to_duplicate_secondary_rejected_cleanly(db):
    before = state(db)
    with pytest.raises(DuplicateKeyError):
        db.execute("UPDATE users SET EMAIL = ? WHERE U_ID = ?", ["a@x", 2])
    assert state(db) == before
    # the index still resolves both keys correctly
    assert db.query("SELECT U_ID FROM users WHERE EMAIL = ?", ["a@x"]).rows == [(1,)]
    assert db.query("SELECT U_ID FROM users WHERE EMAIL = ?", ["b@x"]).rows == [(2,)]


def test_self_update_keeps_same_unique_value(db):
    # updating other columns while keeping the unique value must pass
    db.execute("UPDATE users SET NICK = ? WHERE U_ID = ?", ["bb", 2])
    db.execute("UPDATE users SET EMAIL = ? WHERE U_ID = ?", ["b@x", 2])
    assert db.query("SELECT NICK FROM users WHERE U_ID = ?", [2]).scalar() == "bb"


def test_swap_requires_intermediate_value(db):
    """a<->b email swap must fail atomically at the first statement."""
    txn = db.begin()
    with pytest.raises(DuplicateKeyError):
        db.execute("UPDATE users SET EMAIL = ? WHERE U_ID = ?", ["b@x", 1], txn=txn)
    txn.rollback()
    assert state(db)[0][1] == "a@x"


def test_recovery_after_failed_unique_update(db):
    with pytest.raises(DuplicateKeyError):
        db.execute("UPDATE users SET EMAIL = ? WHERE U_ID = ?", ["a@x", 2])
    db.execute("INSERT INTO users (EMAIL) VALUES (?)", ["c@x"])
    expected = state(db)
    db.crash()
    db.recover()
    assert state(db) == expected


def test_unique_value_freed_by_delete(db):
    db.execute("DELETE FROM users WHERE U_ID = ?", [1])
    db.execute("INSERT INTO users (EMAIL) VALUES (?)", ["a@x"])  # reusable now
    assert db.query("SELECT COUNT(*) FROM users WHERE EMAIL = ?", ["a@x"]).scalar() == 1


def test_unique_value_freed_by_update(db):
    db.execute("UPDATE users SET EMAIL = ? WHERE U_ID = ?", ["a2@x", 1])
    db.execute("INSERT INTO users (EMAIL) VALUES (?)", ["a@x"])
    assert db.query("SELECT COUNT(*) FROM users").scalar() == 3


def test_multi_row_update_fails_atomically(db):
    """A statement touching several rows aborts wholly on a violation."""
    db.execute("INSERT INTO users (U_ID, EMAIL, NICK) VALUES (?, ?, ?)",
               [3, "c@x", "b"])
    before = state(db)
    with pytest.raises(DuplicateKeyError):
        # both NICK='b' rows would get EMAIL 'z@x' -> second must collide
        db.execute("UPDATE users SET EMAIL = ? WHERE NICK = ?", ["z@x", "b"])
    assert state(db) == before

"""Tests for heap tables and index maintenance."""

import pytest

from repro.engine.buffer import BufferPool
from repro.engine.errors import DuplicateKeyError, SchemaError
from repro.engine.page import PAGE_SIZE_BYTES
from repro.engine.table import Table
from repro.engine.types import Column, ColumnType, Schema


def make_table(buffer_pool=None):
    schema = Schema(
        "T",
        (
            Column("ID", ColumnType.INT, nullable=False, autoincrement=True),
            Column("K", ColumnType.INT, default=0),
            Column("NAME", ColumnType.VARCHAR, length=16, default=""),
        ),
        primary_key="ID",
    )
    return Table(schema, buffer_pool)


def test_insert_and_read_by_key():
    table = make_table()
    table.insert_row((1, 10, "a"))
    assert table.read_by_key(1) == (1, 10, "a")
    assert table.read_by_key(99) is None
    assert table.row_count == 1


def test_duplicate_primary_key_rejected():
    table = make_table()
    table.insert_row((1, 10, "a"))
    with pytest.raises(DuplicateKeyError):
        table.insert_row((1, 20, "b"))


def test_update_row_and_before_image():
    table = make_table()
    rid = table.insert_row((1, 10, "a"))
    before = table.update_row(rid, (1, 20, "b"))
    assert before == (1, 10, "a")
    assert table.read_by_key(1) == (1, 20, "b")


def test_update_changing_pk_moves_index_entry():
    table = make_table()
    rid = table.insert_row((1, 10, "a"))
    table.update_row(rid, (2, 10, "a"))
    assert table.read_by_key(1) is None
    assert table.read_by_key(2) == (2, 10, "a")


def test_update_to_existing_pk_rejected():
    table = make_table()
    table.insert_row((1, 0, ""))
    rid = table.insert_row((2, 0, ""))
    with pytest.raises(DuplicateKeyError):
        table.update_row(rid, (1, 0, ""))
    # nothing changed
    assert table.read_by_key(2) == (2, 0, "")


def test_delete_row_updates_indexes():
    table = make_table()
    rid = table.insert_row((1, 10, "a"))
    before = table.delete_row(rid)
    assert before == (1, 10, "a")
    assert table.read_by_key(1) is None
    assert table.row_count == 0


def test_secondary_index_backfill_and_maintenance():
    table = make_table()
    table.insert_row((1, 7, "a"))
    table.insert_row((2, 7, "b"))
    table.create_index("t_k", ("K",))
    index = table.secondary_indexes["t_k"]
    assert len(index.lookup(7)) == 2
    rid = table.find_by_key(1)
    table.update_row(rid, (1, 8, "a"))
    assert len(index.lookup(7)) == 1
    assert len(index.lookup(8)) == 1
    table.delete_row(table.find_by_key(2))
    assert index.lookup(7) == []


def test_duplicate_index_name_rejected():
    table = make_table()
    table.create_index("t_k", ("K",))
    with pytest.raises(SchemaError):
        table.create_index("t_k", ("K",))


def test_index_on_unknown_column_rejected():
    table = make_table()
    with pytest.raises(SchemaError):
        table.create_index("bad", ("NOPE",))


def test_composite_index_key():
    table = make_table()
    table.create_index("t_kn", ("K", "NAME"), unique=True)
    table.insert_row((1, 5, "x"))
    index = table.secondary_indexes["t_kn"]
    assert index.lookup((5, "x"))
    with pytest.raises(DuplicateKeyError):
        table.insert_row((2, 5, "x"))


def test_autoincrement_tracks_explicit_keys():
    table = make_table()
    table.insert_row((10, 0, ""))
    assert table.next_autoincrement() == 11


def test_scan_skips_deleted():
    table = make_table()
    rids = [table.insert_row((i, 0, "")) for i in range(1, 6)]
    table.delete_row(rids[2])
    keys = [row[0] for _rid, row in table.scan()]
    assert keys == [1, 2, 4, 5]


def test_rows_span_multiple_pages():
    table = make_table()
    per_page = PAGE_SIZE_BYTES // table.schema.row_byte_size()
    for i in range(1, per_page * 2 + 2):
        table.insert_row((i, 0, ""))
    assert table.page_count >= 3
    assert table.row_count == per_page * 2 + 1


def test_buffer_pool_sees_accesses():
    pool = BufferPool(size_bytes=64 * PAGE_SIZE_BYTES)
    table = make_table(pool)
    table.insert_row((1, 0, ""))
    assert pool.stats.accesses >= 1
    before = pool.stats.accesses
    table.read_by_key(1)
    assert pool.stats.accesses == before + 1


def test_snapshot_restore_roundtrip():
    table = make_table()
    for i in range(1, 4):
        table.insert_row((i, i * 10, f"n{i}"))
    table.create_index("t_k", ("K",))
    snapshot = table.snapshot()
    table.delete_row(table.find_by_key(2))
    table.insert_row((9, 90, "n9"))
    table.restore_snapshot(snapshot)
    assert table.row_count == 3
    assert table.read_by_key(2) == (2, 20, "n2")
    assert table.read_by_key(9) is None
    # indexes rebuilt
    assert table.secondary_indexes["t_k"].lookup(20)


def test_restore_row_after_delete():
    table = make_table()
    rid = table.insert_row((1, 10, "a"))
    before = table.delete_row(rid)
    table.restore_row(rid, before)
    assert table.read_by_key(1) == (1, 10, "a")

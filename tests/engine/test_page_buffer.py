"""Tests for slotted pages and the LRU buffer pool."""

import pytest

from repro.engine.buffer import BufferPool
from repro.engine.errors import EngineError
from repro.engine.page import PAGE_SIZE_BYTES, Page, rows_per_page


class TestPage:
    def test_insert_read_roundtrip(self):
        page = Page(0, capacity=4)
        slot = page.insert((1, "a"))
        assert page.read(slot) == (1, "a")
        assert page.live_rows == 1

    def test_delete_frees_slot_and_reuse(self):
        page = Page(0, capacity=2)
        slot_a = page.insert(("a",))
        page.insert(("b",))
        assert page.is_full
        page.delete(slot_a)
        assert not page.is_full
        slot_c = page.insert(("c",))
        assert slot_c == slot_a  # freed slot is reused

    def test_read_deleted_raises(self):
        page = Page(0, capacity=2)
        slot = page.insert(("a",))
        page.delete(slot)
        with pytest.raises(EngineError):
            page.read(slot)

    def test_double_delete_raises(self):
        page = Page(0, capacity=2)
        slot = page.insert(("a",))
        page.delete(slot)
        with pytest.raises(EngineError):
            page.delete(slot)

    def test_insert_into_full_page_raises(self):
        page = Page(0, capacity=1)
        page.insert(("a",))
        with pytest.raises(EngineError):
            page.insert(("b",))

    def test_restore_puts_row_back(self):
        page = Page(0, capacity=2)
        slot = page.insert(("a",))
        page.delete(slot)
        page.restore(slot, ("a2",))
        assert page.read(slot) == ("a2",)

    def test_restore_occupied_slot_raises(self):
        page = Page(0, capacity=2)
        slot = page.insert(("a",))
        with pytest.raises(EngineError):
            page.restore(slot, ("b",))

    def test_rows_iterates_live_only(self):
        page = Page(0, capacity=3)
        page.insert(("a",))
        slot_b = page.insert(("b",))
        page.insert(("c",))
        page.delete(slot_b)
        assert [row for _slot, row in page.rows()] == [("a",), ("c",)]

    def test_clone_is_independent(self):
        page = Page(0, capacity=2)
        slot = page.insert(("a",))
        clone = page.clone()
        page.write(slot, ("changed",))
        assert clone.read(slot) == ("a",)

    def test_rows_per_page(self):
        assert rows_per_page(100) == PAGE_SIZE_BYTES // 100
        assert rows_per_page(PAGE_SIZE_BYTES * 10) == 1  # never zero
        with pytest.raises(EngineError):
            rows_per_page(0)


class TestBufferPool:
    def test_first_access_misses_then_hits(self):
        pool = BufferPool(size_bytes=10 * PAGE_SIZE_BYTES)
        assert pool.access("t", 0) is False
        assert pool.access("t", 0) is True
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(size_bytes=2 * PAGE_SIZE_BYTES)
        pool.access("t", 0)
        pool.access("t", 1)
        pool.access("t", 0)      # page 0 is now most recent
        pool.access("t", 2)      # evicts page 1 (LRU)
        assert pool.is_resident("t", 0)
        assert not pool.is_resident("t", 1)
        assert pool.is_resident("t", 2)

    def test_dirty_eviction_counts_writeback(self):
        pool = BufferPool(size_bytes=1 * PAGE_SIZE_BYTES)
        pool.access("t", 0, dirty=True)
        pool.access("t", 1)
        assert pool.stats.dirty_writebacks == 1
        assert pool.dirty_pages == 0

    def test_flush_writes_all_dirty(self):
        pool = BufferPool(size_bytes=8 * PAGE_SIZE_BYTES)
        for page_no in range(4):
            pool.access("t", page_no, dirty=True)
        pool.access("t", 9)  # clean
        assert pool.flush() == 4
        assert pool.dirty_pages == 0
        assert pool.flush() == 0

    def test_dirty_flag_sticks_until_flush(self):
        pool = BufferPool(size_bytes=4 * PAGE_SIZE_BYTES)
        pool.access("t", 0, dirty=True)
        pool.access("t", 0, dirty=False)  # clean re-access keeps it dirty
        assert pool.dirty_pages == 1

    def test_resize_shrink_evicts(self):
        pool = BufferPool(size_bytes=4 * PAGE_SIZE_BYTES)
        for page_no in range(4):
            pool.access("t", page_no)
        pool.resize(2 * PAGE_SIZE_BYTES)
        assert pool.resident_pages == 2
        assert pool.is_resident("t", 3)

    def test_invalidate_drops_without_writeback(self):
        pool = BufferPool(size_bytes=4 * PAGE_SIZE_BYTES)
        pool.access("t", 0, dirty=True)
        pool.invalidate("t", 0)
        assert pool.stats.dirty_writebacks == 0
        assert not pool.is_resident("t", 0)
        assert pool.dirty_pages == 0

    def test_clear_models_cold_restart(self):
        pool = BufferPool(size_bytes=4 * PAGE_SIZE_BYTES)
        pool.access("t", 0)
        pool.clear()
        assert pool.resident_pages == 0
        assert pool.access("t", 0) is False

    def test_hit_ratio(self):
        pool = BufferPool(size_bytes=4 * PAGE_SIZE_BYTES)
        assert pool.stats.hit_ratio == 1.0  # vacuous
        pool.access("t", 0)
        pool.access("t", 0)
        pool.access("t", 0)
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)

    def test_tables_do_not_collide(self):
        pool = BufferPool(size_bytes=4 * PAGE_SIZE_BYTES)
        pool.access("a", 0)
        assert pool.access("b", 0) is False

    def test_invalid_sizes_rejected(self):
        with pytest.raises(EngineError):
            BufferPool(0)
        pool = BufferPool(PAGE_SIZE_BYTES)
        with pytest.raises(EngineError):
            pool.resize(0)

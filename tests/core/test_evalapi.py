"""Tests for the unified evaluator API: registry, outcomes, legacy wrappers."""

import json

import pytest

from repro.core.config import BenchConfig
from repro.core.evalapi import (
    EvalOption,
    EvalOutcome,
    EvaluatorSpec,
    evaluator_names,
    evaluator_specs,
    get_evaluator,
)
from repro.core.cli import build_parser, main
from repro.core.export import outcome_to_csv, outcome_to_json
from repro.core.report import outcome_table
from repro.core.runner import CloudyBench


@pytest.fixture(scope="module")
def bench():
    config = BenchConfig.quick()
    config.architectures = ["aws_rds", "cdb3"]
    config.measure_window_s = 300.0
    config.lag_transactions = 40
    config.lag_concurrency = 4
    return CloudyBench(config)


class TestRegistry:
    def test_registry_covers_the_paper_evaluations(self):
        names = evaluator_names()
        assert names == tuple(sorted(names))
        for expected in (
            "throughput", "pscore", "elasticity", "multitenancy",
            "failover", "lagtime", "chaos", "oltp", "overall",
        ):
            assert expected in names

    def test_specs_are_complete(self):
        for spec in evaluator_specs():
            assert isinstance(spec, EvaluatorSpec)
            assert spec.title
            assert spec.summary
            assert callable(spec.runner)

    def test_unknown_evaluator_raises(self):
        with pytest.raises(KeyError):
            get_evaluator("no-such-eval")

    def test_validate_fills_defaults(self):
        spec = get_evaluator("overall")
        opts = spec.validate({})
        assert opts == {"duration_s": 300.0}

    def test_validate_rejects_unknown_option(self):
        spec = get_evaluator("pscore")
        with pytest.raises(TypeError):
            spec.validate({"bogus": 1})

    def test_run_rejects_unknown_option(self, bench):
        with pytest.raises(TypeError):
            bench.run("pscore", bogus=1)


class TestOutcomes:
    def test_every_evaluator_returns_an_outcome(self, bench):
        for name in ("throughput", "pscore", "multitenancy", "failover"):
            outcome = bench.run(name)
            assert isinstance(outcome, EvalOutcome)
            assert outcome.name == name
            assert outcome.title
            assert outcome.headers
            assert outcome.rows
            assert all(len(row) == len(outcome.headers) for row in outcome.rows)
            assert outcome.payload is not None

    def test_outcome_carries_obs_snapshot(self, bench):
        outcome = bench.run("pscore")
        assert isinstance(outcome.obs, dict)

    def test_overall_outcome_scores(self, bench):
        outcome = bench.run("overall")
        assert set(outcome.scores) >= {
            "o.aws_rds", "o.cdb3", "o_star.aws_rds", "o_star.cdb3",
        }
        assert all(value > 0 for value in outcome.scores.values())

    def test_option_changes_the_result(self, bench):
        one = bench.run("pscore", n_ro_nodes=1)
        three = bench.run("pscore", n_ro_nodes=3)
        assert one.rows != three.rows

    def test_to_dict_roundtrips_through_json(self, bench):
        outcome = bench.run("failover")
        data = json.loads(outcome_to_json(outcome))
        assert data["name"] == "failover"
        assert data["headers"] == list(outcome.headers)
        assert len(data["rows"]) == len(outcome.rows)
        assert data["scores"]

    def test_outcome_to_csv(self, bench, tmp_path):
        outcome = bench.run("pscore")
        out = tmp_path / "pscore.csv"
        with out.open("w", newline="") as handle:
            written = outcome_to_csv(outcome, handle)
        assert written == len(outcome.rows)
        lines = out.read_text().strip().splitlines()
        assert lines[0].split(",")[0] == outcome.headers[0]
        assert len(lines) == len(outcome.rows) + 1

    def test_outcome_table_renders(self, bench, capsys):
        outcome_table(bench.run("multitenancy")).print()
        printed = capsys.readouterr().out
        assert "Multi-tenancy" in printed


class TestLegacyWrappers:
    """The old ``run_*`` shims still delegate, but warn on every call."""

    def test_throughput_shape(self, bench):
        with pytest.deprecated_call():
            data = bench.run_throughput()
        assert isinstance(data, dict)
        assert ("aws_rds", 1, "RO", 50) in data
        assert data is bench.run("throughput").payload

    def test_pscore_shape(self, bench):
        with pytest.deprecated_call():
            rows = bench.run_pscore()
        assert [row.arch_name for row in rows] == ["aws_rds", "cdb3"]

    def test_elasticity_cache_identity(self, bench):
        with pytest.deprecated_call():
            first = bench.run_elasticity()
        with pytest.deprecated_call():
            second = bench.run_elasticity()
        assert first is second
        assert first is bench.run("elasticity").payload

    def test_failover_shape(self, bench):
        with pytest.deprecated_call():
            results = bench.run_failover()
        assert set(results) == {"aws_rds", "cdb3"}

    def test_overall_wrapper(self, bench):
        with pytest.deprecated_call():
            scores = bench.overall()
        assert set(scores) == {"aws_rds", "cdb3"}

    def test_warning_names_the_replacement(self, bench):
        with pytest.warns(DeprecationWarning, match=r'run\("throughput"\)'):
            bench.run_throughput()

    def test_registry_api_does_not_warn(self, bench, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            bench.run("throughput")
            bench.run("pscore")


class TestCli:
    def test_parser_accepts_registry_names_and_list(self):
        parser = build_parser()
        for name in (*evaluator_names(), "report", "list"):
            assert parser.parse_args(["--eval", name]).evaluation == name
        with pytest.raises(SystemExit):
            parser.parse_args(["--eval", "nonsense"])

    def test_eval_list_prints_registry(self, capsys):
        main(["--eval", "list"])
        printed = capsys.readouterr().out
        for name in evaluator_names():
            assert name in printed
        assert "duration_s" in printed  # option schemas are shown

    def test_opt_flag_parses_and_types(self, capsys):
        main(["--quick", "--arch", "cdb3", "--eval", "pscore",
              "--opt", "n_ro_nodes=2"])
        assert "P-Score" in capsys.readouterr().out

    def test_bad_opt_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--quick", "--arch", "cdb3", "--eval", "pscore",
                  "--opt", "bogus=2"])


class TestBoolOpts:
    """--opt boolean handling: ``shed=true`` works, bare ``--opt shed``
    is a clean usage error (bool("false") is True, so booleans need a
    dedicated parser and an explicit spelling hint)."""

    def test_bool_opt_false_actually_disables(self, capsys):
        main(["--quick", "--arch", "cdb3", "--eval", "overload",
              "--opt", "qos=false"])
        assert "qos off" in capsys.readouterr().out

    def test_bool_opt_true(self, capsys):
        main(["--quick", "--arch", "cdb3", "--eval", "overload",
              "--opt", "qos=true"])
        assert "qos on" in capsys.readouterr().out

    def test_bare_opt_is_a_clean_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--quick", "--arch", "cdb3", "--eval", "overload",
                  "--opt", "qos"])
        message = str(excinfo.value)
        assert "NAME=VALUE" in message and "qos=true" in message

    def test_bad_bool_value_is_a_clean_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--quick", "--arch", "cdb3", "--eval", "overload",
                  "--opt", "qos=maybe"])
        assert "boolean" in str(excinfo.value)

"""Tests for the OLTP evaluator (functional + modelled sweeps)."""


from repro.cloud.architectures import aws_rds
from repro.core.oltp import OltpEvaluator
from repro.core.workload import READ_ONLY, READ_WRITE


def test_functional_sweep_reports_all_levels():
    evaluator = OltpEvaluator(READ_WRITE, row_scale=0.001)
    report = evaluator.run_functional(concurrencies=[1, 4], transactions_per_level=300)
    assert sorted(report.functional_tps()) == [1, 4]
    for point in report.functional:
        assert point.tps > 0
        assert point.result.transactions == 300
        assert point.result.latency_percentile(99) >= point.result.latency_percentile(50)


def test_functional_runs_are_independent_per_level():
    evaluator = OltpEvaluator(READ_WRITE, row_scale=0.001)
    report = evaluator.run_functional(concurrencies=[2, 2], transactions_per_level=200)
    first, second = report.functional
    assert first.result.counts == second.result.counts  # fresh db + same seed


def test_modelled_sweep_shapes():
    evaluator = OltpEvaluator(READ_ONLY)
    report = evaluator.run_modelled(aws_rds(), concurrencies=[50, 100, 200])
    tps = report.modelled_tps()
    assert tps[100] >= tps[50]
    assert all(point.bottleneck for point in report.modelled)
    assert all(point.latency_s > 0 for point in report.modelled)


def test_latest_distribution_flows_through_both_paths():
    evaluator = OltpEvaluator(READ_WRITE, distribution="latest-10", row_scale=0.001)
    functional = evaluator.run_functional(concurrencies=[2], transactions_per_level=150)
    assert functional.distribution == "latest-10"
    modelled = evaluator.run_modelled(aws_rds(), concurrencies=[100])
    assert modelled.modelled[0].tps > 0


def test_default_sweeps():
    evaluator = OltpEvaluator(READ_ONLY, row_scale=0.001)
    functional = evaluator.run_functional(transactions_per_level=100)
    assert len(functional.functional) == 3
    modelled = evaluator.run_modelled(aws_rds())
    assert len(modelled.modelled) == 4

"""Coverage for the remaining small helpers across packages."""

import pytest

from repro.core.datagen import load_sales_database
from repro.engine.database import Database
from repro.engine.types import Column, ColumnType, Schema


def small_db():
    db = Database("misc")
    db.create_table(Schema(
        "KV",
        (Column("K", ColumnType.INT, nullable=False),
         Column("V", ColumnType.INT, default=0)),
        primary_key="K",
    ))
    for k in range(1, 6):
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [k, k * 2])
    return db


class TestDatabaseHelpers:
    def test_total_rows_and_data_bytes(self):
        db = small_db()
        assert db.total_rows() == 5
        assert db.data_bytes() == 5 * db.table("KV").schema.row_byte_size()

    def test_table_lookup_case_insensitive(self):
        db = small_db()
        assert db.table("kv") is db.table("KV")

    def test_filter_scan(self):
        db = small_db()
        table = db.table("KV")
        evens = [row for _rid, row in table.filter_scan(lambda r: r[1] % 4 == 0)]
        assert sorted(row[0] for row in evens) == [2, 4]

    def test_index_for_columns(self):
        db = small_db()
        table = db.table("KV")
        assert table.index_for_columns(("K",)) is table.primary_index
        assert table.index_for_columns(("V",)) is None
        db.create_index("KV", "kv_v", ("V",))
        assert table.index_for_columns(("V",)) is not None

    def test_commit_listener_removal(self):
        db = small_db()
        seen = []
        listener = lambda txn, lsn, records: seen.append(txn)  # noqa: E731
        db.add_commit_listener(listener)
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [10, 1])
        db.remove_commit_listener(listener)
        db.execute("INSERT INTO kv (K, V) VALUES (?, ?)", [11, 1])
        assert len(seen) == 1

    def test_txn_manager_oldest_active(self):
        db = small_db()
        assert db.txns.oldest_active() is None
        first = db.begin()
        second = db.begin()
        assert db.txns.oldest_active() is first
        first.commit()
        assert db.txns.oldest_active() is second
        second.rollback()

    def test_txn_read_write_counters(self):
        db = small_db()
        with db.begin() as txn:
            db.execute("SELECT V FROM kv WHERE K = ?", [1], txn=txn)
            db.execute("UPDATE kv SET V = ? WHERE K = ?", [9, 1], txn=txn)
            assert txn.reads >= 1
            assert txn.writes == 1


class TestWorkloadManagerEdges:
    def test_worker_seeds_differ(self):
        db, _ = load_sales_database(row_scale=0.001)
        from repro.core.manager import WorkloadManager
        from repro.core.workload import READ_WRITE

        manager = WorkloadManager(db, READ_WRITE, concurrency=3, seed=5)
        keys = {id(worker._rng) for worker in manager.workers}
        assert len(keys) == 3
        # distinct seeds -> distinct first draws for at least one pair
        draws = [worker._rng.random() for worker in manager.workers]
        assert len(set(draws)) > 1


class TestSparklineAndTables:
    def test_sparkline_downsamples(self):
        from repro.core.report import sparkline

        line = sparkline(list(range(200)), width=20)
        assert 0 < len(line) <= 25

    def test_text_table_mixed_types(self):
        from repro.core.report import TextTable

        table = TextTable(["a", "b", "c"])
        table.add_row("x", 0.00012345, 1_234_567.0)
        rendered = table.render()
        assert "0.0001235" in rendered or "0.0001234" in rendered
        assert "1,234,567" in rendered


class TestCollectorEdges:
    def test_cost_between_empty(self):
        from repro.core.collector import PerformanceCollector

        collector = PerformanceCollector()
        assert collector.cost_between(0.0, 10.0) == 0.0
        assert collector.peak_tps() == 0.0

    def test_summary_window_subset(self):
        from repro.core.collector import PerformanceCollector

        collector = PerformanceCollector()
        for t in range(10):
            collector.record(float(t), tps=float(t), cost_delta=1.0)
        summary = collector.summary(5.0, 9.0)
        assert summary.avg_tps == pytest.approx(6.5)  # avg of 5..8 step fn

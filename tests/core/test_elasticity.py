"""Tests for the elasticity patterns and evaluator (Fig. 6 / Table VI)."""

import pytest

from repro.cloud.architectures import aws_rds, cdb1, cdb2, cdb3
from repro.core.elasticity import (
    ELASTIC_PATTERNS,
    ElasticityEvaluator,
    custom_pattern,
    pareto_proportions,
)
from repro.core.workload import READ_WRITE


def mix():
    return READ_WRITE.to_workload_mix(1)


def evaluator(factory, window=420.0):
    return ElasticityEvaluator(factory(), mix(), measure_window_s=window)


class TestPatterns:
    def test_four_basic_patterns(self):
        assert set(ELASTIC_PATTERNS) == {
            "single_peak", "large_spike", "single_valley", "zero_valley",
        }

    def test_paper_proportions_at_tau_110(self):
        """Section III-C's concrete slot concurrencies."""
        assert ELASTIC_PATTERNS["single_peak"].concurrency_slots(110) == [0, 110, 0]
        assert ELASTIC_PATTERNS["large_spike"].concurrency_slots(110) == [11, 88, 11]
        assert ELASTIC_PATTERNS["single_valley"].concurrency_slots(110) == [44, 22, 44]
        assert ELASTIC_PATTERNS["zero_valley"].concurrency_slots(110) == [55, 0, 55]

    def test_custom_pattern_extension(self):
        pattern = custom_pattern("double_peak", [0, 1.0, 0.1, 1.0, 0])
        assert pattern.concurrency_slots(100) == [0, 100, 10, 100, 0]

    def test_pareto_proportions(self):
        props = pareto_proportions(4)
        assert props[0] == 1.0
        assert all(a >= b for a, b in zip(props, props[1:]))
        assert all(0 < p <= 1 for p in props)
        with pytest.raises(ValueError):
            pareto_proportions(0)


class TestSaturationProbe:
    def test_tau_is_positive_and_bounded(self):
        for factory in (aws_rds, cdb2):
            tau = evaluator(factory).saturation_concurrency()
            assert 8 <= tau <= 2048

    def test_stronger_systems_saturate_later(self):
        weak = evaluator(cdb2).saturation_concurrency()
        strong = evaluator(aws_rds).saturation_concurrency()
        assert strong >= weak


class TestEvaluatorRun:
    def test_fixed_arch_flat_allocation(self):
        result = evaluator(aws_rds).run(ELASTIC_PATTERNS["single_peak"], 100)
        vcores = set(result.collector.vcores.values)
        assert vcores == {4.0}
        assert result.scaling_cost == 0.0
        assert result.total_cost == pytest.approx(result.execution_cost)

    def test_costs_split_into_elastic_and_infra(self):
        result = evaluator(cdb3).run(ELASTIC_PATTERNS["large_spike"], 100)
        assert result.elastic_cost > 0
        assert result.infra_cost > 0
        assert result.total_cost == pytest.approx(
            result.execution_cost + result.scaling_cost
        )
        assert result.e1_score == pytest.approx(
            result.avg_tps / result.elastic_cost
        )

    def test_serverless_tracks_demand(self):
        result = evaluator(cdb2).run(ELASTIC_PATTERNS["single_peak"], 100)
        # allocation during the idle tail is far below the peak
        peak = max(result.collector.vcores.values)
        tail = result.collector.vcores.values[-1]
        assert peak == 4.0
        assert tail <= 0.5 + 1e-9

    def test_cdb3_pauses_in_idle_tail(self):
        result = evaluator(cdb3).run(ELASTIC_PATTERNS["single_peak"], 100)
        assert 0.0 in result.collector.vcores.values

    def test_cdb1_gradual_scale_down_costs_more_than_cdb2(self):
        """Gradual scale-down keeps billing: the paper's core insight."""
        pattern = ELASTIC_PATTERNS["single_peak"]
        slow = evaluator(cdb1).run(pattern, 100)
        fast = evaluator(cdb2).run(pattern, 100)
        assert slow.scaling_cost > fast.scaling_cost

    def test_transitions_recorded_per_slot_change(self):
        result = evaluator(cdb2).run(ELASTIC_PATTERNS["zero_valley"], 100)
        labels = [transition.label for transition in result.transitions]
        assert labels == ["50->0", "0->50", "50->0"]

    def test_scaling_time_measured_for_cdb1_up(self):
        result = evaluator(cdb1).run(ELASTIC_PATTERNS["single_peak"], 100)
        up = result.transitions[0]
        assert up.label == "0->100"
        assert up.scaling_time_s is not None
        assert 5 <= up.scaling_time_s <= 40  # paper: 14 s

    def test_cdb1_scale_down_much_slower_than_up(self):
        result = evaluator(cdb1).run(ELASTIC_PATTERNS["single_peak"], 100)
        up, down = result.transitions[0], result.transitions[1]
        assert down.scaling_time_s is None or down.scaling_time_s > 3 * up.scaling_time_s

    def test_avg_tps_over_pattern_window(self):
        result = evaluator(aws_rds).run(ELASTIC_PATTERNS["single_valley"], 100)
        assert result.avg_tps > 0
        # single valley serves demand in every slot, so it out-averages
        # the single peak (two idle slots)
        peak = evaluator(aws_rds).run(ELASTIC_PATTERNS["single_peak"], 100)
        assert result.avg_tps > peak.avg_tps

    def test_e1_rank_cdb3_beats_cdb1(self):
        pattern = ELASTIC_PATTERNS["single_peak"]
        assert (evaluator(cdb3).run(pattern, 100).e1_score
                > evaluator(cdb1).run(pattern, 100).e1_score)

    def test_run_all(self):
        results = evaluator(cdb3).run_all(50, patterns=["single_peak", "zero_valley"])
        assert set(results) == {"single_peak", "zero_valley"}

"""Tests for the RUC pricing model and the PERFECT metrics."""

import math

import pytest

from repro.cloud.architectures import all_architectures, aws_rds, cdb2, cdb4
from repro.cloud.specs import NetworkKind, ProvisionedPackage
from repro.core.metrics import (
    PerfectScores,
    e2_score,
    o_score,
    p_score,
    p_score_actual,
    scale_out_tps,
)
from repro.core.pricing import (
    CPU_VCORE_HOUR,
    IOPS_100_HOUR,
    MEMORY_GB_HOUR,
    RDMA_GBPS_HOUR,
    RUC_TABLE,
    STORAGE_GB_HOUR,
    TCP_GBPS_HOUR,
    actual_cost,
    allocation_cost,
    package_cost_breakdown_per_minute,
    package_cost_per_hour,
    package_cost_per_minute,
)
from repro.core.workload import READ_WRITE


def test_table_iii_unit_prices():
    assert CPU_VCORE_HOUR == 0.1847
    assert MEMORY_GB_HOUR == 0.0095
    assert STORAGE_GB_HOUR == 0.000853
    assert IOPS_100_HOUR == 0.00015
    assert TCP_GBPS_HOUR == 0.07696
    assert RDMA_GBPS_HOUR == 0.23088
    assert len(RUC_TABLE) == 6


def test_rds_package_matches_table_v_breakdown():
    """The paper's Table V per-minute costs for AWS RDS."""
    package = aws_rds().provisioned
    breakdown = package_cost_breakdown_per_minute(package)
    assert breakdown["cpu"] == pytest.approx(0.0123, abs=2e-4)
    assert breakdown["memory"] == pytest.approx(0.0025, abs=1e-4)
    assert breakdown["storage"] == pytest.approx(0.0006, abs=1e-4)
    assert breakdown["iops"] == pytest.approx(0.000025, abs=5e-6)
    assert breakdown["network"] == pytest.approx(0.0128, abs=2e-4)


def test_cdb4_rdma_network_is_3x_tcp():
    package = cdb4().provisioned
    breakdown = package_cost_breakdown_per_minute(package)
    assert breakdown["network"] == pytest.approx(3 * 0.0128, rel=0.01)


def test_cost_per_minute_is_hour_over_60():
    package = aws_rds().provisioned
    assert package_cost_per_minute(package) == pytest.approx(
        package_cost_per_hour(package) / 60.0
    )


def test_allocation_cost_scales_with_duration():
    one = allocation_cost(4, 16, iops=1000, duration_s=60)
    ten = allocation_cost(4, 16, iops=1000, duration_s=600)
    assert ten == pytest.approx(10 * one)


def test_allocation_cost_network_kind():
    tcp = allocation_cost(0, 0, network_gbps=10, duration_s=3600)
    rdma = allocation_cost(0, 0, network_gbps=10, duration_s=3600,
                           network_kind=NetworkKind.RDMA)
    assert rdma == pytest.approx(3 * tcp)


def test_actual_cost_applies_billing_minimum():
    arch = aws_rds()
    short = actual_cost(arch.pricing, arch.provisioned, duration_s=60)
    minimum = actual_cost(arch.pricing, arch.provisioned, duration_s=600)
    assert short == pytest.approx(minimum)  # billed >= 10 minutes
    longer = actual_cost(arch.pricing, arch.provisioned, duration_s=1200)
    assert longer == pytest.approx(2 * minimum)


def test_elastic_pool_bills_hourly():
    arch = cdb2()
    assert arch.pricing.min_billing_s == 3600.0
    penalised = actual_cost(arch.pricing, arch.provisioned, duration_s=300)
    fair = actual_cost(arch.pricing, arch.provisioned, duration_s=3600)
    assert penalised == pytest.approx(fair)


class TestScores:
    def test_p_score_definition(self):
        package = aws_rds().provisioned
        cost = package_cost_per_minute(package)
        assert p_score(12_000, package) == pytest.approx(12_000 / cost)
        zero = ProvisionedPackage(0, 0, 0, 0, 0, NetworkKind.TCP)
        assert p_score(12_000, zero) == 0.0

    def test_p_score_actual_penalises_billing_minimum(self):
        arch = aws_rds()
        starred = p_score_actual(12_000, arch, arch.provisioned, duration_s=60)
        normal = p_score(12_000, arch.provisioned)
        assert starred < normal

    def test_scale_out_adds_read_capacity(self):
        arch = aws_rds()
        mix = READ_WRITE.to_workload_mix(1)
        base = scale_out_tps(arch, mix, 150, 0)
        one = scale_out_tps(arch, mix, 150, 1)
        two = scale_out_tps(arch, mix, 150, 2)
        assert base < one < two
        # linear in replicas under this model
        assert two - one == pytest.approx(one - base)

    def test_e2_rank_rds_highest(self):
        """Paper: RDS has the highest E2 (local SSD replicas)."""
        mix = READ_WRITE.to_workload_mix(1)
        scores = {arch.name: e2_score(arch, mix) for arch in all_architectures()}
        assert max(scores, key=scores.get) == "aws_rds"
        assert min(scores, key=scores.get) == "cdb1"

    def test_e2_requires_at_least_one_node(self):
        with pytest.raises(ValueError):
            e2_score(aws_rds(), READ_WRITE.to_workload_mix(1), n_ro_nodes=0)

    def test_o_score_formula(self):
        value = o_score(p=1e5, t=8e4, e1=6e4, e2=10, r_s=10, f_s=5, c_ms=20)
        expected = math.log10((1e5 * 8e4 * 6e4 * 10) / (10 * 5 * 20))
        assert value == pytest.approx(expected)

    def test_o_score_lower_with_worse_recovery(self):
        good = o_score(1e5, 8e4, 6e4, 10, r_s=3, f_s=3, c_ms=2)
        bad = o_score(1e5, 8e4, 6e4, 10, r_s=30, f_s=30, c_ms=200)
        assert good > bad

    def test_o_score_clamps_non_positive(self):
        # a system that never recovered gets a terrible, finite score
        value = o_score(1e5, 8e4, 6e4, 10, r_s=0, f_s=0, c_ms=0)
        assert math.isfinite(value)

    def test_perfect_scores_row_shape(self):
        scores = PerfectScores(
            arch_name="x", p=1e5, p_star=1e3, e1=5e4, e1_star=1e3,
            e2=10, r_s=10, f_s=5, c_ms=15, t=7e4, t_star=1e3,
        )
        row = scores.as_row()
        assert row[0] == "x"
        assert len(row) == 13
        assert scores.o > scores.o_star  # starred costs are higher here

"""Regression tests for seed-stream derivation.

Pre-fix, two stochastic components could end up drawing the *same*
pseudo-random stream: the OLTP evaluator seeded its data generator and
its workload workers from one master value, and ``WorkloadManager``
seeded worker ``i`` with ``seed + i`` -- so worker i of a run seeded S
replayed worker 0 of a run seeded S+i.  Streams are now derived by
name via ``derive_seed``.
"""

from repro.core.datagen import load_sales_database
from repro.core.manager import WorkloadManager
from repro.core.workload import READ_WRITE
from repro.sim.rng import RngRegistry, derive_seed


def tiny_db(seed=42):
    db, _data = load_sales_database(row_scale=0.001, seed=seed)
    return db


def key_draws(workload, n=20):
    return [workload._order_keys.next_key() for _ in range(n)]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_distinct_per_name(self):
        names = [f"stream.{i}" for i in range(50)]
        assert len({derive_seed(42, name) for name in names}) == 50

    def test_distinct_per_master_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_no_additive_aliasing(self):
        """The old scheme: stream i of seed S == stream 0 of seed S+i."""
        for i in range(1, 8):
            assert derive_seed(42, f"worker.{i}") != derive_seed(42 + i, "worker.0")


class TestRngRegistry:
    def test_streams_are_independent_and_stable(self):
        first = RngRegistry(7)
        second = RngRegistry(7)
        assert (
            first.stream("a").random() == second.stream("a").random()
        )
        assert first.stream("a") is first.stream("a")
        assert first.stream("b").random() != second.stream("a").random()

    def test_fork_diverges_from_parent(self):
        parent = RngRegistry(7)
        child = parent.fork("child")
        assert parent.stream("a").random() != child.stream("a").random()


class TestWorkerSeeding:
    def test_workers_draw_distinct_streams(self):
        db = tiny_db()
        manager = WorkloadManager(db, READ_WRITE, concurrency=4, seed=42)
        draws = [key_draws(worker) for worker in manager.workers]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert draws[i] != draws[j]

    def test_worker_i_is_not_worker_zero_of_a_shifted_seed(self):
        """The regression: under ``seed + worker_id`` seeding, worker 1
        of seed 42 replayed worker 0 of seed 43 draw for draw."""
        db = tiny_db()
        shifted = WorkloadManager(db, READ_WRITE, concurrency=1, seed=43)
        base = WorkloadManager(db, READ_WRITE, concurrency=2, seed=42)
        assert key_draws(base.workers[1]) != key_draws(shifted.workers[0])

    def test_same_seed_replays_the_same_run(self):
        results = []
        for _ in range(2):
            db = tiny_db()
            manager = WorkloadManager(db, READ_WRITE, concurrency=3, seed=9)
            result = manager.run_transactions(60)
            results.append((result.counts, result.aborted))
        assert results[0] == results[1]


class TestOltpStreamSeparation:
    def test_datagen_and_workload_streams_differ(self):
        assert derive_seed(42, "oltp.datagen") != derive_seed(42, "oltp.workload")

    def test_datagen_rows_do_not_track_worker_zero(self):
        """Pre-fix the datagen RNG was identical to worker 0's: the rows
        the generator wrote and the keys worker 0 probed were correlated.
        With named streams, reseeding the master changes both, but a
        fixed master keeps them decoupled from each other."""
        db_a = tiny_db(seed=derive_seed(5, "oltp.datagen"))
        db_b = tiny_db(seed=derive_seed(5, "oltp.datagen"))
        rows_a = sorted(row for _rid, row in db_a.table("CUSTOMER").scan())
        rows_b = sorted(row for _rid, row in db_b.table("CUSTOMER").scan())
        assert rows_a == rows_b  # datagen stream is stable...
        worker = WorkloadManager(
            db_a, READ_WRITE, concurrency=1,
            seed=derive_seed(5, "oltp.workload"),
        ).workers[0]
        # ...and the workload stream is not the datagen stream
        assert worker._rng.random() != RngRegistry(
            derive_seed(5, "oltp.datagen")
        ).stream("datagen").random()

"""Tests for result export and the command-line interface."""

import csv
import io
import json

import pytest

from repro.core.cli import build_parser, main
from repro.core.collector import PerformanceCollector
from repro.core.export import (
    collector_to_csv,
    collector_to_csv_string,
    scores_to_json,
    throughput_to_csv,
)
from repro.core.metrics import PerfectScores


class TestExport:
    def make_collector(self):
        collector = PerformanceCollector()
        for t in range(5):
            collector.record(float(t), tps=100.0 + t, vcores=2.0,
                             memory_gb=8.0, cost_delta=0.01)
        return collector

    def test_collector_csv_roundtrip(self):
        text = collector_to_csv_string(self.make_collector())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 5
        assert float(rows[0]["tps"]) == 100.0
        assert float(rows[4]["tps"]) == 104.0
        assert float(rows[4]["cost_cumulative"]) == pytest.approx(0.05)

    def test_collector_csv_row_count(self):
        out = io.StringIO()
        assert collector_to_csv(self.make_collector(), out) == 5

    def test_scores_json(self):
        scores = {
            "x": PerfectScores(
                arch_name="x", p=1e5, p_star=1e3, e1=5e4, e1_star=1e3,
                e2=10, r_s=10, f_s=5, c_ms=15, t=7e4, t_star=1e3,
            )
        }
        payload = json.loads(scores_to_json(scores))
        assert payload["x"]["p_score"] == 1e5
        assert "o_score" in payload["x"]
        assert payload["x"]["o_score"] > payload["x"]["o_score_actual"]

    def test_throughput_csv(self):
        out = io.StringIO()
        rows = throughput_to_csv(
            {("a", 1, "RW", 50): 1234.5, ("a", 1, "RW", 100): 2000.0}, out
        )
        assert rows == 2
        parsed = list(csv.DictReader(io.StringIO(out.getvalue())))
        assert parsed[0]["concurrency"] == "50"


class TestCli:
    def test_parser_evaluations(self):
        parser = build_parser()
        args = parser.parse_args(["--eval", "pscore", "--quick"])
        assert args.evaluation == "pscore"
        assert args.quick

    def test_unknown_evaluation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--eval", "nonsense"])

    def test_throughput_eval(self, capsys):
        assert main(["--eval", "throughput", "--quick", "--arch", "cdb3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "cdb3" in out

    def test_pscore_eval(self, capsys):
        assert main(["--eval", "pscore", "--quick", "--arch", "aws_rds"]) == 0
        out = capsys.readouterr().out
        assert "P-Score" in out

    def test_failover_eval(self, capsys):
        assert main(["--eval", "failover", "--quick", "--arch", "cdb4"]) == 0
        out = capsys.readouterr().out
        assert "Fail-over" in out

    def test_config_file(self, tmp_path, capsys):
        props = tmp_path / "props.toml"
        props.write_text(
            """
[workload]
scale_factors = [1]
concurrencies = [25]
architectures = ["cdb3"]
"""
        )
        assert main(["--config", str(props), "--eval", "throughput"]) == 0
        out = capsys.readouterr().out
        assert "25" in out


class TestCliRemainingEvals:
    def test_elasticity_eval(self, capsys):
        assert main(["--eval", "elasticity", "--quick", "--arch", "cdb3"]) == 0
        assert "Elasticity" in capsys.readouterr().out

    def test_multitenancy_eval(self, capsys):
        assert main(["--eval", "multitenancy", "--quick", "--arch", "cdb2"]) == 0
        assert "Multi-tenancy" in capsys.readouterr().out

    def test_lagtime_eval(self, capsys):
        assert main(["--eval", "lagtime", "--quick", "--arch", "cdb4"]) == 0
        out = capsys.readouterr().out
        assert "Replication lag" in out

    def test_overall_eval(self, capsys):
        assert main(["--eval", "overall", "--quick", "--arch", "cdb4"]) == 0
        out = capsys.readouterr().out
        assert "Overall performance" in out


class TestReport:
    def test_generate_report_contains_all_sections(self):
        from repro.core import BenchConfig, CloudyBench, generate_report

        config = BenchConfig.quick()
        config.architectures = ["cdb4"]
        config.lag_transactions = 40
        markdown = generate_report(CloudyBench(config))
        for section in ("Throughput", "P-Score", "Elasticity",
                        "Multi-tenancy", "Fail-over", "Replication lag",
                        "Overall"):
            assert section in markdown
        assert "cdb4" in markdown

    def test_cli_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["--eval", "report", "--quick", "--arch", "cdb4",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert "# CloudyBench report" in out.read_text()

"""Regression tests: CollectorSummary on empty collectors and
degenerate windows returns a well-defined zeroed summary."""

from repro.core.collector import CollectorSummary, PerformanceCollector


def test_empty_collector_summary_is_zeroed():
    collector = PerformanceCollector()
    summary = collector.summary(0.0, 10.0)
    assert summary == CollectorSummary.zeroed(0.0, 10.0)
    assert summary.avg_tps == 0.0
    assert summary.peak_tps == 0.0
    assert summary.total_cost == 0.0


def test_zero_length_window_summary_is_zeroed():
    collector = PerformanceCollector()
    collector.record(0.0, 100.0, vcores=2.0, memory_gb=4.0, cost_delta=0.1)
    collector.record(10.0, 200.0, vcores=4.0, memory_gb=8.0, cost_delta=0.2)
    summary = collector.summary(5.0, 5.0)
    assert summary == CollectorSummary.zeroed(5.0, 5.0)
    # the degenerate window must not leak the global peak
    assert summary.peak_tps == 0.0


def test_inverted_window_summary_is_zeroed():
    collector = PerformanceCollector()
    collector.record(0.0, 100.0, cost_delta=0.5)
    summary = collector.summary(8.0, 3.0)
    assert summary == CollectorSummary.zeroed(8.0, 3.0)
    # inverted windows must not produce negative cost
    assert collector.cost_between(8.0, 3.0) == 0.0


def test_normal_window_unaffected():
    collector = PerformanceCollector()
    collector.record(0.0, 100.0, vcores=2.0, cost_delta=0.0)
    collector.record(10.0, 100.0, vcores=2.0, cost_delta=1.0)
    summary = collector.summary(0.0, 10.0)
    assert summary.avg_tps == 100.0
    assert summary.peak_tps == 100.0
    assert summary.total_cost == 1.0
    assert summary.avg_vcores == 2.0


def test_events_note_and_order():
    collector = PerformanceCollector()
    collector.note(3.0, "scale_up: 1 -> 4 vcores")
    collector.note(9.0, "scale_down: 4 -> 2 vcores")
    assert collector.events == [
        (3.0, "scale_up: 1 -> 4 vcores"),
        (9.0, "scale_down: 4 -> 2 vcores"),
    ]

"""Tests for the multi-tenancy patterns and evaluator (Table VII)."""

import pytest

from repro.cloud.architectures import all_architectures, aws_rds, cdb1, cdb2, cdb3, cdb4
from repro.core.multitenancy import (
    TENANCY_PATTERNS,
    MultiTenancyEvaluator,
    TenancyResult,
    tenant_package,
)
from repro.core.pricing import package_cost_per_minute
from repro.core.workload import READ_WRITE


def mix():
    return READ_WRITE.to_workload_mix(1)


class TestPatternGeneration:
    def test_four_patterns(self):
        assert set(TENANCY_PATTERNS) == {
            "high_contention", "low_contention", "staggered_high", "staggered_low",
        }

    def test_staggered_low_matches_paper(self):
        """Section III-D: {(10,0,0),(0,20,0),(0,0,30)} at tau=100."""
        matrix = TENANCY_PATTERNS["staggered_low"].demand_matrix(100)
        assert matrix == [[10, 0, 0], [0, 20, 0], [0, 0, 30]]

    def test_staggered_high_adds_100_percent(self):
        """Section III-D: (c) = (d) + 100% tau -> {363, 429(+), 396}."""
        matrix = TENANCY_PATTERNS["staggered_high"].demand_matrix(330)
        assert matrix[0][0] == 363           # (10% + 100%) * 330
        assert matrix[1][1] == 396           # (20% + 100%) * 330
        assert matrix[2][2] == 429           # (30% + 100%) * 330

    def test_high_contention_exceeds_threshold(self):
        matrix = TENANCY_PATTERNS["high_contention"].demand_matrix(330)
        total = sum(row[0] for row in matrix)
        assert total > 330            # above the capacity threshold
        # constant demands per tenant
        for row in matrix:
            assert len(set(row)) == 1

    def test_low_contention_below_threshold(self):
        matrix = TENANCY_PATTERNS["low_contention"].demand_matrix(100)
        assert sum(row[0] for row in matrix) < 100

    def test_arbitrary_tenant_and_slot_counts(self):
        matrix = TENANCY_PATTERNS["staggered_low"].demand_matrix(
            100, n_tenants=5, n_slots=5
        )
        assert len(matrix) == 5
        assert all(len(row) == 5 for row in matrix)
        # each tenant active in exactly one slot
        for row in matrix:
            assert sum(1 for value in row if value > 0) == 1


class TestTenantPackage:
    def test_isolated_triples_everything(self):
        package = tenant_package(aws_rds(), 3)
        base = aws_rds().provisioned
        assert package.vcores == 3 * base.vcores
        assert package.iops == 3 * base.iops
        assert package.network_gbps == 3 * base.network_gbps
        assert package.storage_gb == 3 * base.storage_gb

    def test_pool_shares_network_and_iops(self):
        package = tenant_package(cdb2(), 3)
        base = cdb2().provisioned
        assert package.vcores == 12
        assert package.memory_gb == 36      # 3 x 12 GB instance memory
        assert package.iops == base.iops    # shared log service
        assert package.network_gbps == base.network_gbps

    def test_branches_share_storage(self):
        package = tenant_package(cdb3(), 3)
        base = cdb3().provisioned
        assert package.vcores == 12
        assert package.memory_gb == 48
        assert package.storage_gb == base.storage_gb  # copy-on-write
        assert package.iops == 3 * base.iops          # isolated I/O

    def test_paper_cost_rank(self):
        """Table VII: cdb3 cheapest, cdb4 most expensive."""
        costs = {
            arch.name: package_cost_per_minute(tenant_package(arch, 3))
            for arch in all_architectures()
        }
        assert min(costs, key=costs.get) in ("cdb3", "cdb2")
        assert max(costs, key=costs.get) == "cdb4"
        assert costs["cdb4"] == pytest.approx(0.176, rel=0.1)


class TestEvaluator:
    def run(self, factory, pattern_key, tau=300):
        evaluator = MultiTenancyEvaluator(factory(), mix())
        return evaluator.run(TENANCY_PATTERNS[pattern_key], tau)

    def test_result_shape(self):
        result = self.run(aws_rds, "high_contention")
        assert isinstance(result, TenancyResult)
        assert len(result.slot_results) == 3
        assert len(result.tenant_avg_tps) == 3
        assert result.total_tps > 0
        assert result.t_score > 0

    def test_isolation_protects_under_contention(self):
        """Pattern (a): CDB1's fixed instances beat CDB2's crowded pool."""
        cdb1_tps = self.run(cdb1, "high_contention").total_tps
        cdb2_tps = self.run(cdb2, "high_contention").total_tps
        assert cdb1_tps > 1.5 * cdb2_tps

    def test_pool_wins_staggered(self):
        """Patterns (c)/(d): the elastic pool borrows idle capacity."""
        cdb2_tps = self.run(cdb2, "staggered_high").total_tps
        cdb1_tps = self.run(cdb1, "staggered_high").total_tps
        assert cdb2_tps > 1.5 * cdb1_tps

    def test_branches_lowest_on_staggered_low(self):
        """CDB3 resumes cold every slot: the paper's lowest TPS at (d)."""
        tps = {
            factory().name: self.run(factory, "staggered_low", tau=60).total_tps
            for factory in (aws_rds, cdb1, cdb2, cdb3, cdb4)
        }
        assert min(tps, key=tps.get) == "cdb3"

    def test_cdb4_highest_throughput_high_contention(self):
        tps = {
            factory().name: self.run(factory, "high_contention").total_tps
            for factory in (aws_rds, cdb1, cdb2, cdb3, cdb4)
        }
        assert max(tps, key=tps.get) == "cdb4"

    def test_t_score_geometric_mean_over_cost(self):
        result = self.run(aws_rds, "low_contention")
        import math
        tps = [value for value in result.tenant_avg_tps if value > 0]
        geo = math.prod(tps) ** (1 / len(tps))
        assert result.t_score == pytest.approx(geo / result.cost_per_minute)

    def test_run_all_uses_both_taus(self):
        evaluator = MultiTenancyEvaluator(cdb2(), mix())
        results = evaluator.run_all(tau_high=300, tau_low=60)
        assert set(results) == set(TENANCY_PATTERNS)
        high = results["high_contention"].demand_matrix
        low = results["low_contention"].demand_matrix
        assert sum(r[0] for r in high) > sum(r[0] for r in low)

"""Tests for the decoupled statement files."""

import pytest

from repro.core.sqlreader import (
    DEFAULT_STMT_FILE,
    SqlReader,
    SqlStmts,
    TransactionSpec,
)


def test_default_file_defines_t1_to_t4():
    stmts = SqlStmts()
    assert stmts.tasks == ["T1", "T2", "T3", "T4"]


def test_table_ii_statement_shapes():
    stmts = SqlStmts()
    assert stmts.spec("T1").pattern == "write_only"
    assert "INSERT INTO orderline" in stmts.statements("T1")[0]
    assert len(stmts.statements("T2")) == 3
    assert stmts.spec("T2").pattern == "read_write"
    assert stmts.spec("T3").pattern == "read_only"
    assert "DELETE FROM orderline" in stmts.statements("T4")[0]


def test_statements_parse_against_sales_schema():
    from repro.core.datagen import load_sales_database

    db, _ = load_sales_database(row_scale=0.001)
    stmts = SqlStmts()
    for task in stmts.tasks:
        for sql in stmts.statements(task):
            db.prepare(sql)  # raises on any parse/catalog error


def test_unknown_task_raises():
    with pytest.raises(KeyError):
        SqlStmts().spec("T99")


def test_add_new_transaction_at_runtime():
    stmts = SqlStmts()
    spec = TransactionSpec(
        task="T5",
        name="Order Count",
        pattern="read_only",
        statements=("SELECT COUNT(*) FROM orders WHERE O_C_ID = ?",),
    )
    stmts.add(spec)
    assert stmts.statements("T5")[0].startswith("SELECT COUNT")
    with pytest.raises(ValueError):
        stmts.add(spec)  # duplicates rejected


def test_spec_validation():
    with pytest.raises(ValueError):
        TransactionSpec("T9", "bad", "exotic", ("SELECT 1 FROM t",))
    with pytest.raises(ValueError):
        TransactionSpec("T9", "empty", "read_only", ())


def test_reader_from_custom_file(tmp_path):
    custom = tmp_path / "custom.toml"
    custom.write_text(
        """
[TX]
name = "Custom"
pattern = "read_only"
statements = ["SELECT O_ID FROM orders WHERE O_ID = ?"]
"""
    )
    stmts = SqlStmts.from_file(custom)
    assert stmts.tasks == ["TX"]
    assert stmts.spec("TX").name == "Custom"


def test_reader_rejects_empty_file(tmp_path):
    empty = tmp_path / "empty.toml"
    empty.write_text("")
    with pytest.raises(ValueError):
        SqlReader(empty).read()


def test_default_file_exists():
    assert DEFAULT_STMT_FILE.exists()

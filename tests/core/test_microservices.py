"""Tests for the extended Inventory + Manufacturing microservices."""

import pytest

from repro.core.datagen import load_sales_database
from repro.core.microservices import (
    EXTENDED_STMT_FILE,
    EXTENDED_TXN_CLASSES,
    ExtendedMix,
    ExtendedWorkload,
    INVENTORY_MIX,
    load_extended,
)
from repro.core.sqlreader import SqlStmts
from repro.engine.database import Database


@pytest.fixture
def loaded():
    db = Database("erp")
    scale = load_extended(db, row_scale=0.002)
    return db, scale


def test_statement_file_defines_t5_to_t8():
    stmts = SqlStmts.from_file(EXTENDED_STMT_FILE)
    assert stmts.tasks == ["T5", "T6", "T7", "T8"]
    assert stmts.spec("T7").name == "Schedule Work Order"


def test_statements_parse_against_schema(loaded):
    db, _scale = loaded
    stmts = SqlStmts.from_file(EXTENDED_STMT_FILE)
    for task in stmts.tasks:
        for sql in stmts.statements(task):
            db.prepare(sql)


def test_load_scales(loaded):
    db, scale = loaded
    assert db.table("PRODUCT").row_count == scale.products
    assert db.table("INVENTORY").row_count == scale.products * scale.warehouses
    assert db.table("BOM").row_count == scale.products * 3


def test_t5_restock_bumps_quantity_and_logs_event(loaded):
    db, scale = loaded
    workload = ExtendedWorkload(db, scale, seed=1)
    total_before = db.query("SELECT SUM(I_QUANTITY) FROM inventory").scalar()
    events_before = db.table("RESTOCK_EVENT").row_count
    assert workload.run_t5()
    assert db.query("SELECT SUM(I_QUANTITY) FROM inventory").scalar() > total_before
    assert db.table("RESTOCK_EVENT").row_count == events_before + 1


def test_t6_inventory_check(loaded):
    db, scale = loaded
    workload = ExtendedWorkload(db, scale, seed=2)
    row = workload.run_t6()
    assert row is not None and len(row) == 2


def test_t7_schedules_order_and_reserves_components(loaded):
    db, scale = loaded
    workload = ExtendedWorkload(db, scale, seed=3)
    orders_before = db.table("WORKORDER").row_count
    w_id = workload.run_t7()
    assert w_id is not None
    assert db.table("WORKORDER").row_count == orders_before + 1
    status = db.query(
        "SELECT W_STATUS FROM workorder WHERE W_ID = ?", [w_id]
    ).scalar()
    assert status == "SCHEDULED"


def test_t8_completes_order_and_credits_inventory(loaded):
    db, scale = loaded
    workload = ExtendedWorkload(db, scale, seed=4)
    w_id = workload.run_t7()
    # aim T8 at the just-created order deterministically
    workload._rng.seed(0)
    done = False
    for _ in range(50):
        if workload.run_t8():
            done = True
            break
    assert done
    statuses = {row[0] for row in db.query("SELECT W_STATUS FROM workorder").rows}
    assert "DONE" in statuses or "SCHEDULED" in statuses


def test_mixed_run_respects_weights(loaded):
    db, scale = loaded
    workload = ExtendedWorkload(db, scale, mix=INVENTORY_MIX, seed=5)
    workload.run_many(300)
    counts = workload.executed
    assert counts["T6"] > counts["T5"]
    assert counts["T6"] > counts["T7"]
    assert sum(counts.values()) == 300


def test_shares_database_with_sales_service():
    """Figure 2: tenants share schema/database/server among services."""
    db, _data = load_sales_database(row_scale=0.001)
    scale = load_extended(db, row_scale=0.002)
    # both services coexist in one database
    assert "ORDERS" in db.table_names and "WORKORDER" in db.table_names
    workload = ExtendedWorkload(db, scale, seed=6)
    workload.run_many(50)
    assert db.query("SELECT COUNT(*) FROM orders").scalar() > 0


def test_extended_mix_model_mapping():
    mix = ExtendedMix(t6=100).to_workload_mix(1)
    assert mix.write_fraction == 0.0
    heavy = ExtendedMix(t7=100).to_workload_mix(1)
    assert heavy.write_fraction == 1.0
    assert EXTENDED_TXN_CLASSES["T7"].statements == 5
    with pytest.raises(ValueError):
        ExtendedMix()


def test_extended_mix_drives_cloud_model():
    from repro.cloud.architectures import cdb3
    from repro.cloud.mva_model import estimate_throughput

    estimate = estimate_throughput(cdb3(), INVENTORY_MIX.to_workload_mix(1), 100)
    assert estimate.tps > 0

"""Client resilience stack: retry classification, backoff, circuit
breaker state machine, and the ResilientSession failover driver."""

import random

import pytest

from repro.core.resilience import (
    AttemptResult,
    BreakerState,
    CircuitBreaker,
    ResilientSession,
    RetryPolicy,
    counts_against_breaker,
    is_retryable,
    retry_transaction,
)
from repro.engine.errors import (
    DeadlockError,
    DuplicateKeyError,
    LockTimeoutError,
    NodeUnavailableError,
    RequestTimeout,
    SqlError,
)


# -- classification ------------------------------------------------------------


def test_retryable_classification_follows_the_flag():
    assert is_retryable(LockTimeoutError("waited too long"))
    assert is_retryable(DeadlockError("victim"))
    assert is_retryable(NodeUnavailableError("gone"))
    assert not is_retryable(DuplicateKeyError("pk"))
    assert not is_retryable(SqlError("parse"))
    assert not is_retryable(ValueError("not an engine error"))


def test_breaker_counting_is_narrower_than_retryable():
    # a deadlock victim is retryable but says nothing about endpoint health
    assert is_retryable(DeadlockError("victim"))
    assert not counts_against_breaker(DeadlockError("victim"))
    assert counts_against_breaker(NodeUnavailableError("gone"))
    assert counts_against_breaker(RequestTimeout("late"))


# -- retry_transaction ---------------------------------------------------------


def test_retry_transaction_replays_retryable_aborts():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise LockTimeoutError("contended")
        return "done"

    outcome = retry_transaction(flaky, attempts=5)
    assert outcome.committed and outcome.value == "done"
    assert outcome.aborts == 2


def test_retry_transaction_propagates_non_retryable_immediately():
    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise DuplicateKeyError("pk")

    with pytest.raises(DuplicateKeyError):
        retry_transaction(broken, attempts=5)
    assert calls["n"] == 1


def test_retry_transaction_gives_up_without_raising():
    outcome = retry_transaction(
        lambda: (_ for _ in ()).throw(DeadlockError("victim")), attempts=3
    )
    assert not outcome.committed
    assert outcome.aborts == 3


def test_retry_transaction_validates_attempts():
    with pytest.raises(ValueError):
        retry_transaction(lambda: None, attempts=0)


# -- RetryPolicy ---------------------------------------------------------------


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_backoff_s=0.1, multiplier=2.0,
                         max_backoff_s=0.5, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.backoff_s(n, rng) for n in range(1, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_backoff_jitter_stays_in_band():
    policy = RetryPolicy(base_backoff_s=0.1, jitter=0.5)
    rng = random.Random(7)
    for attempt in range(1, 5):
        raw = min(policy.max_backoff_s,
                  policy.base_backoff_s * policy.multiplier ** (attempt - 1))
        for _ in range(50):
            delay = policy.backoff_s(attempt, rng)
            assert raw * 0.5 <= delay <= raw * 1.5


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_s=1.0, max_backoff_s=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


# -- CircuitBreaker ------------------------------------------------------------


def test_breaker_opens_at_threshold():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=5.0)
    for _ in range(2):
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.CLOSED
    breaker.record_failure(0.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 1
    assert not breaker.allow(1.0)


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    breaker.record_success(0.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    assert breaker.state is BreakerState.CLOSED  # never 3 in a row


def test_half_open_probe_recloses_on_success():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0)
    breaker.record_failure(0.0)
    assert not breaker.allow(4.9)
    assert breaker.time_until_probe(4.9) == pytest.approx(0.1)
    assert breaker.allow(5.0)                    # probe admitted
    assert breaker.state is BreakerState.HALF_OPEN
    breaker.record_success(5.1)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.times_reclosed == 1


def test_half_open_probe_failure_reopens():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=5.0)
    breaker.record_failure(0.0)
    assert breaker.allow(5.0)
    breaker.record_failure(5.1)                  # the probe failed
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 2
    assert not breaker.allow(9.0)                # timer restarted at 5.1
    assert breaker.allow(10.2)


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_timeout_s=0.0)


# -- ResilientSession ----------------------------------------------------------


def flaky_endpoint(down):
    """Attempt function where endpoints listed in ``down`` are unreachable."""

    def attempt(endpoint):
        if endpoint in down:
            raise NodeUnavailableError(f"{endpoint} unreachable")
        return AttemptResult(ok=True, value=endpoint, latency_s=0.01)

    return attempt


def test_session_fails_over_to_healthy_endpoint():
    session = ResilientSession(["replica:0", "primary"])
    outcome = session.call(flaky_endpoint({"replica:0"}))
    assert outcome.ok and outcome.value == "primary"
    assert outcome.path[0] == "replica:0"        # preferred first, then failover
    assert "primary" in outcome.path


def test_non_retryable_error_fails_on_first_attempt():
    session = ResilientSession(["primary"])

    def attempt(endpoint):
        raise DuplicateKeyError("pk")

    outcome = session.call(attempt)
    assert not outcome.ok
    assert outcome.attempts == 1
    assert isinstance(outcome.error, DuplicateKeyError)
    assert session.failures == 1


def test_attempts_capped_by_policy():
    session = ResilientSession(
        ["primary"], policy=RetryPolicy(max_attempts=3, jitter=0.0)
    )
    outcome = session.call(flaky_endpoint({"primary"}))
    assert not outcome.ok
    assert outcome.attempts == 3


def test_timeout_budget_bounds_elapsed_time():
    session = ResilientSession(
        ["primary"],
        policy=RetryPolicy(max_attempts=10, base_backoff_s=0.2, jitter=0.0),
        breaker_threshold=100,
    )

    def slow_failure(endpoint):
        raise_with_latency = NodeUnavailableError("down")
        raise_with_latency.latency_s = 0.05
        raise raise_with_latency

    outcome = session.call(slow_failure, timeout_budget_s=0.5)
    assert not outcome.ok
    assert outcome.attempts < 10                 # budget cut the loop short
    assert outcome.elapsed_s <= 0.5 + 1e-9


def test_breaker_opens_then_recloses_after_heal():
    session = ResilientSession(
        ["primary"],
        policy=RetryPolicy(max_attempts=2, base_backoff_s=0.01, jitter=0.0),
        breaker_threshold=2,
        breaker_reset_s=1.0,
    )
    healthy = {"now": False}

    def attempt(endpoint):
        if not healthy["now"]:
            raise NodeUnavailableError("down")
        return "pong"

    assert not session.call(attempt).ok          # two failures open the breaker
    assert session.breaker("primary").state is BreakerState.OPEN
    assert session.breaker_opens() == 1

    healthy["now"] = True
    # before the reset timeout the breaker rejects without attempting,
    # then gives up once rejections exceed the bound
    rejected = session.call(attempt, timeout_budget_s=0.1)
    assert not rejected.ok and rejected.attempts == 0
    assert rejected.breaker_rejections >= 1

    session._own_clock.advance(1.0)              # past breaker_reset_s
    probed = session.call(attempt)
    assert probed.ok and probed.value == "pong"
    assert session.breaker("primary").state is BreakerState.CLOSED
    assert session.breaker_recloses() == 1


def test_all_breakers_open_waits_for_probe_slot():
    session = ResilientSession(
        ["a", "b"],
        policy=RetryPolicy(max_attempts=2, base_backoff_s=0.01, jitter=0.0),
        breaker_threshold=1,
        breaker_reset_s=0.05,
    )
    calls = {"n": 0}

    def attempt(endpoint):
        calls["n"] += 1
        if calls["n"] <= 2:
            raise NodeUnavailableError("down")
        return endpoint

    assert not session.call(attempt).ok          # opens both breakers
    outcome = session.call(attempt)              # sleeps until the probe slot
    assert outcome.ok
    assert outcome.breaker_rejections >= 1


def test_session_requires_endpoints():
    with pytest.raises(ValueError):
        ResilientSession([])


# -- half-open probe bounding (retry-storm regression) -------------------------


def test_half_open_admits_bounded_probes():
    """Only one probe per half-open episode by default: a flood of queued
    retries arriving the instant the breaker half-opens must not all
    pass through, fail, and restart the reset clock in lockstep."""
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
    breaker.record_failure(0.0)
    assert breaker.state is BreakerState.OPEN
    assert breaker.allow(1.0)                    # the probe slot
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow(1.0)                # the rest of the flood
    assert not breaker.allow(1.1)
    breaker.record_success(1.2)                  # verdict: healthy again
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow(1.3)


def test_half_open_extra_probes_configurable():
    breaker = CircuitBreaker(
        failure_threshold=1, reset_timeout_s=1.0,
        half_open_successes=2, half_open_max_probes=3,
    )
    breaker.record_failure(0.0)
    admitted = sum(1 for _ in range(10) if breaker.allow(1.0))
    assert admitted == 3
    breaker.record_success(1.1)
    assert breaker.state is BreakerState.HALF_OPEN  # needs 2 successes
    breaker.record_success(1.2)
    assert breaker.state is BreakerState.CLOSED


def test_half_open_probe_slot_frees_per_verdict():
    """A success that does not yet re-close the breaker hands its probe
    slot back, so the next request may probe instead of being rejected."""
    breaker = CircuitBreaker(
        failure_threshold=1, reset_timeout_s=1.0,
        half_open_successes=2, half_open_max_probes=1,
    )
    breaker.record_failure(0.0)
    assert breaker.allow(1.0)
    assert not breaker.allow(1.0)                # slot taken
    breaker.record_success(1.1)                  # one verdict in, one to go
    assert breaker.allow(1.2)                    # freed slot admits probe 2
    breaker.record_success(1.3)
    assert breaker.state is BreakerState.CLOSED


# -- retry budget --------------------------------------------------------------


def test_retry_budget_caps_replays():
    """With an empty budget the session stops retrying early, reports
    the exhaustion, and feeds the breaker the same signal."""
    from repro.qos.budget import RetryBudget

    session = ResilientSession(
        ["primary"],
        policy=RetryPolicy(max_attempts=10, base_backoff_s=0.01, jitter=0.0),
        retry_budget=RetryBudget(
            deposit_ratio=0.0, min_tokens=2.0, max_tokens=2.0
        ),
    )

    def always_down(endpoint):
        raise RequestTimeout("slow")

    outcome = session.call(always_down)
    assert not outcome.ok
    # 1 first attempt + 2 budgeted retries, not max_attempts
    assert outcome.attempts == 3
    assert outcome.budget_exhausted
    assert session.budget_denials == 1
    # budget exhaustion counted against the endpoint's breaker
    assert session.breaker("primary").state is BreakerState.OPEN


def test_default_budget_never_throttles_a_quiet_session():
    """The built-in budget reserves one call's full retry schedule."""
    session = ResilientSession(
        ["primary"],
        policy=RetryPolicy(max_attempts=4, base_backoff_s=0.01, jitter=0.0),
    )

    def flaky_then_ok(endpoint, state={"n": 0}):
        state["n"] += 1
        if state["n"] < 4:
            raise RequestTimeout("slow")
        return "pong"

    outcome = session.call(flaky_then_ok)
    assert outcome.ok and outcome.attempts == 4
    assert not outcome.budget_exhausted
    assert session.budget_denials == 0


def test_retry_budget_refills_with_fresh_requests():
    from repro.qos.budget import RetryBudget

    budget = RetryBudget(deposit_ratio=0.5, min_tokens=1.0, max_tokens=4.0)
    assert budget.try_spend()                    # the reserve token
    assert not budget.try_spend()
    assert budget.exhausted == 1
    for _ in range(4):
        budget.record_request()                  # 4 x 0.5 = 2 tokens
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()
    assert budget.deposits == 4 and budget.spends == 3

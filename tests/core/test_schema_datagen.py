"""Tests for the sales schema and data generation."""

import pytest

from repro.core.datagen import (
    DataGenerator,
    GeneratedData,
    load_sales_database,
    nominal_bytes,
)
from repro.core.schema import (
    ALL_SCHEMAS,
    BASE_ROWS,
    ORDERLINE_MULTIPLIER,
    create_sales_schema,
    rows_at_scale,
)
from repro.engine.database import Database

GIB = 2**30
MIB = 2**20


def test_three_tables_exist():
    assert [schema.table for schema in ALL_SCHEMAS] == [
        "CUSTOMER", "ORDERS", "ORDERLINE",
    ]


def test_scaling_model_orderline_order_of_magnitude_larger():
    rows = rows_at_scale(1)
    assert rows["CUSTOMER"] == rows["ORDERS"] == BASE_ROWS == 300_000
    assert rows["ORDERLINE"] == BASE_ROWS * ORDERLINE_MULTIPLIER


def test_scale_factor_multiplies_rows():
    assert rows_at_scale(10)["CUSTOMER"] == 3_000_000
    with pytest.raises(ValueError):
        rows_at_scale(0)


def test_nominal_bytes_match_paper():
    assert nominal_bytes(1) == 194 * MIB
    assert nominal_bytes(10) == pytest.approx(1.99 * GIB)
    assert nominal_bytes(100) == pytest.approx(20.8 * GIB)
    assert nominal_bytes(5) == 5 * 200 * MIB  # interpolation rule


def test_create_schema_adds_indexes():
    db = Database("s")
    create_sales_schema(db)
    assert "orderline_o_id" in db.table("ORDERLINE").secondary_indexes
    assert "orders_c_id" in db.table("ORDERS").secondary_indexes


def test_populate_row_counts_and_keys():
    db, data = load_sales_database(row_scale=0.001)
    assert isinstance(data, GeneratedData)
    assert data.rows["CUSTOMER"] == 300
    assert data.rows["ORDERS"] == 300
    assert data.rows["ORDERLINE"] == 3000
    assert db.table("CUSTOMER").row_count == 300
    assert db.table("ORDERLINE").row_count == 3000
    # keys are dense 1..N
    assert db.query("SELECT MIN(C_ID), MAX(C_ID) FROM customer").rows == [(1, 300)]


def test_orderlines_reference_orders():
    db, data = load_sales_database(row_scale=0.001)
    o_ids = {row[0] for row in db.query("SELECT O_ID FROM orders").rows}
    sample = db.query("SELECT OL_O_ID FROM orderline WHERE OL_ID = ?", [1]).scalar()
    assert sample in o_ids


def test_row_scale_floor_is_100():
    generator = DataGenerator(scale_factor=1, row_scale=0.000001)
    counts = generator.materialised_rows()
    assert min(counts.values()) == 100


def test_generation_is_deterministic():
    db1, _ = load_sales_database(seed=7, row_scale=0.001)
    db2, _ = load_sales_database(seed=7, row_scale=0.001)
    assert (db1.query("SELECT C_CREDIT FROM customer WHERE C_ID = ?", [5]).rows
            == db2.query("SELECT C_CREDIT FROM customer WHERE C_ID = ?", [5]).rows)


def test_different_seeds_differ():
    db1, _ = load_sales_database(seed=1, row_scale=0.001)
    db2, _ = load_sales_database(seed=2, row_scale=0.001)
    assert (db1.query("SELECT C_CREDIT FROM customer WHERE C_ID = ?", [5]).rows
            != db2.query("SELECT C_CREDIT FROM customer WHERE C_ID = ?", [5]).rows)


def test_invalid_row_scale_rejected():
    with pytest.raises(ValueError):
        DataGenerator(row_scale=0.0)
    with pytest.raises(ValueError):
        DataGenerator(row_scale=1.5)

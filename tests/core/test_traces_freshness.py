"""Trace-replay patterns and the latest-distribution freshness claim."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datagen import load_sales_database
from repro.core.elasticity import pattern_from_trace
from repro.core.workload import SalesWorkload, TransactionMix


class TestTraceReplay:
    def test_buckets_by_slot_and_normalises_to_peak(self):
        pattern = pattern_from_trace(
            "trace", [(0, 10), (70, 50), (130, 5)], slot_seconds=60.0
        )
        assert pattern.proportions == (0.2, 1.0, 0.1)
        assert pattern.concurrency_slots(100) == [20, 100, 10]

    def test_time_weighted_averaging_within_slot(self):
        # 40s at 10 then 20s at 40 inside one slot -> (10*40 + 40*20)/60 = 20
        pattern = pattern_from_trace(
            "trace", [(0, 10), (40, 40), (60, 20)], slot_seconds=60.0
        )
        assert pattern.proportions[0] == pytest.approx(1.0)  # slot0 is the peak

    def test_unsorted_samples_accepted(self):
        pattern = pattern_from_trace("t", [(70, 50), (0, 10)])
        assert pattern.proportions == (0.2, 1.0)  # sorted before bucketing

    def test_empty_or_flatzero_rejected(self):
        with pytest.raises(ValueError):
            pattern_from_trace("t", [])
        with pytest.raises(ValueError):
            pattern_from_trace("t", [(0, 0.0)])

    @settings(max_examples=40, deadline=None)
    @given(
        samples=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=600),
                st.floats(min_value=0, max_value=500),
            ),
            min_size=1, max_size=30,
        )
    )
    def test_property_proportions_bounded(self, samples):
        if max(value for _t, value in samples) <= 0:
            return
        pattern = pattern_from_trace("t", samples)
        assert all(0.0 <= p <= 1.0 + 1e-9 for p in pattern.proportions)
        assert max(pattern.proportions) == pytest.approx(1.0)
        assert len(pattern.proportions) >= 1

    def test_trace_round_trip_through_evaluator(self):
        """A replayed trace drives the elasticity evaluator end to end."""
        from repro.cloud.architectures import cdb3
        from repro.core.elasticity import ElasticityEvaluator
        from repro.core.workload import READ_WRITE

        pattern = pattern_from_trace("spiky", [(0, 5), (65, 100), (125, 5)])
        evaluator = ElasticityEvaluator(
            cdb3(), READ_WRITE.to_workload_mix(1), measure_window_s=240.0
        )
        result = evaluator.run(pattern, 100)
        assert result.avg_tps > 0
        assert max(result.collector.demand.values) == 100


class TestLatestFreshness:
    """Paper §II-B1: 'the more skewed the distribution is, the more
    likely the fresh data is read' -- with latest-k, T2 updates k
    specific items and T3 reads those same items."""

    def overlap(self, distribution: str) -> float:
        db, _ = load_sales_database(row_scale=0.001, seed=11)
        workload = SalesWorkload(
            db, TransactionMix(t2=50, t3=50), distribution=distribution, seed=11
        )
        written, fresh_reads, reads = set(), 0, 0
        for _ in range(400):
            task = workload.next_task()
            if task == "T2":
                outcome = workload.run_t2()
                if outcome:
                    written.add(outcome[0])
            else:
                row = workload.run_t3()
                if row is not None:
                    reads += 1
                    if row[0] in written:
                        fresh_reads += 1
        return fresh_reads / max(1, reads)

    def test_latest_reads_far_fresher_than_uniform(self):
        uniform = self.overlap("uniform")
        latest = self.overlap("latest-10")
        assert latest > 0.7            # nearly every read hits fresh data
        assert latest > 2 * uniform    # decisively fresher than uniform

"""Tests for the props config, the manager, collector, report and runner."""

import pytest

from repro.core.collector import PerformanceCollector
from repro.core.config import BenchConfig
from repro.core.datagen import load_sales_database
from repro.core.manager import WorkloadManager
from repro.core.report import TextTable, figure_series, sparkline
from repro.core.runner import CloudyBench
from repro.core.workload import READ_WRITE


class TestBenchConfig:
    def test_defaults_match_paper(self):
        config = BenchConfig()
        assert config.scale_factors == [1, 10, 100]
        assert config.concurrencies == [50, 100, 150, 200]
        assert config.architectures == ["aws_rds", "cdb1", "cdb2", "cdb3", "cdb4"]
        assert config.tenants == 3

    def test_from_nested_dict(self):
        config = BenchConfig.from_dict({
            "workload": {"scale_factors": [1], "distribution": "latest-10"},
            "elasticity": {"elastic_test_time": 4},
        })
        assert config.scale_factors == [1]
        assert config.distribution == "latest-10"
        assert config.elastic_test_time == 4

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            BenchConfig.from_dict({"workload": {"scale_facotrs": [1]}})

    def test_from_toml(self, tmp_path):
        props = tmp_path / "props.toml"
        props.write_text(
            """
[workload]
concurrencies = [25, 50]

[elasticity.custom_patterns]
double_peak = [0.0, 1.0, 0.2, 1.0, 0.0]
"""
        )
        config = BenchConfig.from_toml(props)
        assert config.concurrencies == [25, 50]
        assert config.custom_patterns["double_peak"] == [0.0, 1.0, 0.2, 1.0, 0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchConfig(architectures=[])
        with pytest.raises(ValueError):
            BenchConfig(scale_factors=[0])
        with pytest.raises(ValueError):
            BenchConfig(modes=["HTAP"])
        with pytest.raises(ValueError):
            BenchConfig(elastic_test_time=0)

    def test_quick_preset(self):
        config = BenchConfig.quick()
        assert config.scale_factors == [1]


class TestWorkloadManager:
    def test_functional_run_counts(self):
        db, _ = load_sales_database(row_scale=0.001)
        manager = WorkloadManager(db, READ_WRITE, concurrency=4)
        result = manager.run_transactions(200)
        assert result.transactions == 200
        assert sum(result.counts.values()) == 200 - result.aborted
        assert result.tps > 0

    def test_latency_recording(self):
        db, _ = load_sales_database(row_scale=0.001)
        manager = WorkloadManager(db, READ_WRITE, concurrency=2, record_latencies=True)
        result = manager.run_transactions(50)
        assert len(result.latencies_s) == 50
        assert result.latency_percentile(50) <= result.latency_percentile(99)

    def test_run_for_wall_duration(self):
        db, _ = load_sales_database(row_scale=0.001)
        manager = WorkloadManager(db, READ_WRITE, concurrency=2)
        result = manager.run_for(0.1, batch=16)
        assert result.transactions >= 16
        assert result.elapsed_s >= 0.1

    def test_invalid_inputs(self):
        db, _ = load_sales_database(row_scale=0.001)
        with pytest.raises(ValueError):
            WorkloadManager(db, READ_WRITE, concurrency=0)
        manager = WorkloadManager(db, READ_WRITE)
        with pytest.raises(ValueError):
            manager.run_transactions(0)
        with pytest.raises(ValueError):
            manager.run_for(0)


class TestCollector:
    def test_summary_window(self):
        collector = PerformanceCollector()
        for t in range(10):
            collector.record(float(t), tps=100.0, vcores=2.0,
                             memory_gb=8.0, cost_delta=0.01)
        summary = collector.summary(0.0, 9.0)
        assert summary.avg_tps == pytest.approx(100.0)
        assert summary.avg_vcores == pytest.approx(2.0)
        assert summary.total_cost == pytest.approx(0.09, abs=0.02)

    def test_series_lookup(self):
        collector = PerformanceCollector()
        collector.record(0.0, tps=5.0)
        assert collector.series("tps").values == [5.0]
        with pytest.raises(KeyError):
            collector.series("nope")

    def test_events(self):
        collector = PerformanceCollector()
        collector.note(3.0, "failure injected")
        assert collector.events == [(3.0, "failure injected")]


class TestReport:
    def test_table_rendering(self):
        table = TextTable(["name", "value"], title="T")
        table.add_row("a", 1234.5)
        rendered = table.render()
        assert "T" in rendered
        assert "1,234" in rendered or "1234" in rendered
        assert rendered.count("\n") == 3  # title, header, separator, one row

    def test_row_arity_enforced(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_figure_series(self):
        rendered = figure_series("F", "x", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
        assert "s1" in rendered and "40" in rendered

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[0] == " " and line[-1] == "█"
        assert sparkline([]) == ""


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def bench(self):
        config = BenchConfig.quick()
        config.architectures = ["aws_rds", "cdb3"]
        config.measure_window_s = 300.0
        config.lag_transactions = 40
        config.lag_concurrency = 4
        return CloudyBench(config)

    def test_throughput_matrix_keys(self, bench):
        data = bench.run("throughput").payload
        assert ("aws_rds", 1, "RO", 50) in data
        assert len(data) == 2 * 1 * 3 * 2  # archs x sfs x modes x cons
        assert all(tps > 0 for tps in data.values())

    def test_pscore_rows(self, bench):
        rows = bench.run("pscore").payload
        assert [row.arch_name for row in rows] == ["aws_rds", "cdb3"]
        for row in rows:
            assert row.total_cost_per_minute > 0
            assert row.p_avg > 0

    def test_unknown_mode_rejected(self, bench):
        with pytest.raises(KeyError):
            bench.mix_for("HTAP")

    def test_elasticity_results_cached(self, bench):
        first = bench.run("elasticity").payload
        second = bench.run("elasticity").payload
        assert first is second
        assert set(first) == {"aws_rds", "cdb3"}

    def test_overall_scores_complete(self, bench):
        scores = bench.run("overall").payload
        for name, perfect in scores.items():
            assert perfect.p > 0
            assert perfect.e1 > 0
            assert perfect.e2 > 0
            assert perfect.f_s > 0
            assert perfect.r_s > 0
            assert perfect.c_ms > 0
            assert perfect.t > 0
            row = perfect.as_row()
            assert len(row) == 13

    def test_explicit_tau_override(self):
        config = BenchConfig.quick()
        config.architectures = ["cdb3"]
        config.elastic_tau = 110
        bench = CloudyBench(config)
        assert bench.elastic_tau("RW") == 110

"""Tests for the fail-over evaluator and the lag-time evaluator."""

import pytest

from repro.cloud.architectures import aws_rds, cdb1, cdb3, cdb4
from repro.core.failover import FailOverEvaluator, FailoverScores
from repro.core.lagtime import LagResult, LagTimeEvaluator
from repro.core.workload import LAG_PATTERNS, READ_WRITE, iud_mix


def mix():
    return READ_WRITE.to_workload_mix(1)


class TestFailOverEvaluator:
    def test_scores_populated(self):
        scores = FailOverEvaluator(cdb4(), mix()).run()
        assert isinstance(scores, FailoverScores)
        assert scores.f_rw_s > 0
        assert scores.r_rw_s > 0
        assert scores.total_s == pytest.approx(
            scores.f_rw_s + scores.f_ro_s + scores.r_rw_s + scores.r_ro_s
        )

    def test_cdb4_fastest_rds_slowest(self):
        totals = {}
        for factory in (aws_rds, cdb1, cdb4):
            totals[factory().name] = FailOverEvaluator(factory(), mix()).run().total_s
        assert totals["cdb4"] < totals["cdb1"] < totals["aws_rds"]

    def test_rds_magnitudes_close_to_paper(self):
        """Table VIII: RDS total ~78 s, F(RW) ~24 s."""
        scores = FailOverEvaluator(aws_rds(), mix()).run()
        assert 15 <= scores.f_rw_s <= 35
        assert 50 <= scores.total_s <= 110

    def test_cdb4_magnitudes_close_to_paper(self):
        """Table VIII: CDB4 total ~12 s."""
        scores = FailOverEvaluator(cdb4(), mix()).run()
        assert scores.total_s <= 25

    def test_repeats_average(self):
        scores = FailOverEvaluator(cdb3(), mix(), repeats=2).run()
        assert len(scores.results) == 4  # 2 phases x {rw, ro}

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            FailOverEvaluator(cdb3(), mix(), repeats=0)


class TestLagTimeEvaluator:
    @pytest.fixture(scope="class")
    def cdb3_result(self):
        evaluator = LagTimeEvaluator(
            cdb3(), row_scale=0.001, concurrency=4, transactions=60
        )
        return evaluator.run(LAG_PATTERNS["mixed"], label="mixed")

    def test_samples_collected_per_kind(self, cdb3_result):
        kinds = {sample.kind for sample in cdb3_result.samples}
        assert kinds == {"insert", "update", "delete"}
        assert len(cdb3_result.samples) >= 30

    def test_lag_is_positive_and_bounded(self, cdb3_result):
        for sample in cdb3_result.samples:
            assert 0 < sample.lag_s < 5.0

    def test_c_score_equation_six(self, cdb3_result):
        expected = (
            cdb3_result.insert_lag_s
            + cdb3_result.update_lag_s
            + cdb3_result.delete_lag_s
        ) / cdb3_result.n_replicas
        assert cdb3_result.c_score_s == pytest.approx(expected)

    def test_insert_only_pattern(self):
        evaluator = LagTimeEvaluator(
            cdb4(), row_scale=0.001, concurrency=4, transactions=40
        )
        result = evaluator.run(LAG_PATTERNS["insert"], label="insert")
        assert {sample.kind for sample in result.samples} == {"insert"}
        assert result.update_lag_s == 0.0

    def test_architecture_lag_ordering(self):
        """cdb4 (RDMA, on-demand replay) beats cdb1 (sequential replay)."""
        def lag(factory):
            evaluator = LagTimeEvaluator(
                factory(), row_scale=0.001, concurrency=4, transactions=40
            )
            return evaluator.run(iud_mix(60, 30, 10)).avg_lag_s

        assert lag(cdb4) < lag(cdb1)

    def test_cdb4_millisecond_level(self):
        evaluator = LagTimeEvaluator(
            cdb4(), row_scale=0.001, concurrency=4, transactions=40
        )
        result = evaluator.run(iud_mix(60, 30, 10))
        assert result.avg_lag_s < 0.01  # paper: 1.5 ms

    def test_empty_result_scores_zero(self):
        result = LagResult(arch_name="x", mix_label="m", n_replicas=1)
        assert result.avg_lag_s == 0.0
        assert result.c_score_s == 0.0


class TestSeedRobustness:
    """The lag ordering is a model property, not a seed artefact."""

    def test_lag_ordering_stable_across_seeds(self):
        orderings = []
        for seed in (7, 21, 1234):
            lags = {}
            for factory in (cdb3, cdb1):
                evaluator = LagTimeEvaluator(
                    factory(), row_scale=0.001, concurrency=4,
                    transactions=40, seed=seed,
                )
                lags[factory().name] = evaluator.run(iud_mix(60, 30, 10)).avg_lag_s
            orderings.append(sorted(lags, key=lags.get))
        assert all(order == ["cdb3", "cdb1"] for order in orderings)


class TestLagDistribution:
    def test_latest_distribution_flows_through(self):
        evaluator = LagTimeEvaluator(
            cdb3(), row_scale=0.001, concurrency=4, transactions=40,
            distribution="latest-10",
        )
        result = evaluator.run(iud_mix(0, 100, 0), label="latest-update")
        assert result.samples
        # with latest-10, T2 touches only the ten hottest orders
        assert all(sample.kind == "update" for sample in result.samples)

"""Tests for T1-T4, the mixes and the functional executor."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datagen import load_sales_database, nominal_bytes
from repro.core.distributions import (
    LatestDistribution,
    UniformDistribution,
    make_distribution,
)
from repro.core.workload import (
    LAG_PATTERNS,
    READ_ONLY,
    READ_WRITE,
    THROUGHPUT_PATTERNS,
    TXN_CLASSES,
    WRITE_ONLY,
    SalesWorkload,
    TransactionMix,
    )


class TestDistributions:
    def test_uniform_covers_key_space(self):
        dist = UniformDistribution(100, random.Random(0))
        keys = {dist.next_key() for _ in range(2000)}
        assert min(keys) >= 1 and max(keys) <= 100
        assert len(keys) > 90

    def test_latest_concentrates_on_recent_keys(self):
        dist = LatestDistribution(10_000, k=10, rng=random.Random(0))
        keys = [dist.next_key() for _ in range(2000)]
        hot = sum(1 for key in keys if key > 10_000 - 10)
        assert hot / len(keys) > 0.8  # skew=0.9 default

    def test_latest_hot_metadata(self):
        dist = LatestDistribution(1000, k=25, rng=random.Random(0))
        assert dist.hot_keys == 25
        assert dist.hot_fraction == 0.9

    def test_factory_strings(self):
        rng = random.Random(0)
        assert isinstance(make_distribution("uniform", 10, rng), UniformDistribution)
        assert make_distribution("latest", 10, rng).k == 10
        assert make_distribution("latest-7", 100, rng).k == 7
        with pytest.raises(ValueError):
            make_distribution("zipf", 10, rng)

    def test_invalid_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            UniformDistribution(0, rng)
        with pytest.raises(ValueError):
            LatestDistribution(10, 0, rng)
        with pytest.raises(ValueError):
            LatestDistribution(10, 5, rng, skew=0.0)


class TestTransactionMix:
    def test_paper_throughput_patterns(self):
        assert READ_ONLY.weights == (("T3", 100),)
        assert dict(READ_WRITE.weights) == {"T1": 15, "T2": 5, "T3": 80}
        assert WRITE_ONLY.weights == (("T1", 100),)
        assert set(THROUGHPUT_PATTERNS) == {"RO", "RW", "WO"}

    def test_lag_patterns_use_t1_t2_t4(self):
        mixed = LAG_PATTERNS["mixed"]
        assert dict(mixed.weights) == {"T1": 60, "T2": 30, "T4": 10}
        assert dict(LAG_PATTERNS["delete"].weights) == {"T4": 100}

    def test_invalid_mixes_rejected(self):
        with pytest.raises(ValueError):
            TransactionMix()
        with pytest.raises(ValueError):
            TransactionMix(t1=-1, t3=10)

    def test_to_workload_mix_uniform(self):
        mix = READ_WRITE.to_workload_mix(10)
        assert mix.working_set_bytes == nominal_bytes(10)
        assert mix.hot_fraction == 0.0
        assert mix.write_fraction == pytest.approx(0.2)

    def test_to_workload_mix_latest_sets_hot_set(self):
        mix = READ_WRITE.to_workload_mix(1, distribution="latest-10")
        assert mix.hot_fraction > 0
        assert 0 < mix.hot_set_bytes < mix.working_set_bytes

    def test_txn_class_footprints(self):
        assert TXN_CLASSES["T3"].page_writes == 0
        assert TXN_CLASSES["T2"].statements == 3
        assert TXN_CLASSES["T1"].rows_written == 1
        assert TXN_CLASSES["T2"].rows_updated == 2

    @settings(max_examples=30, deadline=None)
    @given(
        t1=st.floats(min_value=0, max_value=100),
        t2=st.floats(min_value=0, max_value=100),
        t3=st.floats(min_value=0, max_value=100),
    )
    def test_property_mix_aggregates_bounded(self, t1, t2, t3):
        if t1 + t2 + t3 <= 0:
            return
        mix = TransactionMix(t1=t1, t2=t2, t3=t3).to_workload_mix(1)
        classes = [cls for cls, _weight in mix.classes]
        eps = 1e-12
        assert (min(c.cpu_s for c in classes) - eps
                <= mix.cpu_s
                <= max(c.cpu_s for c in classes) + eps)
        assert 0.0 <= mix.write_fraction <= 1.0


class TestSalesWorkload:
    @pytest.fixture
    def loaded(self):
        db, _ = load_sales_database(row_scale=0.001)
        return db

    def test_t1_inserts_orderline(self, loaded):
        workload = SalesWorkload(loaded, WRITE_ONLY)
        before = loaded.table("ORDERLINE").row_count
        ol_id = workload.run_t1()
        assert loaded.table("ORDERLINE").row_count == before + 1
        assert loaded.query(
            "SELECT OL_ID FROM orderline WHERE OL_ID = ?", [ol_id]
        ).rows

    def test_t2_marks_order_paid_and_credits_customer(self, loaded):
        workload = SalesWorkload(loaded, TransactionMix(t2=100))
        outcome = workload.run_t2()
        assert outcome is not None
        o_id, stamp = outcome
        status, updated = loaded.query(
            "SELECT O_STATUS, O_UPDATEDDATE FROM orders WHERE O_ID = ?", [o_id]
        ).rows[0]
        assert status == "PAID"
        assert updated == stamp

    def test_t3_reads_order(self, loaded):
        workload = SalesWorkload(loaded, READ_ONLY)
        row = workload.run_t3()
        assert row is not None and len(row) == 3

    def test_t4_deletes_existing_orderline(self, loaded):
        workload = SalesWorkload(loaded, TransactionMix(t4=100))
        before = loaded.table("ORDERLINE").row_count
        deleted = sum(1 for _ in range(20) if workload.run_t4())
        assert loaded.table("ORDERLINE").row_count == before - deleted
        assert deleted > 0

    def test_mix_ratios_respected(self, loaded):
        workload = SalesWorkload(loaded, READ_WRITE, seed=3)
        workload.run_many(400)
        counts = workload.executed
        assert counts["T3"] > counts["T1"] > counts["T2"]
        assert counts["T4"] == 0

    def test_latest_distribution_narrows_touched_orders(self, loaded):
        stamps = set()
        workload = SalesWorkload(
            loaded, TransactionMix(t2=100), distribution="latest-10", seed=5
        )
        for _ in range(50):
            outcome = workload.run_t2()
            if outcome:
                stamps.add(outcome[0])
        assert len(stamps) <= 15  # mostly the 10 hottest orders

    def test_deterministic_given_seed(self):
        db1, _ = load_sales_database(row_scale=0.001)
        db2, _ = load_sales_database(row_scale=0.001)
        w1 = SalesWorkload(db1, READ_WRITE, seed=11)
        w2 = SalesWorkload(db2, READ_WRITE, seed=11)
        w1.run_many(100)
        w2.run_many(100)
        assert w1.executed == w2.executed
        assert (db1.query("SELECT COUNT(*) FROM orderline").scalar()
                == db2.query("SELECT COUNT(*) FROM orderline").scalar())

"""Setup shim so `pip install -e .` works offline (legacy editable mode).

The offline environment has setuptools but no `wheel` package, so the
PEP 660 editable path (which shells out to `bdist_wheel`) fails; with a
`setup.py` present, `pip install -e . --no-use-pep517` installs fine.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
